//! Property tests over composable skeleton expressions: whatever the
//! nesting, outcomes conserve the expression's work units — every leaf unit
//! completes exactly once, at every level of the tree — including under
//! random node-churn fault plans, where units are lost mid-chunk and
//! re-executed on surviving nodes.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::gridsim::{FaultPlan, Grid, GridBuilder, NodeId, TopologyBuilder};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build one child skeleton deterministically from a seed: a farm leaf, a
/// pipeline leaf, a pipeline-of-farms, or a nested farm-of composition.
fn child_from_seed(seed: u64) -> Skeleton {
    let size = ((seed >> 2) % 5 + 1) as usize;
    match seed % 4 {
        0 => Skeleton::farm(TaskSpec::uniform(size, 2.0 + (seed % 7) as f64, 512, 512)),
        1 => {
            let stages = ((seed >> 4) % 3 + 1) as usize;
            Skeleton::pipeline(StageSpec::balanced(stages, 3.0, 1024), size)
        }
        2 => {
            let replicas = ((seed >> 6) % 3 + 1) as usize;
            Skeleton::pipeline_of(
                vec![
                    FarmedStage::plain(StageSpec::new(0, 2.0, 512, 0)),
                    FarmedStage::farmed(StageSpec::new(1, 8.0, 512, 0), replicas),
                ],
                size,
            )
        }
        _ => Skeleton::farm_of(vec![
            Skeleton::farm(TaskSpec::uniform(size, 1.0, 0, 0)),
            Skeleton::pipeline(StageSpec::balanced(2, 2.0, 256), size),
        ]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary nestings (including nested farm-of inside farm-of) conserve
    /// unit counts level by level on the simulated backend, and cover each
    /// global unit id exactly once.
    #[test]
    fn composed_outcomes_conserve_units(
        seeds in prop::collection::vec(any::<u64>(), 1..5),
        grid_nodes in 2usize..6,
        wrap_again in any::<bool>(),
    ) {
        let children: Vec<Skeleton> = seeds.iter().map(|&s| child_from_seed(s)).collect();
        let mut skeleton = Skeleton::farm_of(children);
        if wrap_again {
            skeleton = Skeleton::farm_of(vec![
                skeleton,
                Skeleton::pipeline(StageSpec::balanced(2, 4.0, 512), 3),
            ]);
        }
        let expected = skeleton.work_units();
        prop_assert!(expected > 0);

        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(
            grid_nodes, 20.0, 80.0, seeds[0],
        ));
        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), &skeleton)
            .expect("composed run must succeed on an all-up grid");

        // Root conservation and per-level conservation.
        prop_assert_eq!(report.outcome.completed, expected);
        prop_assert!(report.outcome.conserves_units_of(&skeleton));
        // Each global unit id exactly once, and ids form 0..expected.
        let ids: BTreeSet<usize> = report.outcome.unit_ids.iter().copied().collect();
        prop_assert_eq!(ids.len(), report.outcome.unit_ids.len());
        prop_assert_eq!(ids, (0..expected).collect::<BTreeSet<_>>());
        // Children partition the root's units disjointly.
        let mut seen = BTreeSet::new();
        for c in &report.outcome.children {
            for id in &c.unit_ids {
                prop_assert!(seen.insert(*id), "unit {} counted in two children", id);
            }
        }
    }

    /// Unit conservation holds under random churn: every node except the
    /// master may be revoked and later recover at random times while a farm
    /// composition runs.  Lost chunks are requeued onto surviving nodes, so
    /// the outcome must still cover every unit exactly once at every level,
    /// and the recovery must be visible in the `ResilienceReport` whenever a
    /// node was actually lost mid-chunk.
    #[test]
    fn conservation_holds_under_random_fault_plans(
        fault_seed in any::<u64>(),
        p_outage in 0.2f64..1.0,
        grid_nodes in 3usize..8,
        lanes in 1usize..4,
    ) {
        let topo = TopologyBuilder::uniform_cluster(grid_nodes, 30.0);
        // Node 0 (the master / first candidate) stays churn-free so the job
        // always has somewhere to finish; every other node may go down.
        let churn_targets: Vec<NodeId> = topo.node_ids()[1..].to_vec();
        let faults = FaultPlan::random(&churn_targets, p_outage, 80.0, 20.0, fault_seed);
        let grid = GridBuilder::new(topo).faults(faults).quantum(0.25).build();

        let mut children: Vec<Skeleton> = (0..lanes)
            .map(|_| Skeleton::pipeline(StageSpec::balanced(2, 20.0, 1024), 6))
            .collect();
        children.push(Skeleton::farm(TaskSpec::uniform(24, 40.0, 4096, 4096)));
        let skeleton = Skeleton::farm_of(children);
        let expected = skeleton.work_units();

        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), &skeleton)
            .expect("churn with a fault-free master must still complete");
        prop_assert_eq!(report.outcome.completed, expected);
        prop_assert!(report.outcome.conserves_units_of(&skeleton));
        let ids: BTreeSet<usize> = report.outcome.unit_ids.iter().copied().collect();
        prop_assert_eq!(ids, (0..expected).collect::<BTreeSet<_>>());
        // Whenever a node was lost mid-chunk the resilience report must say
        // so, and vice versa.
        let resilience = report.outcome.resilience;
        prop_assert_eq!(resilience.nodes_lost > 0, resilience.requeued_tasks > 0);
        prop_assert_eq!(resilience.retried_tasks, resilience.requeued_tasks);
    }

    /// Derived properties stay well-formed for arbitrary compositions: the
    /// ratio is finite and positive and the structural flags follow the
    /// outer skeleton.
    #[test]
    fn composed_properties_are_well_formed(seeds in prop::collection::vec(any::<u64>(), 1..6)) {
        let children: Vec<Skeleton> = seeds.iter().map(|&s| child_from_seed(s)).collect();
        let skeleton = Skeleton::farm_of(children);
        let p = skeleton.properties();
        prop_assert!(p.comp_comm_ratio.is_finite());
        prop_assert!(p.comp_comm_ratio > 0.0);
        prop_assert!(p.independent_tasks);
        prop_assert!(!p.ordered_results);
        let chunk = p.suggested_chunking(8);
        prop_assert!(chunk >= 1);
    }
}
