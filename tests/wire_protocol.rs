//! Property tests over the worker wire protocol: framing round-trips for
//! arbitrary messages, and truncated/corrupted frames always surface as
//! typed `GraspError`s — never as panics or silently different messages.

use grasp_repro::grasp_core::wire::{FrameView, WireMsg, PAYLOAD_SPIN};
use grasp_repro::grasp_core::GraspError;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Task frames round-trip bit-exactly for arbitrary ids, work values,
    /// payload kinds and payload bytes.
    #[test]
    fn task_frames_round_trip(
        unit_id in any::<u64>(),
        work in -1e9f64..1e9,
        kind in 0u32..8,
        payload in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let msg = WireMsg::Task { unit_id, work, kind, payload: payload.clone() };
        let frame = msg.encode();
        let (back, used) = WireMsg::decode_slice(&frame).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(used, frame.len());
    }

    /// Result and control frames round-trip for arbitrary field values.
    #[test]
    fn result_frames_round_trip(
        unit_id in any::<u64>(),
        elapsed in 0.0f64..1e6,
        digest in any::<u64>(),
        pid in any::<u64>(),
        detail in prop::collection::vec(32u8..127, 0..80),
    ) {
        let detail = String::from_utf8(detail.clone()).unwrap();
        for msg in [
            WireMsg::Done { unit_id, elapsed_s: elapsed, digest },
            WireMsg::Failed { unit_id, detail: detail.clone() },
            WireMsg::Hello { pid },
            WireMsg::Heartbeat,
            WireMsg::Shutdown,
        ] {
            let frame = msg.encode();
            let (back, used) = WireMsg::decode_slice(&frame).unwrap();
            prop_assert_eq!(back, msg);
            prop_assert_eq!(used, frame.len());
        }
    }

    /// The registration-handshake frames (Join/Welcome/Goodbye) round-trip
    /// for arbitrary field values, including hostile capability masks and
    /// version claims — rejection is the master's policy decision, never a
    /// codec concern.
    #[test]
    fn membership_frames_round_trip(
        pid in any::<u64>(),
        wire_version in any::<u32>(),
        capabilities in any::<u32>(),
        worker_id in any::<u64>(),
        interval in 0.0f64..1e3,
        spin in any::<u64>(),
        reason in prop::collection::vec(32u8..127, 0..80),
    ) {
        let reason = String::from_utf8(reason.clone()).unwrap();
        for msg in [
            WireMsg::Join { pid, wire_version, capabilities },
            WireMsg::Welcome { worker_id, heartbeat_interval_s: interval, spin_per_work_unit: spin },
            WireMsg::Goodbye { reason: reason.clone() },
        ] {
            let frame = msg.encode();
            let (back, used) = WireMsg::decode_slice(&frame).unwrap();
            prop_assert_eq!(back, msg);
            prop_assert_eq!(used, frame.len());
        }
    }

    /// Every strict prefix of a membership frame is rejected as truncated —
    /// a worker crashing mid-Join (or a master mid-Welcome) can never be
    /// mis-read as a shorter handshake.
    #[test]
    fn truncated_membership_frames_are_typed_errors(
        pid in any::<u64>(),
        capabilities in any::<u32>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = WireMsg::Join {
            pid,
            wire_version: grasp_repro::grasp_core::wire::WIRE_VERSION as u32,
            capabilities,
        }.encode();
        let cut = 1 + ((frame.len() - 2) as f64 * cut_frac) as usize; // 1..len-1
        let err = WireMsg::decode_slice(&frame[..cut]).unwrap_err();
        prop_assert!(err.to_string().contains("wire protocol"), "{}", err);
    }

    /// Flipping any single byte of a Goodbye frame is caught by the frame
    /// validation (magic/version/tag/length/checksum).
    #[test]
    fn corrupted_membership_frames_are_typed_errors(
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let frame = WireMsg::Goodbye { reason: "drained by operator".into() }.encode();
        let mut bad = frame.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= flip;
        prop_assert!(WireMsg::decode_slice(&bad).is_err());
    }

    /// Every strict prefix of a valid frame is rejected as truncated — a
    /// worker dying mid-write can never be mis-read as a shorter message.
    #[test]
    fn truncated_frames_are_typed_errors(
        unit_id in any::<u64>(),
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = WireMsg::Task { unit_id, work: 1.0, kind: PAYLOAD_SPIN, payload: payload.clone() }.encode();
        let cut = 1 + ((frame.len() - 2) as f64 * cut_frac) as usize; // 1..len-1
        let err = WireMsg::decode_slice(&frame[..cut]).unwrap_err();
        prop_assert!(err.to_string().contains("wire protocol"), "{}", err);
    }

    /// Flipping any single byte of a frame is caught (magic, version, tag,
    /// length and checksum are all validated; the checksum covers the rest).
    #[test]
    fn corrupted_frames_are_typed_errors(
        unit_id in any::<u64>(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let frame = WireMsg::Done { unit_id, elapsed_s: 0.5, digest: 7 }.encode();
        let mut bad = frame.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= flip;
        prop_assert!(WireMsg::decode_slice(&bad).is_err());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics_the_decoder(bytes in prop::collection::vec(0u8..=255, 0..256)) {
        let _ = WireMsg::decode_slice(&bytes);
        let _ = FrameView::decode_slice(&bytes);
        // Streaming reads over garbage are equally safe.
        let mut r = bytes.as_slice();
        let _ = WireMsg::read_from(&mut r);
    }

    /// The borrowed decoder agrees with the owned decoder on every message
    /// kind: same consumed length, and `to_owned` reconstructs the original
    /// message exactly.  Re-encoding through a dirty reused buffer emits the
    /// identical frame bytes — the wire format cannot tell which path built
    /// a frame.
    #[test]
    fn borrowed_and_owned_decoders_agree_on_every_message_kind(
        unit_id in any::<u64>(),
        work in -1e9f64..1e9,
        kind in 0u32..8,
        payload in prop::collection::vec(0u8..=255, 0..512),
        elapsed in 0.0f64..1e6,
        digest in any::<u64>(),
        pid in any::<u64>(),
        text in prop::collection::vec(32u8..127, 0..80),
    ) {
        let text = String::from_utf8(text.clone()).unwrap();
        for msg in [
            WireMsg::Task { unit_id, work, kind, payload: payload.clone() },
            WireMsg::Init { heartbeat_interval_s: elapsed, spin_per_work_unit: digest },
            WireMsg::Done { unit_id, elapsed_s: elapsed, digest },
            WireMsg::Failed { unit_id, detail: text.clone() },
            WireMsg::Hello { pid },
            WireMsg::Join { pid, wire_version: kind, capabilities: kind },
            WireMsg::Welcome { worker_id: unit_id, heartbeat_interval_s: elapsed, spin_per_work_unit: digest },
            WireMsg::Goodbye { reason: text.clone() },
            WireMsg::Heartbeat,
            WireMsg::Shutdown,
        ] {
            let frame = msg.encode();
            let (owned, owned_used) = WireMsg::decode_slice(&frame).unwrap();
            let (view, view_used) = FrameView::decode_slice(&frame).unwrap();
            prop_assert_eq!(view_used, owned_used);
            prop_assert_eq!(view_used, frame.len());
            prop_assert_eq!(&view.to_owned(), &owned);
            prop_assert_eq!(&owned, &msg);
            // Byte-identity through a dirty reused encode buffer.
            let mut reused = vec![0xAA; 7];
            view.encode_into(&mut reused);
            prop_assert_eq!(&reused, &frame);
        }
    }

    /// Every strict prefix of a frame is a *typed* wire-protocol error for
    /// the borrowed decoder — never a panic, never a shorter message.
    #[test]
    fn truncated_frames_are_typed_for_the_borrowed_decoder(
        unit_id in any::<u64>(),
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = WireMsg::Task { unit_id, work: 1.0, kind: PAYLOAD_SPIN, payload: payload.clone() }.encode();
        let cut = 1 + ((frame.len() - 2) as f64 * cut_frac) as usize; // 1..len-1
        let err = FrameView::decode_slice(&frame[..cut]).unwrap_err();
        prop_assert!(matches!(err, GraspError::WireProtocol { .. }), "{}", err);
    }

    /// Flipping any single byte of a frame is a *typed* wire-protocol error
    /// for the borrowed decoder (magic, version, tag, length and checksum
    /// are all validated before any field is handed out).
    #[test]
    fn corrupted_frames_are_typed_for_the_borrowed_decoder(
        unit_id in any::<u64>(),
        payload in prop::collection::vec(0u8..=255, 1..64),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let frame = WireMsg::Task { unit_id, work: 2.5, kind: PAYLOAD_SPIN, payload: payload.clone() }.encode();
        let mut bad = frame.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= flip;
        let err = FrameView::decode_slice(&bad).unwrap_err();
        prop_assert!(matches!(err, GraspError::WireProtocol { .. }), "{}", err);
    }
}
