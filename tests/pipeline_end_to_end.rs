//! Cross-crate integration: the imaging workload driving the adaptive
//! pipeline on the simulated grid.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_workloads::imaging::ImagePipeline;
use grasp_repro::gridsim::{ConstantLoad, GridBuilder, SimTime, SpikeLoad, TopologyBuilder};

#[test]
fn imaging_pipeline_processes_every_frame() {
    let job = ImagePipeline::small();
    let stages = job.as_stages(200.0);
    let grid = grasp_repro::gridsim::Grid::dedicated(TopologyBuilder::uniform_cluster(6, 40.0));
    let out = Pipeline::new(GraspConfig::default())
        .run(&grid, &stages, 40)
        .unwrap();
    assert_eq!(out.items, 40);
    assert_eq!(out.item_completions.len(), 40);
    assert!(out.item_completions.windows(2).all(|w| w[0] <= w[1]));
    // The Sobel stage is the heaviest and must not sit on the slowest node
    // when nodes are identical — any node is fine; just check assignment size.
    assert_eq!(out.stage_assignment.len(), 4);
}

#[test]
fn adaptive_pipeline_beats_rigid_when_chosen_nodes_degrade() {
    let job = ImagePipeline::small();
    let stages = job.as_stages(100.0);
    let make_grid = || {
        let topo = TopologyBuilder::uniform_cluster(7, 40.0);
        let ids = topo.node_ids();
        let mut b = GridBuilder::new(topo).quantum(0.1);
        for &n in &ids {
            if n.index() < 5 {
                b = b.node_load(
                    n,
                    SpikeLoad::new(0.02, 0.93, SimTime::new(15.0), SimTime::new(1e6)),
                );
            } else {
                b = b.node_load(n, ConstantLoad::new(0.02));
            }
        }
        b.build()
    };
    let adaptive = Pipeline::new(GraspConfig::default())
        .run(&make_grid(), &stages, 150)
        .unwrap();
    let mut rigid_cfg = GraspConfig::default();
    rigid_cfg.execution.adaptive = false;
    let rigid = Pipeline::new(rigid_cfg)
        .run(&make_grid(), &stages, 150)
        .unwrap();
    assert!(adaptive.adaptation.stage_remaps() > 0);
    assert!(
        adaptive.makespan < rigid.makespan,
        "adaptive {} vs rigid {}",
        adaptive.makespan.as_secs(),
        rigid.makespan.as_secs()
    );
}

#[test]
fn grasp_driver_reports_pipeline_phases() {
    let job = ImagePipeline::small();
    let skeleton = Skeleton::pipeline(job.as_stages(200.0), 30);
    let grid = grasp_repro::gridsim::Grid::dedicated(TopologyBuilder::uniform_cluster(5, 40.0));
    let report = Grasp::new(GraspConfig::default())
        .run(&SimBackend::new(&grid), &skeleton)
        .unwrap();
    assert_eq!(report.outcome.completed, 30);
    assert!(report.phases.calibration.as_secs() >= 0.0);
    assert!(report.phases.execution.as_secs() > 0.0);
    assert!(report.phases.total() >= report.phases.execution);
}

#[test]
fn imaging_pipeline_with_farmed_sobel_beats_the_plain_chain() {
    // The pipeline-of-farms composition: farming the heavy Sobel stage out
    // across 3 workers removes the bottleneck, so the nested skeleton's
    // makespan must beat the plain chain on the same quiet grid.
    let job = ImagePipeline::small();
    let grid = grasp_repro::gridsim::Grid::dedicated(TopologyBuilder::uniform_cluster(7, 40.0));
    let backend = SimBackend::new(&grid);
    let grasp = Grasp::new(GraspConfig::default());
    let plain = grasp
        .run(&backend, &Skeleton::pipeline(job.as_stages(100.0), 60))
        .unwrap();
    let nested_skeleton = ImagePipeline { frames: 60, ..job }.as_nested_skeleton(100.0, 3);
    let nested = grasp.run(&backend, &nested_skeleton).unwrap();
    assert_eq!(nested.outcome.kind, SkeletonKind::PipelineOfFarms);
    assert_eq!(nested.outcome.completed, 60);
    assert!(
        nested.outcome.makespan_s < plain.outcome.makespan_s,
        "farmed Sobel {} vs plain {}",
        nested.outcome.makespan_s,
        plain.outcome.makespan_s
    );
}
