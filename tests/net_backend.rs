//! Acceptance tests of the socket backend and its dynamic membership: the
//! deterministic loopback fault harness (deaths mid-task and mid-frame,
//! mid-run joins, graceful leaves, handshake rejection) plus a real-TCP
//! hard-kill run and three-way backend parity.
//!
//! These tests live in the workspace root on purpose: the root package owns
//! the `grasp-net-worker` binary, so Cargo builds it before these tests run
//! and hands us its exact path through `CARGO_BIN_EXE_grasp-net-worker`.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_core::transport::Acceptor;
use grasp_repro::grasp_exec::ThreadBackend;
use grasp_repro::grasp_net::worker::{run_connection, WorkerOptions};
use grasp_repro::grasp_net::{FaultScript, FrameFault, LoopbackNet, NetBackend};
use grasp_repro::grasp_proc::ProcBackend;
use grasp_repro::grasp_workloads::matmul::MatMulJob;
use std::collections::BTreeSet;
use std::thread::JoinHandle;

/// The worker binary Cargo built for this test run.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_grasp-net-worker")
}

/// A loopback backend with heartbeats off: liveness is then EOF-only and
/// every connection's frame sequence is deterministic, so fault scripts can
/// address exact frames.
fn loopback_backend(acceptor: Box<dyn Acceptor>, wait_for: usize) -> NetBackend {
    NetBackend::over(acceptor, wait_for).with_config(
        BackendConfig::new()
            .heartbeat(0.0, 1.0)
            .spin_per_work_unit(10),
    )
}

/// Spawn a loopback worker thread serving the standard protocol.
fn spawn_worker(net: &LoopbackNet, opts: WorkerOptions) -> JoinHandle<i32> {
    spawn_faulty_worker(net, opts, FaultScript::clean(), FaultScript::clean())
}

/// Spawn a loopback worker whose connection carries scripted faults.
fn spawn_faulty_worker(
    net: &LoopbackNet,
    opts: WorkerOptions,
    to_master: FaultScript,
    to_worker: FaultScript,
) -> JoinHandle<i32> {
    let conn = net
        .connect_faulty(to_master, to_worker)
        .expect("loopback connect");
    std::thread::spawn(move || run_connection(conn, opts))
}

#[test]
fn a_loopback_farm_completes_and_reports_its_membership() {
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 2);
    let workers: Vec<_> = (0..2)
        .map(|_| spawn_worker(&net, WorkerOptions::default()))
        .collect();
    let skeleton = Skeleton::farm(TaskSpec::uniform(24, 1.0, 0, 0));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("loopback net run failed");
    assert_eq!(report.outcome.completed, 24);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(report.outcome.resilience.is_clean());
    match &report.outcome.detail {
        OutcomeDetail::NetFarm {
            workers,
            tasks_per_worker,
            rejected_joins,
            bytes_sent,
            bytes_received,
            members,
            ..
        } => {
            assert_eq!(*workers, 2);
            assert_eq!(tasks_per_worker.iter().sum::<usize>(), 24);
            assert_eq!(*rejected_joins, 0);
            assert!(*bytes_sent > 0 && *bytes_received > 0);
            for m in members {
                assert!(!m.joined_mid_run, "founding members join before dispatch");
                assert_eq!(m.calibration_probes, 0);
                assert!(m.left.is_none(), "still a member at job completion");
            }
        }
        other => panic!("unexpected detail {other:?}"),
    }
    for w in workers {
        assert_eq!(w.join().unwrap(), 0, "workers exit cleanly on Shutdown");
    }
}

#[test]
fn a_worker_joining_mid_run_calibrates_before_real_units() {
    // The headline of dynamic membership: a third worker connects while two
    // founders are already executing.  It is parked until the scripted join
    // point, admitted mid-run, ranked by a calibration prefix of probe
    // units, and only then trusted with real units.
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 2)
        .with_hold_joins_until(4)
        .with_join_calibration_units(3);
    let workers: Vec<_> = (0..3)
        .map(|_| spawn_worker(&net, WorkerOptions::default()))
        .collect();
    let skeleton = Skeleton::farm(TaskSpec::uniform(60, 1.0, 0, 0));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("mid-run join run failed");
    assert_eq!(report.outcome.completed, 60);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(report.outcome.resilience.is_clean());
    assert_eq!(
        report.outcome.adaptation_log.node_joins(),
        1,
        "the mid-run admission is on the audit trail"
    );
    match &report.outcome.detail {
        OutcomeDetail::NetFarm { members, .. } => {
            assert_eq!(members.len(), 3);
            let founders = members.iter().filter(|m| !m.joined_mid_run).count();
            assert_eq!(founders, 2);
            let joiner = members
                .iter()
                .find(|m| m.joined_mid_run)
                .expect("one member joined mid-run");
            assert_eq!(
                joiner.calibration_probes, 3,
                "the newcomer completed its full calibration prefix"
            );
            assert!(
                joiner.units_completed > 0,
                "after calibrating, the newcomer served real units"
            );
            assert!(joiner.joined_s >= 0.0);
        }
        other => panic!("unexpected detail {other:?}"),
    }
    for w in workers {
        assert_eq!(w.join().unwrap(), 0);
    }
}

#[test]
fn a_worker_dying_between_frames_with_units_in_flight_is_a_requeued_death() {
    // Worker outbound frames with heartbeats off: 0 = Join, then one Done
    // per served task.  Killing the link *before* frame 3 (the third Done)
    // is a crash between writes: the master sees a clean EOF while the
    // worker still owes its outstanding window.
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 2);
    let healthy = spawn_worker(&net, WorkerOptions::default());
    let victim = spawn_faulty_worker(
        &net,
        WorkerOptions::default(),
        FaultScript::clean().with(3, FrameFault::CloseBefore),
        FaultScript::clean(),
    );
    let skeleton = Skeleton::farm(TaskSpec::uniform(30, 1.0, 0, 0));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("a mid-run death must not fail the run");
    assert_eq!(report.outcome.completed, 30);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert_eq!(report.outcome.resilience.nodes_lost, 1);
    assert!(
        report.outcome.resilience.requeued_tasks >= 1,
        "the swallowed Done and the rest of the window must be requeued: {:?}",
        report.outcome.resilience
    );
    match &report.outcome.detail {
        OutcomeDetail::NetFarm { members, .. } => {
            let dead: Vec<_> = members
                .iter()
                .filter(|m| m.left == Some(NetDeparture::Death))
                .collect();
            assert_eq!(dead.len(), 1, "exactly one member died");
            assert!(dead[0].units_completed >= 2);
        }
        other => panic!("unexpected detail {other:?}"),
    }
    assert_eq!(healthy.join().unwrap(), 0);
    let _ = victim.join();
}

#[test]
fn a_worker_dying_mid_frame_is_a_typed_truncation_and_a_requeued_death() {
    // Same death point, but the crash lands mid-write: the master's decoder
    // sees a torn frame (a typed wire error, never a panic), the reader
    // reports the link closed, and the death path requeues as usual.
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 2);
    let healthy = spawn_worker(&net, WorkerOptions::default());
    let victim = spawn_faulty_worker(
        &net,
        WorkerOptions::default(),
        FaultScript::clean().with(2, FrameFault::TruncateAt(9)),
        FaultScript::clean(),
    );
    let skeleton = Skeleton::farm(TaskSpec::uniform(30, 1.0, 0, 0));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("a torn frame must not fail the run");
    assert_eq!(report.outcome.completed, 30);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert_eq!(report.outcome.resilience.nodes_lost, 1);
    assert!(report.outcome.resilience.requeued_tasks >= 1);
    assert_eq!(healthy.join().unwrap(), 0);
    let _ = victim.join();
}

#[test]
fn a_graceful_goodbye_drains_the_window_and_loses_nothing() {
    // A worker announces Goodbye after two tasks.  The master stops handing
    // it new units, lets its outstanding window drain, and releases it with
    // Shutdown: no loss, no requeue, membership recorded as graceful.
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 2);
    let stayer = spawn_worker(&net, WorkerOptions::default());
    let leaver = spawn_worker(
        &net,
        WorkerOptions {
            leave_after: Some(2),
            ..WorkerOptions::default()
        },
    );
    let skeleton = Skeleton::farm(TaskSpec::uniform(30, 1.0, 0, 0));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("a graceful leave must not fail the run");
    assert_eq!(report.outcome.completed, 30);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(
        report.outcome.resilience.is_clean(),
        "a graceful leave is not a fault: {:?}",
        report.outcome.resilience
    );
    match &report.outcome.detail {
        OutcomeDetail::NetFarm { members, .. } => {
            let graceful: Vec<_> = members
                .iter()
                .filter(|m| m.left == Some(NetDeparture::Graceful))
                .collect();
            assert_eq!(graceful.len(), 1, "exactly one member left gracefully");
            assert!(
                graceful[0].units_completed >= 2,
                "the leaver finished what was on its wire"
            );
            assert!(
                members.iter().any(|m| m.left.is_none()),
                "the stayer carried the job to completion"
            );
        }
        other => panic!("unexpected detail {other:?}"),
    }
    assert_eq!(stayer.join().unwrap(), 0);
    assert_eq!(leaver.join().unwrap(), 0, "the leaver was released cleanly");
}

#[test]
fn handshake_rejects_wrong_versions_and_missing_capabilities() {
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 1);
    let good = spawn_worker(&net, WorkerOptions::default());
    let wrong_version = spawn_worker(
        &net,
        WorkerOptions {
            wire_version: 9999,
            ..WorkerOptions::default()
        },
    );
    let no_caps = spawn_worker(
        &net,
        WorkerOptions {
            capabilities: 0,
            ..WorkerOptions::default()
        },
    );
    let skeleton = Skeleton::farm(TaskSpec::uniform(12, 1.0, 0, 0));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("rejections must not fail the run");
    assert_eq!(report.outcome.completed, 12);
    match &report.outcome.detail {
        OutcomeDetail::NetFarm {
            workers,
            rejected_joins,
            ..
        } => {
            assert_eq!(*workers, 1, "only the conforming worker was admitted");
            assert_eq!(*rejected_joins, 2);
        }
        other => panic!("unexpected detail {other:?}"),
    }
    assert_eq!(good.join().unwrap(), 0);
    assert_eq!(
        wrong_version.join().unwrap(),
        0,
        "rejection is not an error"
    );
    assert_eq!(no_caps.join().unwrap(), 0);
}

#[test]
fn duplicated_and_delayed_frames_do_not_double_count_units() {
    // A retransmit gone wrong (the same Done delivered twice) and a
    // congested link (a delayed Done) must both be absorbed: first
    // completion wins, every unit exactly once.
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 2);
    let w1 = spawn_faulty_worker(
        &net,
        WorkerOptions::default(),
        FaultScript::clean().with(2, FrameFault::Duplicate),
        FaultScript::clean(),
    );
    let w2 = spawn_faulty_worker(
        &net,
        WorkerOptions::default(),
        FaultScript::clean().with(1, FrameFault::Delay(std::time::Duration::from_millis(30))),
        FaultScript::clean(),
    );
    let skeleton = Skeleton::farm(TaskSpec::uniform(20, 1.0, 0, 0));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("benign frame faults must not fail the run");
    assert_eq!(report.outcome.completed, 20);
    assert!(report.outcome.conserves_units_of(&skeleton));
    let ids: BTreeSet<usize> = report.outcome.unit_ids.iter().copied().collect();
    assert_eq!(
        ids.len(),
        20,
        "every unit exactly once despite the duplicate"
    );
    assert_eq!(w1.join().unwrap(), 0);
    assert_eq!(w2.join().unwrap(), 0);
}

#[test]
fn a_sigkilled_tcp_worker_mid_task_conserves_units() {
    // The acceptance check over real sockets: spawn three TCP workers on
    // localhost, SIGKILL one mid-task, and require the run to finish with
    // conservation intact and the loss on the ResilienceReport.
    let skeleton = Skeleton::farm(TaskSpec::uniform(40, 2.0, 0, 0));
    let backend = NetBackend::new(3)
        .with_config(
            BackendConfig::new()
                .worker_bin(worker_bin())
                .spin_per_work_unit(2_000_000),
        )
        .with_fault_injection(FaultInjection::none().kill(1, 2));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("a hard-killed TCP worker must not fail the run");
    assert_eq!(report.outcome.completed, 40);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(
        report.outcome.resilience.nodes_lost >= 1,
        "the kill must be accounted: {:?}",
        report.outcome.resilience
    );
    assert!(report.outcome.resilience.requeued_tasks >= 1);
    match &report.outcome.detail {
        OutcomeDetail::NetFarm { members, .. } => {
            assert!(members.iter().any(|m| m.left == Some(NetDeparture::Death)));
            assert_eq!(members.iter().map(|m| m.units_completed).sum::<usize>(), 40);
        }
        other => panic!("unexpected detail {other:?}"),
    }
}

#[test]
fn thread_proc_and_net_backends_agree_on_a_fixed_seed_matmul_farm() {
    // Three-way parity: the same fixed-seed job lowered through the same
    // rules must cover the same unit-id set exactly once on threads, on
    // worker processes, and on socket workers.
    let job = MatMulJob {
        n: 96,
        block_rows: 16,
        seed: 11,
    };
    let skeleton = Skeleton::farm(job.as_tasks(1e6));
    let grasp = Grasp::new(GraspConfig::default());

    let threads = grasp
        .run(
            &ThreadBackend::new(3).with_config(BackendConfig::new().spin_per_work_unit(10)),
            &skeleton,
        )
        .expect("thread backend run failed");
    let procs = grasp
        .run(
            &ProcBackend::new(3).with_config(
                BackendConfig::new()
                    .worker_bin(env!("CARGO_BIN_EXE_grasp-proc-worker"))
                    .spin_per_work_unit(10),
            ),
            &skeleton,
        )
        .expect("proc backend run failed");
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 3);
    let workers: Vec<_> = (0..3)
        .map(|_| spawn_worker(&net, WorkerOptions::default()))
        .collect();
    let nets = grasp
        .run(&backend, &skeleton)
        .expect("net backend run failed");
    for w in workers {
        assert_eq!(w.join().unwrap(), 0);
    }

    let t_ids: BTreeSet<usize> = threads.outcome.unit_ids.iter().copied().collect();
    let p_ids: BTreeSet<usize> = procs.outcome.unit_ids.iter().copied().collect();
    let n_ids: BTreeSet<usize> = nets.outcome.unit_ids.iter().copied().collect();
    assert_eq!(t_ids, p_ids, "thread and proc cover the same unit set");
    assert_eq!(p_ids, n_ids, "proc and net cover the same unit set");
    assert_eq!(nets.outcome.unit_ids.len(), n_ids.len(), "no unit twice");
    assert_eq!(nets.outcome.kind, threads.outcome.kind);
    assert!(nets.outcome.conserves_units_of(&skeleton));
}

#[test]
fn the_membership_substrate_outlives_a_job() {
    // The acceptor (the Join/Welcome membership endpoint) is recycled at
    // each run's orderly shutdown, so one harness backend serves many
    // consecutive jobs: fresh workers join the same endpoint for job 2.
    let (net, acceptor) = LoopbackNet::new();
    let backend = loopback_backend(Box::new(acceptor), 1);
    let skeleton = Skeleton::farm(TaskSpec::uniform(6, 1.0, 0, 0));
    let grasp = Grasp::new(GraspConfig::default());
    for job in 0..2 {
        let w = spawn_worker(&net, WorkerOptions::default());
        let report = grasp
            .run(&backend, &skeleton)
            .unwrap_or_else(|e| panic!("loopback run {job} failed: {e}"));
        assert_eq!(w.join().unwrap(), 0);
        assert_eq!(report.outcome.completed, 6, "job {job}");
        assert!(report.outcome.conserves_units_of(&skeleton), "job {job}");
    }
}
