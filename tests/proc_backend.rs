//! Acceptance tests of the process-isolated backend: cross-backend parity,
//! real serialized kernels, hard-kill survival, and typed failure modes.
//!
//! These tests live in the workspace root on purpose: the root package owns
//! the `grasp-proc-worker` binary, so Cargo builds it before these tests run
//! and hands us its exact path through `CARGO_BIN_EXE_grasp-proc-worker`.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_exec::ThreadBackend;
use grasp_repro::grasp_proc::{ProcBackend, Transport};
use grasp_repro::grasp_workloads::imaging::{ImagePipeline, ImagingFrameTask};
use grasp_repro::grasp_workloads::matmul::MatMulJob;
use std::collections::BTreeSet;

/// The worker binary Cargo built for this test run.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_grasp-proc-worker")
}

fn proc_backend(workers: usize) -> ProcBackend {
    ProcBackend::new(workers).with_config(BackendConfig::new().worker_bin(worker_bin()))
}

#[test]
fn proc_and_thread_backends_agree_on_a_fixed_seed_matmul_farm() {
    // Backend parity, extended to the third backend: the same fixed-seed
    // matmul job lowered through the same rules must cover the same unit-id
    // set exactly once on real threads and on worker processes, and both
    // outcomes must satisfy the conservation invariant.  This also pins the
    // proc backend's behaviour across the transport-trait refactor: the
    // master now speaks through `grasp_core::transport` sinks/sources (the
    // same surface the socket backend uses), and the unit-set equality here
    // must be unaffected.
    let job = MatMulJob {
        n: 96,
        block_rows: 16,
        seed: 11,
    };
    let skeleton = Skeleton::farm(job.as_tasks(1e6));
    let grasp = Grasp::new(GraspConfig::default());

    let threads = grasp
        .run(
            &ThreadBackend::new(4).with_config(BackendConfig::new().spin_per_work_unit(10)),
            &skeleton,
        )
        .expect("thread backend run failed");
    let procs = grasp
        .run(
            &proc_backend(4).with_config(BackendConfig::new().spin_per_work_unit(10)),
            &skeleton,
        )
        .expect("proc backend run failed");

    assert_eq!(procs.outcome.kind, threads.outcome.kind);
    assert_eq!(procs.outcome.completed, threads.outcome.completed);
    let t_ids: BTreeSet<usize> = threads.outcome.unit_ids.iter().copied().collect();
    let p_ids: BTreeSet<usize> = procs.outcome.unit_ids.iter().copied().collect();
    assert_eq!(t_ids, p_ids, "both backends cover the same unit set");
    assert_eq!(procs.outcome.unit_ids.len(), p_ids.len(), "no unit twice");
    assert!(threads.outcome.conserves_units_of(&skeleton));
    assert!(procs.outcome.conserves_units_of(&skeleton));
    assert!(procs.outcome.resilience.is_clean());
    match &procs.outcome.detail {
        OutcomeDetail::ProcFarm {
            workers,
            tasks_per_worker,
            bytes_sent,
            bytes_received,
            ..
        } => {
            assert_eq!(*workers, 4);
            assert_eq!(tasks_per_worker.iter().sum::<usize>(), job.task_count());
            // The serialization boundary is real: frames actually crossed it
            // in both directions.
            assert!(*bytes_sent > 0 && *bytes_received > 0);
        }
        other => panic!("unexpected detail {other:?}"),
    }
}

#[test]
fn proc_workers_compute_real_matmul_bands_with_matching_digests() {
    // Ship the *real* kernel over the wire: each worker process decodes a
    // serialized band task, regenerates the inputs from the seed, multiplies,
    // and reports a digest of the exact result bits.  The master-side digest
    // of the same band must agree — the process boundary changed nothing.
    let job = MatMulJob {
        n: 64,
        block_rows: 16,
        seed: 2026,
    };
    let skeleton = Skeleton::farm(job.as_tasks(1e6));
    let backend = proc_backend(3).with_payloads(job.wire_payloads());
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("proc matmul run failed");
    assert!(report.outcome.conserves_units_of(&skeleton));
    match &report.outcome.detail {
        OutcomeDetail::ProcFarm { unit_digests, .. } => {
            assert_eq!(unit_digests.len(), job.task_count());
            for &(unit, digest) in unit_digests {
                assert_eq!(
                    digest,
                    job.band_task(unit).digest(),
                    "band {unit} computed remotely must match the local kernel"
                );
            }
        }
        other => panic!("unexpected detail {other:?}"),
    }
}

#[test]
fn proc_workers_compute_real_imaging_frames_with_matching_digests() {
    let pipeline = ImagePipeline {
        width: 48,
        height: 32,
        frames: 9,
        seed: 77,
    };
    let skeleton = Skeleton::farm(pipeline.as_frame_tasks(1000.0));
    let backend = proc_backend(3).with_payloads(pipeline.wire_payloads());
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("proc imaging run failed");
    assert!(report.outcome.conserves_units_of(&skeleton));
    match &report.outcome.detail {
        OutcomeDetail::ProcFarm { unit_digests, .. } => {
            for &(unit, digest) in unit_digests {
                let reference = ImagingFrameTask {
                    pipeline,
                    frame: unit,
                }
                .digest();
                assert_eq!(digest, reference, "frame {unit} digest mismatch");
            }
        }
        other => panic!("unexpected detail {other:?}"),
    }
}

#[test]
fn proc_backend_survives_a_hard_killed_worker_and_conserves_units() {
    // The acceptance check of the tentpole: a worker process is SIGKILLed
    // mid-run — no unwinding, no goodbye frame, exactly a revoked grid node.
    // The master must detect the loss, requeue the in-flight units on the
    // survivors, and finish with full unit conservation and the loss visible
    // in the ResilienceReport.  Tasks are slow enough that the victim's
    // outstanding window cannot drain between dispatch and kill.
    let skeleton = Skeleton::farm(TaskSpec::uniform(40, 2.0, 0, 0));
    let backend = proc_backend(3)
        .with_config(BackendConfig::new().spin_per_work_unit(2_000_000))
        .with_fault_injection(FaultInjection::none().kill(1, 2));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("a hard-killed worker must not fail the run");
    assert_eq!(report.outcome.completed, 40);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(
        report.outcome.resilience.nodes_lost >= 1,
        "the kill must be accounted as a lost node: {:?}",
        report.outcome.resilience
    );
    assert!(
        report.outcome.resilience.requeued_tasks >= 1,
        "in-flight units of the victim must be requeued: {:?}",
        report.outcome.resilience
    );
    assert!(report.outcome.resilience.retried_tasks >= 1);
    // The loss is also on the backend-neutral audit trail.
    assert!(report
        .outcome
        .adaptation_log
        .events()
        .iter()
        .any(|e| matches!(
            e.action,
            grasp_repro::grasp_core::adaptation::AdaptationAction::NodeLost { .. }
        )));
    match &report.outcome.detail {
        OutcomeDetail::ProcFarm {
            tasks_per_worker, ..
        } => {
            // The two survivors carried the rest of the job.
            assert_eq!(tasks_per_worker.iter().sum::<usize>(), 40);
        }
        other => panic!("unexpected detail {other:?}"),
    }
}

#[test]
fn work_stealing_config_survives_a_hard_killed_proc_worker() {
    // The stealing policy's config must flow through the proc master intact:
    // on this backend `WorkStealing` degrades to its demand-driven chunk
    // formula (there are no shared deques across a process boundary), and a
    // SIGKILLed worker with outstanding units must still feed the same
    // requeue path — conservation and the ResilienceReport hold exactly as
    // under the default policy.
    use grasp_repro::grasp_core::SchedulePolicy;
    let skeleton = Skeleton::farm(TaskSpec::uniform(40, 2.0, 0, 0));
    let backend = proc_backend(3)
        .with_config(BackendConfig::new().spin_per_work_unit(2_000_000))
        .with_fault_injection(FaultInjection::none().kill(1, 2));
    let cfg = GraspConfig {
        scheduler: SchedulePolicy::WorkStealing { min_chunk: 1 },
        ..GraspConfig::default()
    };
    let report = Grasp::new(cfg)
        .run(&backend, &skeleton)
        .expect("a hard-killed worker under the stealing policy must not fail the run");
    assert_eq!(report.outcome.completed, 40);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(
        report.outcome.resilience.nodes_lost >= 1,
        "the kill must be accounted as a lost node: {:?}",
        report.outcome.resilience
    );
    assert!(
        report.outcome.resilience.requeued_tasks >= 1,
        "in-flight units of the victim must be requeued: {:?}",
        report.outcome.resilience
    );
}

#[test]
fn shm_transport_computes_real_kernels_with_matching_digests() {
    // The shared-memory ring is a drop-in transport: the same serialized
    // matmul bands cross it, the same digests come back, and the wire
    // accounting still sees every frame byte (the ring counts drained
    // bytes just like a pipe counts read ones).
    let job = MatMulJob {
        n: 64,
        block_rows: 16,
        seed: 2026,
    };
    let skeleton = Skeleton::farm(job.as_tasks(1e6));
    let backend = proc_backend(3)
        .with_transport(Transport::Shm)
        .with_payloads(job.wire_payloads());
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("shm matmul run failed");
    assert!(report.outcome.conserves_units_of(&skeleton));
    match &report.outcome.detail {
        OutcomeDetail::ProcFarm {
            unit_digests,
            bytes_sent,
            bytes_received,
            bytes_copied,
            ..
        } => {
            assert_eq!(unit_digests.len(), job.task_count());
            for &(unit, digest) in unit_digests {
                assert_eq!(digest, job.band_task(unit).digest());
            }
            assert!(*bytes_sent > 0 && *bytes_received > 0);
            // The ring writes straight from the encode buffer: nothing is
            // copied beyond the one encode per frame.
            assert_eq!(*bytes_copied, 0, "shm transport must be zero-copy");
        }
        other => panic!("unexpected detail {other:?}"),
    }
}

#[test]
fn shm_transport_survives_a_hard_killed_worker_and_conserves_units() {
    // The SIGKILL acceptance test on the ring transport: with no pipe EOF
    // to lean on, death detection is the closed flag + `/proc/<pid>` check
    // (backed by the heartbeat sweep), and it must feed the same requeue
    // path — conservation and the ResilienceReport hold unchanged.
    let skeleton = Skeleton::farm(TaskSpec::uniform(40, 2.0, 0, 0));
    let backend = proc_backend(3)
        .with_transport(Transport::Shm)
        .with_config(BackendConfig::new().spin_per_work_unit(2_000_000))
        .with_fault_injection(FaultInjection::none().kill(1, 2));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("a hard-killed shm worker must not fail the run");
    assert_eq!(report.outcome.completed, 40);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(
        report.outcome.resilience.nodes_lost >= 1,
        "the kill must be accounted as a lost node: {:?}",
        report.outcome.resilience
    );
    assert!(
        report.outcome.resilience.requeued_tasks >= 1,
        "in-flight units of the victim must be requeued: {:?}",
        report.outcome.resilience
    );
    assert!(report.outcome.resilience.retried_tasks >= 1);
}

#[test]
fn nested_skeletons_lower_and_conserve_on_the_proc_backend() {
    let job = ImagePipeline {
        width: 32,
        height: 24,
        frames: 12,
        seed: 5,
    };
    let mut skeleton = job.as_farm_of_pipelines(200.0, 3);
    if let Skeleton::FarmOf { children } = &mut skeleton {
        children.push(Skeleton::farm(TaskSpec::uniform(5, 3.0, 64, 64)));
    }
    let report = Grasp::new(GraspConfig::default())
        .run(
            &proc_backend(3).with_config(BackendConfig::new().spin_per_work_unit(10)),
            &skeleton,
        )
        .expect("nested proc run failed");
    assert_eq!(report.outcome.completed, 17);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert_eq!(report.outcome.children.len(), 4);
    assert_eq!(report.outcome.children[3].completed, 5);
}

#[test]
fn a_missing_worker_binary_is_a_typed_compile_error() {
    let backend = ProcBackend::new(2)
        .with_config(BackendConfig::new().worker_bin("/nonexistent/grasp-proc-worker"));
    let err = Grasp::new(GraspConfig::default())
        .run(&backend, &Skeleton::farm(TaskSpec::uniform(4, 1.0, 0, 0)))
        .expect_err("a missing worker binary must not panic");
    assert!(matches!(err, GraspError::WorkerUnavailable { .. }), "{err}");
}

#[test]
fn wedged_workers_are_detected_by_the_heartbeat_timeout() {
    // A worker that is alive but never speaks the protocol (here: a shell
    // sleeping forever) keeps its pipes open, so EOF detection never fires —
    // only the gridmon heartbeat timeout can unmask it.  With every worker
    // wedged the pool is eventually declared lost and the run fails typed.
    use std::io::Write;
    use std::os::unix::fs::PermissionsExt;
    let dir = std::env::temp_dir().join(format!("grasp-proc-wedge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("wedged-worker.sh");
    {
        let mut f = std::fs::File::create(&script).unwrap();
        // `exec` so the SIGKILL cleanup hits the sleeping process itself,
        // not just the shell wrapping it.
        f.write_all(b"#!/bin/sh\nexec sleep 600\n").unwrap();
    }
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();

    let backend = ProcBackend::new(2).with_config(
        BackendConfig::new()
            .worker_bin(&script)
            .heartbeat(0.05, 0.5),
    );
    let start = std::time::Instant::now();
    let err = Grasp::new(GraspConfig::default())
        .run(&backend, &Skeleton::farm(TaskSpec::uniform(8, 1.0, 0, 0)))
        .expect_err("a fully wedged pool must fail, not hang");
    assert!(matches!(err, GraspError::WorkerUnavailable { .. }), "{err}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "the heartbeat timeout must fire promptly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_frames_from_a_worker_are_a_typed_protocol_error() {
    // `/bin/cat` echoes the master's own Init frame straight back — a valid
    // frame, but one only a master may send.  The run must fail with a typed
    // wire-protocol error instead of misbehaving.
    let backend = ProcBackend::new(1).with_config(BackendConfig::new().worker_bin("/bin/cat"));
    let err = Grasp::new(GraspConfig::default())
        .run(&backend, &Skeleton::farm(TaskSpec::uniform(4, 1.0, 0, 0)))
        .expect_err("an echoing peer must be rejected");
    assert!(
        matches!(
            err,
            GraspError::WireProtocol { .. } | GraspError::WorkerUnavailable { .. }
        ),
        "{err}"
    );
}

#[test]
fn calibration_arms_without_noise_on_a_healthy_quick_run() {
    // Short healthy runs: the Algorithm-1 prefix completes (calibration is
    // reported) and the default 5 s monitor interval means no adaptation
    // actions are ever logged — same discipline as the thread backend.
    let skeleton = Skeleton::farm(TaskSpec::uniform(30, 1.0, 0, 0));
    let report = Grasp::new(GraspConfig::default())
        .run(
            &proc_backend(2).with_config(BackendConfig::new().spin_per_work_unit(10)),
            &skeleton,
        )
        .unwrap();
    assert!(report.outcome.calibration_s >= 0.0);
    assert!(report.outcome.adaptation_log.is_empty());
    assert_eq!(report.outcome.completed, 30);
}
