//! Property-based tests (proptest) over the core data structures and the
//! cross-crate invariants of the GRASP system.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_exec::{ThreadBackend, ThreadPipeline};
use grasp_repro::grasp_proc::ProcBackend;
use grasp_repro::gridsim::{
    ConstantLoad, EventQueue, Grid, GridBuilder, LoadModel, PeriodicLoad, RandomWalkLoad, SimTime,
    TopologyBuilder,
};
use grasp_repro::gridstats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------- gridstats invariants -------------------------

    /// Percentiles always lie between the sample minimum and maximum.
    #[test]
    fn percentile_is_bounded(values in prop::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let v = gridstats::percentile(&values, p).unwrap();
        let lo = gridstats::min(&values).unwrap();
        let hi = gridstats::max(&values).unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// OLS on exactly linear data recovers the coefficients.
    #[test]
    fn linear_regression_recovers_lines(
        intercept in -100.0f64..100.0,
        slope in -50.0f64..50.0,
        xs in prop::collection::vec(-1000.0f64..1000.0, 3..100),
    ) {
        // Skip degenerate (constant) predictors.
        let spread = gridstats::max(&xs).unwrap() - gridstats::min(&xs).unwrap();
        prop_assume!(spread > 1e-6);
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let fit = gridstats::linear_regression(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
    }

    /// Solving a diagonally dominant system and multiplying back reproduces b.
    #[test]
    fn matrix_solve_roundtrips(
        seed_vals in prop::collection::vec(-10.0f64..10.0, 9),
        b_vals in prop::collection::vec(-100.0f64..100.0, 3),
    ) {
        let mut data = seed_vals.clone();
        // Make the matrix strictly diagonally dominant → well conditioned.
        for i in 0..3 {
            let row_sum: f64 = (0..3).map(|j| data[i * 3 + j].abs()).sum();
            data[i * 3 + i] = row_sum + 1.0;
        }
        let a = gridstats::Matrix::from_vec(3, 3, data).unwrap();
        let b = gridstats::Matrix::column(&b_vals);
        let x = a.solve(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        prop_assert!(back.max_abs_diff(&b).unwrap() < 1e-6);
    }

    /// Dense ranks are a permutation-invariant of the sorted order: every rank
    /// is between 1 and the number of distinct values.
    #[test]
    fn dense_ranks_are_well_formed(values in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let ranks = gridstats::dense_ranks(&values);
        prop_assert_eq!(ranks.len(), values.len());
        let max_rank = *ranks.iter().max().unwrap();
        prop_assert!(ranks.iter().all(|&r| r >= 1 && r <= max_rank));
        prop_assert!(max_rank <= values.len());
    }

    // ------------------------- gridsim invariants ---------------------------

    /// Load models always report loads in [0, 1) and availability in (0, 1].
    #[test]
    fn load_models_stay_bounded(
        mean in 0.0f64..1.5,
        amplitude in 0.0f64..1.0,
        period in 1.0f64..1000.0,
        volatility in 0.0f64..0.3,
        seed in any::<u64>(),
        t in 0.0f64..1e5,
    ) {
        let models: Vec<Box<dyn LoadModel>> = vec![
            Box::new(ConstantLoad::new(mean)),
            Box::new(PeriodicLoad::new(mean, amplitude, period, 0.0)),
            Box::new(RandomWalkLoad::new(mean, volatility, 1.0, 500.0, seed)),
        ];
        for m in &models {
            let load = m.load_at(SimTime::new(t));
            prop_assert!((0.0..1.0).contains(&load), "load {} out of range", load);
            prop_assert!(m.availability_at(SimTime::new(t)) > 0.0);
        }
    }

    /// The event queue always pops events in non-decreasing time order.
    #[test]
    fn event_queue_pops_in_order(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::new(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time >= last);
            last = ev.time;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Executing work on an idle node takes exactly work/speed seconds and is
    /// additive: doing it in two halves lands at the same completion time.
    #[test]
    fn grid_execution_is_consistent(
        speed in 1.0f64..200.0,
        work in 0.1f64..1e4,
        start in 0.0f64..1e4,
    ) {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(1, speed));
        let n = grid.node_ids()[0];
        let whole = grid.execute(n, work, SimTime::new(start)).unwrap();
        let half = grid.execute(n, work / 2.0, SimTime::new(start)).unwrap();
        let rest = grid.execute(n, work / 2.0, half).unwrap();
        prop_assert!((whole.as_secs() - (start + work / speed)).abs() < 1e-6);
        prop_assert!((rest.as_secs() - whole.as_secs()).abs() < 1e-6);
    }

    /// External load can only slow execution down, never speed it up.
    #[test]
    fn load_never_speeds_execution_up(
        load in 0.0f64..0.95,
        work in 1.0f64..1000.0,
    ) {
        let idle = Grid::dedicated(TopologyBuilder::uniform_cluster(1, 50.0));
        let busy = GridBuilder::new(TopologyBuilder::uniform_cluster(1, 50.0))
            .uniform_node_load(ConstantLoad::new(load))
            .build();
        let n = idle.node_ids()[0];
        let t_idle = idle.execute(n, work, SimTime::ZERO).unwrap();
        let t_busy = busy.execute(n, work, SimTime::ZERO).unwrap();
        prop_assert!(t_busy >= t_idle);
    }

    // ------------------------- grasp-core invariants ------------------------

    /// The scheduler never hands out zero tasks while work remains, never more
    /// than remains, and static block covers the pool in one round per worker.
    #[test]
    fn scheduler_chunks_are_valid(
        remaining in 1usize..10_000,
        workers in 1usize..128,
        weight in 0.01f64..20.0,
        chunk in 1usize..64,
        factor in 0.01f64..1.0,
    ) {
        let policies = [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduling,
            SchedulePolicy::FixedChunk { chunk },
            SchedulePolicy::Guided { min_chunk: chunk },
            SchedulePolicy::Factoring { factor },
            SchedulePolicy::AdaptiveWeighted { min_chunk: chunk },
            SchedulePolicy::WorkStealing { min_chunk: chunk },
        ];
        for p in policies {
            // Total-less view: the dynamic policies ignore the job total, so
            // `remaining` stands in for it; StaticBlock's total-aware path is
            // covered by its dedicated unit test.
            let c = p.next_chunk_with_total(remaining, remaining, workers, weight);
            prop_assert!(c >= 1 && c <= remaining, "{:?} gave {}", p, c);
        }
    }

    /// Every policy drains any job: chunks never go to zero while work
    /// remains (liveness), and the handed-out chunks sum exactly to the
    /// total (conservation).
    #[test]
    fn scheduler_drains_and_conserves(
        total in 1usize..5_000,
        workers in 1usize..64,
        weight in 0.01f64..20.0,
        chunk in 1usize..64,
        factor in 0.01f64..1.0,
    ) {
        let policies = [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduling,
            SchedulePolicy::FixedChunk { chunk },
            SchedulePolicy::Guided { min_chunk: chunk },
            SchedulePolicy::Factoring { factor },
            SchedulePolicy::AdaptiveWeighted { min_chunk: chunk },
            SchedulePolicy::WorkStealing { min_chunk: chunk },
        ];
        for p in policies {
            let mut remaining = total;
            let mut handed = 0usize;
            let mut rounds = 0usize;
            while remaining > 0 {
                let c = p.next_chunk_with_total(remaining, total, workers, weight);
                prop_assert!(c >= 1 && c <= remaining, "{:?} gave {} of {}", p, c, remaining);
                remaining -= c;
                handed += c;
                rounds += 1;
                prop_assert!(rounds <= total, "{:?} failed to make progress", p);
            }
            prop_assert_eq!(handed, total);
        }
    }

    /// The work-stealing owner/thief protocol partitions any seeded range
    /// exactly, for any interleaving of owner bites and top-half steals:
    /// neither side hands out zero while work remains, and the pieces sum
    /// to the range length.
    #[test]
    fn work_stealing_owner_and_thief_conserve_the_range(
        len in 1usize..5_000,
        workers in 1usize..64,
        weight in 0.0f64..20.0,
        chunk in 1usize..64,
        interleave in any::<u64>(),
    ) {
        let policy = SchedulePolicy::WorkStealing { min_chunk: chunk };
        let mut remaining = len;
        let mut handed = 0usize;
        let mut turn = interleave;
        while remaining > 0 {
            // A pseudo-random interleaving of thief and owner turns; a
            // thief's share is 0 on a lone last task, which the owner then
            // takes (the protocol's liveness guarantee).
            let steal_turn = turn & 1 == 1;
            turn = turn.rotate_right(1) ^ 0x9e37_79b9_7f4a_7c15;
            let c = if steal_turn {
                SchedulePolicy::steal_share(remaining)
            } else {
                policy.owner_chunk(remaining, workers, weight)
            };
            if c == 0 {
                prop_assert!(steal_turn && remaining == 1, "owner gave 0 of {}", remaining);
                continue;
            }
            prop_assert!(c <= remaining);
            remaining -= c;
            handed += c;
        }
        prop_assert_eq!(handed, len);
    }

    /// Thresholds grow monotonically with the factor and never fall below the
    /// best calibrated time.
    #[test]
    fn threshold_monotone_in_factor(
        times in prop::collection::vec(0.01f64..100.0, 1..50),
        f1 in 1.0f64..4.0,
        delta in 0.0f64..4.0,
    ) {
        let z1 = ThresholdPolicy::Factor { factor: f1 }.compute(&times);
        let z2 = ThresholdPolicy::Factor { factor: f1 + delta }.compute(&times);
        prop_assert!(z2 >= z1);
        prop_assert!(z1 >= gridstats::min(&times).unwrap() - 1e-12);
    }

    /// Every farm run completes every task exactly once, whatever the task
    /// sizes, on a small heterogeneous grid.
    #[test]
    fn farm_completes_every_task_exactly_once(
        works in prop::collection::vec(1.0f64..200.0, 1..60),
        nodes in 2usize..6,
        seed in any::<u64>(),
    ) {
        let tasks: Vec<TaskSpec> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| TaskSpec::new(i, w, 1024, 1024))
            .collect();
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(nodes, 10.0, 80.0, seed));
        let out = TaskFarm::new(GraspConfig::default()).run(&grid, &tasks).unwrap();
        prop_assert_eq!(out.completed_tasks(), tasks.len());
        let mut ids: Vec<usize> = out.task_outcomes.iter().map(|o| o.task).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), tasks.len());
        // Makespan can never beat the aggregate-capacity lower bound.
        let total_work: f64 = works.iter().sum();
        let bound = total_work / grid.topology().aggregate_speed();
        prop_assert!(out.makespan.as_secs() >= bound - 1e-6);
    }

    /// The pipeline preserves stream length and order for any stage shape.
    #[test]
    fn pipeline_preserves_stream_order(
        stage_works in prop::collection::vec(1.0f64..50.0, 1..5),
        items in 1usize..40,
    ) {
        let stages: Vec<StageSpec> = stage_works
            .iter()
            .enumerate()
            .map(|(i, &w)| StageSpec::new(i, w, 1024, 1024))
            .collect();
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(4, 40.0));
        let out = Pipeline::new(GraspConfig::default()).run(&grid, &stages, items).unwrap();
        prop_assert_eq!(out.items, items);
        prop_assert_eq!(out.item_completions.len(), items);
        prop_assert!(out.item_completions.windows(2).all(|w| w[0] <= w[1]));
    }
}

// ---------------- speculation / migration invariants ----------------
//
// These cases drive real worker threads (and, for the proc backend, real
// worker processes), so the case counts are kept deliberately small: the
// point is to randomise the race geometry — task counts, pool sizes, tail
// fractions, degradation points — not to grind thousands of executions.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// First-result-wins speculation must count every unit exactly once,
    /// whatever the winner/loser races do: the unit-id multiset equals the
    /// skeleton's, and wins never exceed launches.
    #[test]
    fn thread_speculation_never_double_counts_a_unit(
        tasks in 6usize..40,
        workers in 2usize..5,
        fraction in 0.05f64..1.0,
        slow_factor in 2.0f64..30.0,
    ) {
        let skeleton = Skeleton::farm(TaskSpec::uniform(tasks, 2.0, 0, 0));
        let backend = ThreadBackend::new(workers).with_config(
            BackendConfig::new()
                .spin_per_work_unit(500)
                .faults(FaultInjection::none().worker_slowdown(0, 0, slow_factor)),
        );
        let mut cfg = GraspConfig {
            scheduler: SchedulePolicy::SelfScheduling,
            ..GraspConfig::default()
        };
        cfg.execution.adaptive = true;
        cfg.execution.min_active_nodes = workers;
        cfg.execution.speculate_tail_fraction = fraction;
        let report = Grasp::new(cfg).run(&backend, &skeleton).unwrap();
        prop_assert_eq!(report.outcome.completed, tasks);
        prop_assert!(report.outcome.conserves_units_of(&skeleton));
        let r = &report.outcome.resilience;
        prop_assert!(
            r.speculation_wins <= r.speculated_units,
            "wins {} above launches {}", r.speculation_wins, r.speculated_units
        );
    }

    /// Live stage migration under a randomised breach point must never lose,
    /// duplicate, or reorder an item: the output equals the sequential
    /// reference whether or not the checkpoint/re-home path fired.
    #[test]
    fn pipeline_migration_preserves_the_stream(
        items in 40usize..120,
        degrade_after in 10usize..40,
        degrade_spin in 40_000u64..120_000,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        let hook = done.clone();
        let exec = ExecutionConfig {
            threshold: ThresholdPolicy::Factor { factor: 3.0 },
            monitor_interval_s: 1e-4,
            migrate_stages: true,
            ..ExecutionConfig::default()
        };
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage(move |x: u64| {
                let n = hook.fetch_add(1, Ordering::Relaxed);
                grasp_repro::grasp_exec::spin(if n >= degrade_after {
                    degrade_spin
                } else {
                    1_000
                });
                x * 2
            })
            .with_adaptation(exec)
            .with_migration(|x, w| w.put_u64(*x), |r| r.take_u64());
        let stream: Vec<u64> = (0..items as u64).collect();
        let expected: Vec<u64> = stream.iter().map(|x| (x + 1) * 2).collect();
        let (out, _stats) = pipeline.try_run(stream).unwrap();
        prop_assert_eq!(out, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The `migrate_stages` flag must be conservation-neutral on every
    /// backend that accepts a pipeline expression: the simulator (which
    /// re-homes via its own StageRemapped path), real threads (checkpoint +
    /// standby re-home), and worker processes (pipelines lower to farms —
    /// the flag must simply never corrupt the unit set).
    #[test]
    fn migration_config_conserves_units_on_sim_thread_and_proc(
        stage_works in prop::collection::vec(1.0f64..30.0, 2..4),
        items in 10usize..40,
    ) {
        let stages: Vec<StageSpec> = stage_works
            .iter()
            .enumerate()
            .map(|(i, &w)| StageSpec::new(i, w, 128, 128))
            .collect();
        let skeleton = Skeleton::pipeline(stages, items);
        let mut cfg = GraspConfig::default();
        cfg.execution.migrate_stages = true;
        cfg.execution.monitor_interval_s = 1e-3;
        let grasp = Grasp::new(cfg);

        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(4, 40.0));
        let sim = grasp.run(&SimBackend::new(&grid), &skeleton).unwrap();
        prop_assert!(sim.outcome.conserves_units_of(&skeleton));
        prop_assert_eq!(sim.outcome.completed, items);

        let threads = grasp
            .run(
                &ThreadBackend::new(3).with_config(BackendConfig::new().spin_per_work_unit(10)),
                &skeleton,
            )
            .unwrap();
        prop_assert!(threads.outcome.conserves_units_of(&skeleton));
        prop_assert_eq!(threads.outcome.completed, items);

        let procs = grasp
            .run(
                &ProcBackend::new(2).with_config(
                    BackendConfig::new()
                        .worker_bin(env!("CARGO_BIN_EXE_grasp-proc-worker"))
                        .spin_per_work_unit(10),
                ),
                &skeleton,
            )
            .unwrap();
        prop_assert!(procs.outcome.conserves_units_of(&skeleton));
        prop_assert_eq!(procs.outcome.completed, items);
    }

    /// Master-side speculation on the process backend: duplicated dispatches
    /// settle first-result-wins in the completion map, so the unit set must
    /// stay exact and the counters ordered even across worker processes.
    #[test]
    fn proc_speculation_never_double_counts_a_unit(
        tasks in 8usize..20,
        fraction in 0.1f64..0.8,
    ) {
        let skeleton = Skeleton::farm(TaskSpec::uniform(tasks, 1.0, 0, 0));
        let backend = ProcBackend::new(3).with_config(
            BackendConfig::new()
                .worker_bin(env!("CARGO_BIN_EXE_grasp-proc-worker"))
                .spin_per_work_unit(20_000),
        );
        let mut cfg = GraspConfig::default();
        cfg.execution.adaptive = true;
        cfg.execution.speculate_tail_fraction = fraction;
        let report = Grasp::new(cfg).run(&backend, &skeleton).unwrap();
        prop_assert_eq!(report.outcome.completed, tasks);
        prop_assert!(report.outcome.conserves_units_of(&skeleton));
        let r = &report.outcome.resilience;
        prop_assert!(r.speculation_wins <= r.speculated_units);
    }
}
