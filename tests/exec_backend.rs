//! Cross-crate integration: the real-thread backend executing the real
//! workload kernels, plus unified-API parity between the simulated and
//! thread backends on nested skeletons.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_core::SchedulePolicy;
use grasp_repro::grasp_exec::{ThreadBackend, ThreadFarm, ThreadPipeline};
use grasp_repro::grasp_workloads::imaging::ImagePipeline;
use grasp_repro::grasp_workloads::mandelbrot::MandelbrotJob;
use grasp_repro::grasp_workloads::matmul::MatMulJob;
use grasp_repro::grasp_workloads::seqmatch::SequenceMatchJob;
use grasp_repro::gridsim::{Grid, TopologyBuilder};
use std::collections::BTreeSet;

#[test]
fn thread_farm_renders_mandelbrot_tiles_identically_to_sequential() {
    let job = MandelbrotJob::small();
    let tiles = job.tiles();
    let sequential: Vec<Vec<u32>> = tiles.iter().map(|t| job.render_tile(t)).collect();
    let farm = ThreadFarm::new(4).with_policy(SchedulePolicy::SelfScheduling);
    let (parallel, stats) = farm.run(&tiles, |t| job.render_tile(t));
    assert_eq!(
        parallel, sequential,
        "parallel result must equal sequential"
    );
    assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), tiles.len());
}

#[test]
fn thread_farm_scores_sequences_identically_across_policies() {
    let job = SequenceMatchJob::small();
    let queries = job.generate_queries();
    let subjects = job.generate_subjects();
    let reference: Vec<Vec<i64>> = queries
        .iter()
        .map(|q| job.score_query(q, &subjects))
        .collect();
    for policy in [
        SchedulePolicy::StaticBlock,
        SchedulePolicy::Guided { min_chunk: 1 },
        SchedulePolicy::AdaptiveWeighted { min_chunk: 1 },
    ] {
        let farm = ThreadFarm::new(3).with_policy(policy);
        let (scores, _) = farm.run(&queries, |q| job.score_query(q, &subjects));
        assert_eq!(scores, reference, "{policy:?}");
    }
}

#[test]
fn thread_and_simulation_backends_agree_on_a_fixed_seed_matmul_farm() {
    // Backend parity: the same fixed-seed matmul job is farmed out through
    // both backends.  The thread backend must produce the numerically exact
    // sequential product, and the simulated backend must account for exactly
    // the same task set — same ids, each exactly once — so that experiments
    // can switch backends without changing what "the job" means.
    let job = MatMulJob {
        n: 96,
        block_rows: 16,
        seed: 11,
    };
    let (a, b) = job.generate_inputs();
    let bands: Vec<usize> = (0..job.task_count()).collect();
    let sequential: Vec<Vec<f64>> = bands
        .iter()
        .map(|&i| job.multiply_band(&a, &b, i * job.block_rows, job.block_rows))
        .collect();

    // Real-thread backend: numeric results in task order.
    let farm = ThreadFarm::new(4).with_policy(SchedulePolicy::AdaptiveWeighted { min_chunk: 1 });
    let (threaded, stats) = farm.run(&bands, |&i| {
        job.multiply_band(&a, &b, i * job.block_rows, job.block_rows)
    });
    assert_eq!(threaded, sequential, "thread backend must be bit-identical");
    assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), bands.len());

    // Simulated backend: the same job as abstract tasks on a heterogeneous
    // grid.  Same task-id set, every id exactly once, nothing lost.
    let tasks = job.as_tasks(1e6);
    assert_eq!(tasks.len(), bands.len());
    let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(4, 20.0, 80.0, 11));
    let out = TaskFarm::new(GraspConfig::default())
        .run(&grid, &tasks)
        .unwrap();
    assert_eq!(out.completed_tasks(), bands.len());
    let sim_ids: BTreeSet<usize> = out.task_outcomes.iter().map(|o| o.task).collect();
    let expected_ids: BTreeSet<usize> = bands.iter().copied().collect();
    assert_eq!(
        sim_ids, expected_ids,
        "both backends cover the same task set"
    );
    assert_eq!(
        out.task_outcomes.len(),
        sim_ids.len(),
        "no task may be executed twice"
    );
}

#[test]
fn sim_and_thread_backends_agree_on_a_fixed_seed_farm_of_pipelines() {
    // The acceptance check of the unified API: one nested farm-of-pipelines
    // expression (three imaging lanes plus a farm of independent tasks),
    // fixed seed, run through `Grasp::run` on BOTH backends.  The clocks
    // differ (virtual vs wall), but the structural results must agree: same
    // unit-id set covered exactly once, same per-child unit counts, and the
    // conservation invariant holds against the expression on both sides.
    let job = grasp_repro::grasp_workloads::imaging::ImagePipeline {
        width: 64,
        height: 48,
        frames: 24,
        seed: 2007,
    };
    let mut skeleton = job.as_farm_of_pipelines(200.0, 3);
    if let Skeleton::FarmOf { children } = &mut skeleton {
        children.push(Skeleton::farm(TaskSpec::uniform(10, 5.0, 1024, 1024)));
    }

    let grid = grasp_repro::gridsim::Grid::dedicated(TopologyBuilder::heterogeneous_cluster(
        6, 20.0, 80.0, 2007,
    ));
    let grasp = Grasp::new(GraspConfig::default());
    let sim = grasp
        .run(&SimBackend::new(&grid), &skeleton)
        .expect("sim backend run failed");
    let threads = grasp
        .run(
            &ThreadBackend::new(4).with_config(BackendConfig::new().spin_per_work_unit(10)),
            &skeleton,
        )
        .expect("thread backend run failed");

    assert_eq!(sim.outcome.kind, SkeletonKind::FarmOfPipelines);
    assert_eq!(sim.outcome.kind, threads.outcome.kind);
    assert_eq!(sim.outcome.completed, 34);
    assert_eq!(sim.outcome.completed, threads.outcome.completed);
    let sim_ids: BTreeSet<usize> = sim.outcome.unit_ids.iter().copied().collect();
    let thread_ids: BTreeSet<usize> = threads.outcome.unit_ids.iter().copied().collect();
    assert_eq!(sim_ids, thread_ids, "both backends cover the same unit set");
    assert_eq!(sim.outcome.unit_ids.len(), sim_ids.len(), "no unit twice");
    assert_eq!(sim.outcome.children.len(), threads.outcome.children.len());
    for (s, t) in sim.outcome.children.iter().zip(&threads.outcome.children) {
        assert_eq!(s.completed, t.completed, "per-lane counts agree");
        assert_eq!(s.kind, t.kind);
    }
    assert!(sim.outcome.conserves_units_of(&skeleton));
    assert!(threads.outcome.conserves_units_of(&skeleton));
}

#[test]
fn thread_backend_with_injected_worker_panic_completes_and_reports_retries() {
    // The acceptance check of the fault-hardened execution layer: a
    // ThreadBackend run in which worker panics are injected mid-stream must
    // complete every unit exactly once (no process abort, no missing slot)
    // and surface the recovery work through the backend-neutral
    // `ResilienceReport` on the outcome.
    let skeleton = Skeleton::farm(TaskSpec::uniform(80, 2.0, 0, 0));
    // Attempts exceed the injection budget + 1: on a low-core machine the
    // scheduler can hand every retry of one task to the same point in the
    // injection sequence, so with attempts == injections a single task may
    // absorb all three injected panics and legitimately fail the run.
    let backend = ThreadBackend::new(4).with_config(
        BackendConfig::new()
            .spin_per_work_unit(1)
            .max_task_attempts(5)
            .faults(FaultInjection::none().panics(3)),
    );
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("injected worker panics must be survived");
    assert_eq!(report.outcome.completed, 80);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(
        report.outcome.resilience.retried_tasks > 0,
        "recovery must be visible in the outcome: {:?}",
        report.outcome.resilience
    );
    assert!(report.outcome.resilience.requeued_tasks >= report.outcome.resilience.retried_tasks);

    // The same expression on a fault-free backend reports a clean run.
    let clean = Grasp::new(GraspConfig::default())
        .run(
            &ThreadBackend::new(4).with_config(BackendConfig::new().spin_per_work_unit(1)),
            &skeleton,
        )
        .unwrap();
    assert!(clean.outcome.resilience.is_clean());
}

#[test]
fn work_stealing_farm_with_injected_panics_conserves_and_reports_recovery() {
    // Steal-path fault coverage: with the work-stealing scheduler the farm
    // dispatches through per-worker deques, so a panicking worker dies with
    // a non-empty deque.  The demotion drain plus the retry pass must still
    // complete every unit exactly once, and the recovery must be visible in
    // the ResilienceReport alongside the new steal counters.
    let skeleton = Skeleton::farm(TaskSpec::uniform(80, 2.0, 0, 0));
    let backend = ThreadBackend::new(4).with_config(
        BackendConfig::new()
            .spin_per_work_unit(1)
            .max_task_attempts(5)
            .faults(FaultInjection::none().panics(3)),
    );
    let cfg = GraspConfig {
        scheduler: SchedulePolicy::WorkStealing { min_chunk: 1 },
        ..GraspConfig::default()
    };
    let report = Grasp::new(cfg)
        .run(&backend, &skeleton)
        .expect("injected panics on the stealing farm must be survived");
    assert_eq!(report.outcome.completed, 80);
    assert!(report.outcome.conserves_units_of(&skeleton));
    assert!(
        report.outcome.resilience.retried_tasks > 0,
        "recovery must be visible in the outcome: {:?}",
        report.outcome.resilience
    );
    assert!(report.outcome.resilience.requeued_tasks >= report.outcome.resilience.retried_tasks);
    match &report.outcome.detail {
        OutcomeDetail::ThreadFarm {
            tasks_per_worker,
            steals_attempted,
            steals_completed,
            units_stolen,
            ..
        } => {
            assert_eq!(tasks_per_worker.iter().sum::<usize>(), 80);
            assert!(
                steals_attempted >= steals_completed,
                "completed steals are a subset of attempts: {steals_attempted} < {steals_completed}"
            );
            // Every completed steal moved at least one unit.
            assert!(units_stolen >= steals_completed);
        }
        other => panic!("unexpected detail {other:?}"),
    }
}

#[test]
fn injected_slowdown_worker_is_demoted_through_the_shared_engine() {
    // The acceptance check of the backend-neutral adaptation engine: the
    // SAME monitor→threshold→recalibrate loop that steers the simulated
    // grid runs on real threads.  Worker 0 slows down 25x mid-run (after
    // the calibration prefix); its wall-clock per-work-unit times breach
    // `demote_factor x Z`, the engine emits a demote directive, and the
    // backend applies it through the farm's worker gate — visible as a
    // `NodeDemoted` entry in the backend-neutral adaptation log, after
    // which the demoted worker stops absorbing work.
    use grasp_repro::grasp_core::adaptation::AdaptationAction;
    use grasp_repro::gridsim::NodeId;

    // Tuning for robustness on noisy, oversubscribed machines.  Three
    // constraints pin the numbers: the slowed worker's unit time must stay
    // well under the monitor interval (so it reports into nearly every
    // evaluation window — otherwise evaluations without worker-0
    // observations can hand the demotion slots to noisy healthy workers);
    // the 25x factor must dwarf `demote_factor x threshold_factor` (6x)
    // even when CPU contention skews wall-clock ratios a few x; and the
    // run must span many intervals so a late demotion still lands.
    // Self-scheduling keeps at most one unit in flight on the slow worker,
    // and `min_active_nodes = 1` guarantees a demotion slot remains even if
    // scheduler noise demotes a healthy worker spuriously (the gate itself
    // keeps the last active worker running).
    let skeleton = Skeleton::farm(TaskSpec::uniform(3000, 1.0, 0, 0));
    let backend = ThreadBackend::new(4).with_config(
        BackendConfig::new()
            .spin_per_work_unit(30_000)
            .faults(FaultInjection::none().worker_slowdown(0, 8, 25.0)),
    );
    let mut cfg = GraspConfig {
        scheduler: SchedulePolicy::SelfScheduling,
        ..GraspConfig::default()
    };
    cfg.execution.monitor_interval_s = 3e-3; // wall seconds
    cfg.execution.min_active_nodes = 1;
    let report = Grasp::new(cfg)
        .run(&backend, &skeleton)
        .expect("a slowed worker must not fail the run");
    assert_eq!(report.outcome.completed, 3000);
    assert!(report.outcome.conserves_units_of(&skeleton));
    let log = &report.outcome.adaptation_log;
    assert!(
        log.demotions() >= 1,
        "the 25x worker must be demoted: {}",
        log.summary()
    );
    assert!(
        log.events().iter().any(|e| matches!(
            e.action,
            AdaptationAction::NodeDemoted { node, .. } if node == NodeId(0)
        )),
        "worker 0 specifically must be among the demoted: {}",
        log.summary()
    );
    // The engine's view and the counters agree.
    assert_eq!(report.outcome.adaptations(), log.len());
    match &report.outcome.detail {
        OutcomeDetail::ThreadFarm {
            load_per_worker,
            tasks_per_worker,
            ..
        } => {
            // The gridmon wall-observation plumbing reports one (clamped)
            // load estimate per worker; its magnitude for a quickly-demoted
            // worker is history-dependent, so the numeric tracking is
            // asserted in gridmon's own unit tests, not here.
            assert_eq!(load_per_worker.len(), 4);
            assert!(load_per_worker.iter().all(|l| (0.0..=1.0).contains(l)));
            // Demotion stops the worker: the healthy workers carried the
            // bulk of the stream.
            let healthy: usize = tasks_per_worker[1..].iter().sum();
            assert!(
                healthy > tasks_per_worker[0],
                "demand must shift away from the slowed worker: {tasks_per_worker:?}"
            );
        }
        other => panic!("unexpected detail {other:?}"),
    }
}

#[test]
fn thread_pipeline_matches_sequential_image_processing() {
    let job = ImagePipeline::small();
    let frames: Vec<_> = (0..6).map(|i| job.frame(i)).collect();
    let sequential: Vec<_> = frames.iter().map(|f| job.process_frame(f)).collect();

    let j = job;
    let pipeline = ThreadPipeline::new()
        .stage(move |f: grasp_repro::grasp_workloads::imaging::SyntheticImage| f.blur())
        .stage(|f| f.sharpen())
        .stage(|f| f.edges())
        .stage(|f| f.threshold(96.0));
    let _ = j;
    let (out, stats) = pipeline.run(frames);
    assert_eq!(out.len(), 6);
    for (a, b) in out.iter().zip(&sequential) {
        assert_eq!(a.pixels.len(), b.pixels.len());
        assert_eq!(a.pixels, b.pixels, "pipeline output must match sequential");
    }
    assert_eq!(stats.items_per_stage, vec![6, 6, 6, 6]);
}
