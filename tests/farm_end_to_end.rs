//! Cross-crate integration: real workload generators driving the adaptive
//! farm on the simulated grid.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_workloads::{
    blackscholes::BlackScholesSweep, mandelbrot::MandelbrotJob, quadrature::QuadratureJob,
    seqmatch::SequenceMatchJob,
};
use grasp_repro::gridsim::{ConstantLoad, Grid, GridBuilder, TopologyBuilder};
use std::collections::BTreeSet;

fn loaded_grid(nodes: usize) -> Grid {
    let topo = TopologyBuilder::heterogeneous_cluster(nodes, 20.0, 80.0, 5);
    let node_ids = topo.node_ids();
    let mut builder = GridBuilder::new(topo);
    for &n in &node_ids {
        builder = builder.node_load(n, ConstantLoad::new(0.1 * (n.index() % 4) as f64));
    }
    builder.build()
}

fn assert_complete(outcome: &FarmOutcome, expected: usize) {
    assert_eq!(outcome.completed_tasks(), expected);
    let ids: BTreeSet<usize> = outcome.task_outcomes.iter().map(|o| o.task).collect();
    assert_eq!(ids.len(), expected, "every task id exactly once");
    assert!(outcome.makespan.as_secs() > 0.0);
}

#[test]
fn mandelbrot_sweep_completes_on_the_grid() {
    let job = MandelbrotJob::small();
    let tasks = job.as_tasks(500.0);
    let expected = tasks.len();
    let out = TaskFarm::new(GraspConfig::default())
        .run(&loaded_grid(8), &tasks)
        .unwrap();
    assert_complete(&out, expected);
}

#[test]
fn irregular_mandelbrot_tasks_are_balanced_toward_fast_nodes() {
    let job = MandelbrotJob {
        tiles_x: 8,
        tiles_y: 6,
        ..MandelbrotJob::small()
    };
    let tasks = job.as_tasks(200.0);
    let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(6, 10.0, 80.0, 9));
    let mut cfg = GraspConfig::default();
    cfg.calibration.selection_fraction = 1.0;
    let out = TaskFarm::new(cfg).run(&grid, &tasks).unwrap();
    assert_complete(&out, tasks.len());
    // The single fastest node should have done more tasks than the slowest.
    let speeds: Vec<f64> = grid
        .node_ids()
        .iter()
        .map(|&n| grid.node(n).unwrap().base_speed)
        .collect();
    let fastest = gridstats_argmax(&speeds);
    let slowest = gridstats_argmin(&speeds);
    let f = out
        .per_node_tasks
        .get(&grid.node_ids()[fastest])
        .copied()
        .unwrap_or(0);
    let s = out
        .per_node_tasks
        .get(&grid.node_ids()[slowest])
        .copied()
        .unwrap_or(0);
    assert!(f >= s, "fastest node did {f}, slowest did {s}");
}

fn gridstats_argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

fn gridstats_argmin(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

#[test]
fn sequence_match_sweep_with_statistical_calibration() {
    let job = SequenceMatchJob {
        queries: 48,
        ..SequenceMatchJob::small()
    };
    let tasks = job.as_tasks(2_000.0);
    let out = TaskFarm::new(GraspConfig::adaptive_multivariate())
        .run(&loaded_grid(10), &tasks)
        .unwrap();
    assert_complete(&out, 48);
    assert_eq!(out.calibration.mode, CalibrationMode::Multivariate);
}

#[test]
fn quadrature_panels_and_blackscholes_batches_complete() {
    let quad = QuadratureJob {
        panels: 64,
        ..QuadratureJob::small()
    };
    let out = TaskFarm::new(GraspConfig::default())
        .run(&loaded_grid(6), &quad.as_tasks(100.0))
        .unwrap();
    assert_complete(&out, 64);

    let sweep = BlackScholesSweep {
        options: 2_000,
        batch_size: 100,
        seed: 3,
    };
    let out = TaskFarm::new(GraspConfig::self_scheduling_baseline())
        .run(&loaded_grid(6), &sweep.as_tasks(50.0))
        .unwrap();
    assert_complete(&out, 20);
}

#[test]
fn adaptive_configuration_never_loses_to_static_by_much_on_a_loaded_grid() {
    let tasks = TaskSpec::uniform(150, 60.0, 16 * 1024, 16 * 1024);
    let adaptive = TaskFarm::new(GraspConfig::default())
        .run(&loaded_grid(8), &tasks)
        .unwrap();
    let rigid = TaskFarm::new(GraspConfig::static_baseline())
        .run(&loaded_grid(8), &tasks)
        .unwrap();
    assert!(
        adaptive.makespan.as_secs() <= rigid.makespan.as_secs() * 1.10,
        "adaptive {} vs static {}",
        adaptive.makespan.as_secs(),
        rigid.makespan.as_secs()
    );
}
