//! Integration tests of the four-phase GRASP life-cycle and of the
//! methodology-level invariants the paper states, through the unified
//! `Grasp::run(&backend, &skeleton)` entry point.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::gridsim::{ConstantLoad, Grid, GridBuilder, TopologyBuilder};

fn grid() -> Grid {
    let topo = TopologyBuilder::heterogeneous_cluster(10, 20.0, 80.0, 17);
    let ids = topo.node_ids();
    let mut b = GridBuilder::new(topo);
    for &n in &ids {
        b = b.node_load(n, ConstantLoad::new(0.05 * (n.index() % 5) as f64));
    }
    b.build()
}

fn sim_farm(outcome: &SkeletonOutcome) -> &FarmOutcome {
    match &outcome.detail {
        OutcomeDetail::SimFarm(farm) => farm,
        other => panic!("expected a simulated farm outcome, got {other:?}"),
    }
}

#[test]
fn calibration_work_is_part_of_the_job_not_wasted() {
    // Paper: "the processing performed during the calibration contributes to
    // the overall job".
    let skeleton = Skeleton::farm(TaskSpec::uniform(100, 40.0, 8 * 1024, 8 * 1024));
    let mut cfg = GraspConfig::default();
    cfg.calibration.samples_per_node = 3;
    let g = grid();
    let report = Grasp::new(cfg)
        .run(&SimBackend::new(&g), &skeleton)
        .unwrap();
    let farm = sim_farm(&report.outcome);
    let calib: Vec<_> = farm
        .task_outcomes
        .iter()
        .filter(|o| o.during_calibration)
        .collect();
    assert_eq!(calib.len(), 30, "10 nodes x 3 samples drawn from the job");
    assert_eq!(report.outcome.completed, 100, "none of them run twice");
}

#[test]
fn static_phases_consume_no_grid_time() {
    let skeleton = Skeleton::farm(TaskSpec::uniform(40, 40.0, 1024, 1024));
    let g = grid();
    let report = Grasp::new(GraspConfig::default())
        .run(&SimBackend::new(&g), &skeleton)
        .unwrap();
    assert!(report.phases.programming.is_zero());
    assert!(report.phases.compilation.is_zero());
    assert!(report.phases.calibration.as_secs() > 0.0);
}

#[test]
fn threshold_factor_controls_how_often_the_farm_adapts() {
    // A tighter threshold can only produce at least as many adaptations.
    let skeleton = Skeleton::farm(TaskSpec::uniform(200, 40.0, 8 * 1024, 8 * 1024));
    let run = |factor: f64| {
        let mut cfg = GraspConfig::default();
        cfg.execution.threshold = ThresholdPolicy::Factor { factor };
        cfg.execution.monitor_interval_s = 2.0;
        let g = grid();
        Grasp::new(cfg)
            .run(&SimBackend::new(&g), &skeleton)
            .unwrap()
            .outcome
            .adaptations()
    };
    let tight = run(1.05);
    let loose = run(8.0);
    assert!(tight >= loose, "tight {tight} vs loose {loose}");
}

#[test]
fn disabling_adaptation_reproduces_a_rigid_run() {
    let skeleton = Skeleton::farm(TaskSpec::uniform(80, 40.0, 8 * 1024, 8 * 1024));
    let mut cfg = GraspConfig::default();
    cfg.execution.adaptive = false;
    let g = grid();
    let report = Grasp::new(cfg)
        .run(&SimBackend::new(&g), &skeleton)
        .unwrap();
    assert_eq!(report.outcome.adaptations(), 0);
    assert_eq!(sim_farm(&report.outcome).monitor_evaluations, 0);
}

#[test]
fn runs_are_deterministic_for_equal_inputs() {
    let skeleton = Skeleton::farm(TaskSpec::uniform(60, 40.0, 8 * 1024, 8 * 1024));
    let g = grid();
    let a = Grasp::new(GraspConfig::default())
        .run(&SimBackend::new(&g), &skeleton)
        .unwrap();
    let b = Grasp::new(GraspConfig::default())
        .run(&SimBackend::new(&g), &skeleton)
        .unwrap();
    assert_eq!(a.outcome.makespan_s, b.outcome.makespan_s);
    assert_eq!(
        sim_farm(&a.outcome).per_node_tasks,
        sim_farm(&b.outcome).per_node_tasks
    );
    assert_eq!(a.outcome.adaptations(), b.outcome.adaptations());
}

#[test]
fn nested_composition_calibrates_and_adapts_as_one_unit() {
    // A farm-of-pipelines goes through one calibration (the composition is
    // one job, not one per lane) and its report still covers every unit.
    let lane = Skeleton::pipeline(StageSpec::balanced(3, 12.0, 8 * 1024), 15);
    let skeleton = Skeleton::farm_of(vec![lane.clone(), lane.clone(), lane]);
    let g = grid();
    let report = Grasp::new(GraspConfig::default())
        .run(&SimBackend::new(&g), &skeleton)
        .unwrap();
    assert_eq!(report.outcome.kind, SkeletonKind::FarmOfPipelines);
    assert_eq!(report.outcome.completed, 45);
    assert!(report.outcome.conserves_units_of(&skeleton));
    // Exactly one calibration for the whole composition, charged at the root.
    assert!(report.phases.calibration.as_secs() > 0.0);
    assert!(report
        .outcome
        .children
        .iter()
        .all(|c| c.calibration_s == 0.0));
}

#[test]
fn skeleton_properties_reflect_the_workload_shape() {
    // Coarse-grained tasks (lots of compute, little data) give a high
    // computation/communication ratio; fine-grained tasks a low one.
    let coarse = SkeletonProperties::task_farm(100.0);
    let fine = SkeletonProperties::task_farm(0.2);
    assert!(!coarse.communication_bound());
    assert!(fine.communication_bound());
    assert!(coarse.suggested_chunking(8) <= fine.suggested_chunking(8));
}
