//! Integration tests of the four-phase GRASP life-cycle and of the
//! methodology-level invariants the paper states.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::gridsim::{ConstantLoad, Grid, GridBuilder, TopologyBuilder};

fn grid() -> Grid {
    let topo = TopologyBuilder::heterogeneous_cluster(10, 20.0, 80.0, 17);
    let ids = topo.node_ids();
    let mut b = GridBuilder::new(topo);
    for &n in &ids {
        b = b.node_load(n, ConstantLoad::new(0.05 * (n.index() % 5) as f64));
    }
    b.build()
}

#[test]
fn calibration_work_is_part_of_the_job_not_wasted() {
    // Paper: "the processing performed during the calibration contributes to
    // the overall job".
    let tasks = TaskSpec::uniform(100, 40.0, 8 * 1024, 8 * 1024);
    let mut cfg = GraspConfig::default();
    cfg.calibration.samples_per_node = 3;
    let report = Grasp::new(cfg).run_farm(&grid(), &tasks);
    let calib: Vec<_> = report
        .outcome
        .task_outcomes
        .iter()
        .filter(|o| o.during_calibration)
        .collect();
    assert_eq!(calib.len(), 30, "10 nodes x 3 samples drawn from the job");
    assert_eq!(
        report.outcome.completed_tasks(),
        100,
        "none of them run twice"
    );
}

#[test]
fn static_phases_consume_no_grid_time() {
    let tasks = TaskSpec::uniform(40, 40.0, 1024, 1024);
    let report = Grasp::new(GraspConfig::default()).run_farm(&grid(), &tasks);
    assert!(report.phases.programming.is_zero());
    assert!(report.phases.compilation.is_zero());
    assert!(report.phases.calibration.as_secs() > 0.0);
}

#[test]
fn threshold_factor_controls_how_often_the_farm_adapts() {
    // A tighter threshold can only produce at least as many adaptations.
    let tasks = TaskSpec::uniform(200, 40.0, 8 * 1024, 8 * 1024);
    let run = |factor: f64| {
        let mut cfg = GraspConfig::default();
        cfg.execution.threshold = ThresholdPolicy::Factor { factor };
        cfg.execution.monitor_interval_s = 2.0;
        Grasp::new(cfg)
            .run_farm(&grid(), &tasks)
            .outcome
            .adaptation
            .len()
    };
    let tight = run(1.05);
    let loose = run(8.0);
    assert!(tight >= loose, "tight {tight} vs loose {loose}");
}

#[test]
fn disabling_adaptation_reproduces_a_rigid_run() {
    let tasks = TaskSpec::uniform(80, 40.0, 8 * 1024, 8 * 1024);
    let mut cfg = GraspConfig::default();
    cfg.execution.adaptive = false;
    let report = Grasp::new(cfg).run_farm(&grid(), &tasks);
    assert!(report.outcome.adaptation.is_empty());
    assert_eq!(report.outcome.monitor_evaluations, 0);
}

#[test]
fn runs_are_deterministic_for_equal_inputs() {
    let tasks = TaskSpec::uniform(60, 40.0, 8 * 1024, 8 * 1024);
    let a = Grasp::new(GraspConfig::default()).run_farm(&grid(), &tasks);
    let b = Grasp::new(GraspConfig::default()).run_farm(&grid(), &tasks);
    assert_eq!(a.outcome.makespan, b.outcome.makespan);
    assert_eq!(a.outcome.per_node_tasks, b.outcome.per_node_tasks);
    assert_eq!(a.outcome.adaptation.len(), b.outcome.adaptation.len());
}

#[test]
fn skeleton_properties_reflect_the_workload_shape() {
    // Coarse-grained tasks (lots of compute, little data) give a high
    // computation/communication ratio; fine-grained tasks a low one.
    let coarse = SkeletonProperties::task_farm(100.0);
    let fine = SkeletonProperties::task_farm(0.2);
    assert!(!coarse.communication_bound());
    assert!(fine.communication_bound());
    assert!(coarse.suggested_chunking(8) <= fine.suggested_chunking(8));
}
