//! Steady-state allocation check for the zero-copy data plane.
//!
//! The borrowed decode path exists so that the per-frame cost on a hot
//! receive loop is bounded by the bytes moved, not by allocator traffic.
//! This test pins that property in CI: after a short warmup (which grows
//! the reusable read buffer to its steady-state capacity), receiving and
//! decoding a frame over the loopback transport performs **zero** heap
//! allocations on the receiving side.  The counting global allocator comes
//! from the offline `allocation-counter` shim (see `shims/README.md`), so
//! the check needs no crates.io dependency and runs in every `cargo test`.

use allocation_counter::measure;
use grasp_repro::grasp_core::transport::Acceptor;
use grasp_repro::grasp_core::wire::{FrameView, WireMsg, PAYLOAD_SPIN};
use grasp_repro::grasp_core::SchedulePolicy;
use grasp_repro::grasp_exec::StealDeque;
use grasp_repro::grasp_net::LoopbackNet;

#[test]
fn steady_state_frame_receive_and_decode_allocates_nothing() {
    const WARMUP: u64 = 32;
    const MEASURED: u64 = 64;
    const PAYLOAD_LEN: usize = 4096;

    let (net, mut acceptor) = LoopbackNet::new();
    let worker = net.connect().expect("loopback connect");
    let master = acceptor
        .poll_accept()
        .expect("poll_accept")
        .expect("the connection must be queued");
    let (mut to_worker, _from_worker) = master.split();
    let (_to_master, mut from_master) = worker.split();

    // Pre-send every frame: the sending side allocates by design (the
    // loopback channel hands each frame over as an owned chunk, which is
    // exactly what its copy counter measures).  The property under test is
    // about the receive/decode side only.
    let payload = vec![7u8; PAYLOAD_LEN];
    for unit_id in 0..WARMUP + MEASURED {
        to_worker
            .send(&WireMsg::Task {
                unit_id,
                work: 1.0,
                kind: PAYLOAD_SPIN,
                payload: payload.clone(),
            })
            .expect("send task frame");
    }

    // Warmup: the reusable read buffer grows to frame size and stays there.
    for expected in 0..WARMUP {
        match from_master.recv_view().expect("warmup recv") {
            Some(FrameView::Task { unit_id, .. }) => assert_eq!(unit_id, expected),
            other => panic!("warmup expected a task frame, got {other:?}"),
        }
    }

    // Steady state: every borrowed receive+decode must be allocation-free.
    let mut decoded = 0u64;
    let mut payload_bytes = 0usize;
    let info = measure(|| {
        for _ in 0..MEASURED {
            match from_master.recv_view() {
                Ok(Some(FrameView::Task { payload, .. })) => {
                    decoded += 1;
                    payload_bytes += payload.len();
                }
                other => panic!("steady state expected a task frame, got {other:?}"),
            }
        }
    });
    assert_eq!(decoded, MEASURED);
    assert_eq!(payload_bytes, MEASURED as usize * PAYLOAD_LEN);
    assert_eq!(
        info.count_total, 0,
        "steady-state recv_view must not touch the heap, but allocated \
         {} times ({} bytes) over {MEASURED} frames: {info:?}",
        info.count_total, info.bytes_total
    );
}

#[test]
fn steady_state_work_stealing_dispatch_allocates_nothing() {
    // The work-stealing scheduler exists to cut dispatch overhead on hot
    // farms, so its steady-state owner path must stay off the heap: sizing
    // a chunk (`owner_chunk`), claiming it (`take_bottom`), and a thief's
    // `steal_top_half` are each one CAS on a packed word.  The whole drain
    // loop below — owner bites interleaved with steals until four deques
    // are empty — must therefore perform **zero** allocations.
    const WORKERS: usize = 4;
    const RANGE: usize = 4_096;
    let policy = SchedulePolicy::WorkStealing { min_chunk: 1 };

    let drain = |deques: &[StealDeque]| -> usize {
        let mut claimed = 0;
        loop {
            let mut progress = false;
            for w in 0..deques.len() {
                let len = deques[w].len();
                if len > 0 {
                    // Owner bite, sized by the calibration-weighted formula
                    // (weight 1.0 = an unranked, healthy worker).
                    let want = policy.owner_chunk(len, WORKERS, 1.0);
                    if let Some((_, count)) = deques[w].take_bottom(want) {
                        claimed += count;
                        progress = true;
                    }
                }
                // An idle peer steals the top half of the longest deque.
                let victim = (w + 1) % deques.len();
                if let Some((_, count)) = deques[victim].steal_top_half() {
                    claimed += count;
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        claimed
    };

    let seed = || -> Vec<StealDeque> {
        (0..WORKERS)
            .map(|w| StealDeque::new(w * RANGE / WORKERS, (w + 1) * RANGE / WORKERS))
            .collect()
    };

    // Warmup pass: one full drain outside the measurement window.
    assert_eq!(drain(&seed()), RANGE);

    // Steady state: the deques are seeded ahead of the window (seeding
    // allocates the Vec of deques, dispatch must not allocate anything).
    let deques = seed();
    let mut claimed = 0;
    let info = measure(|| {
        claimed = drain(&deques);
    });
    assert_eq!(claimed, RANGE, "the drain loop must claim every index");
    assert_eq!(
        info.count_total, 0,
        "steady-state owner/thief dispatch must not touch the heap, but \
         allocated {} times ({} bytes) over {RANGE} tasks: {info:?}",
        info.count_total, info.bytes_total
    );
}
