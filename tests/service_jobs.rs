//! Integration tests for the resident multi-job service: per-job unit
//! namespaces under interleaved completion, and bounded admission.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_service::{GraspService, JobPriority, JobSpec, ServiceConfig};
use proptest::prelude::*;

fn build(shape: u8, units: usize) -> Skeleton {
    let units = units.max(2);
    match shape % 3 {
        0 => Skeleton::farm(TaskSpec::uniform(units, 1.0, 0, 0)),
        1 => {
            let stages = (0..2).map(|id| StageSpec::new(id, 0.5, 0, 0)).collect();
            Skeleton::pipeline(stages, units)
        }
        _ => {
            let half = units / 2;
            Skeleton::farm_of(vec![
                Skeleton::farm(TaskSpec::uniform(half.max(1), 1.0, 0, 0)),
                Skeleton::farm(TaskSpec::uniform((units - half).max(1), 1.0, 0, 0)),
            ])
        }
    }
}

fn quick_service(workers: usize) -> GraspService {
    let mut cfg = ServiceConfig::with_workers(workers);
    cfg.spin_per_work_unit = 50;
    cfg.backlog_capacity = 256;
    GraspService::start(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every job of a concurrently submitted mixed batch resolves to an
    /// outcome over its OWN unit namespace: `conserves_units_of` holds per
    /// job, and the unit-id set each job reports is exactly the id set its
    /// skeleton declares — no bleed-through from the jobs it shared rounds
    /// with, however completions interleave.
    #[test]
    fn per_job_unit_namespaces_never_collide(
        shapes in prop::collection::vec((0u8..3, 2usize..14), 1..6),
        workers in 2usize..4,
    ) {
        let service = quick_service(workers);
        let jobs: Vec<(Skeleton, _)> = shapes
            .iter()
            .map(|&(shape, units)| {
                let skeleton = build(shape, units);
                let handle = service
                    .submit(skeleton.clone(), JobSpec::default())
                    .expect("admission must succeed below the backlog bound");
                (skeleton, handle)
            })
            .collect();
        for (skeleton, handle) in jobs {
            let outcome = handle.wait().expect("job must complete");
            prop_assert!(outcome.conserves_units_of(&skeleton));
            let mut declared: Vec<usize> =
                skeleton.lower_to_farm().0.iter().map(|t| t.id).collect();
            declared.sort_unstable();
            prop_assert_eq!(
                outcome.unit_ids.clone(),
                declared,
                "a job's outcome must carry exactly its own namespace"
            );
        }
    }
}

#[test]
fn overflowing_the_admission_backlog_is_a_typed_rejection() {
    let mut cfg = ServiceConfig::with_workers(2);
    cfg.spin_per_work_unit = 50;
    cfg.backlog_capacity = 2;
    let service = GraspService::start(cfg);
    // Wedge the pool on a slow round so later submissions pile up in the
    // bounded backlog instead of being drained.
    service.inject_worker_slowdown(0, 0.05);
    service.inject_worker_slowdown(1, 0.05);
    let blocker = service
        .submit(
            Skeleton::farm(TaskSpec::uniform(4, 1.0, 0, 0)),
            JobSpec::default(),
        )
        .expect("the first job is admitted");
    std::thread::sleep(std::time::Duration::from_millis(20));

    let mut queued = Vec::new();
    let rejection = loop {
        match service.submit(
            Skeleton::farm(TaskSpec::uniform(2, 1.0, 0, 0)),
            JobSpec::default().with_priority(JobPriority::High),
        ) {
            Ok(handle) => queued.push(handle),
            Err(e) => break e,
        }
        assert!(
            queued.len() <= 2,
            "the backlog must refuse the submission after reaching capacity"
        );
    };
    match rejection {
        GraspError::Rejected { backlog, capacity } => {
            assert_eq!(capacity, 2);
            assert_eq!(backlog, 2, "rejection reports the full backlog");
        }
        other => panic!("expected GraspError::Rejected, got {other}"),
    }
    // Priority never bypasses the bound, but everything admitted completes.
    service.inject_worker_slowdown(0, 0.0);
    service.inject_worker_slowdown(1, 0.0);
    blocker.wait().expect("the wedged job still completes");
    for handle in queued {
        handle
            .wait()
            .expect("admitted jobs complete after the backlog drains");
    }
}
