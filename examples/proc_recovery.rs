//! `kill -9` recovery on the process-isolated backend.
//!
//! The scenario the Cactus-Worm line of work studies — dynamic resource
//! loss in a live grid — at example scale: a farm of real serialized matmul
//! band tasks runs on worker OS processes, and mid-run one worker is
//! SIGKILLed (no unwinding, no goodbye frame; exactly what a revoked node
//! looks like from the master).  The master detects the loss through pipe
//! EOF / the gridmon heartbeat timeout, requeues the victim's in-flight
//! units on the survivors, and completes the job with full unit
//! conservation, every band digest matching the local kernel, and the loss
//! on the record.
//!
//! Run with: `cargo build --release && cargo run --release --example proc_recovery`
//! (the build step produces the `grasp-proc-worker` binary the backend
//! spawns).

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_proc::ProcBackend;
use grasp_repro::grasp_workloads::matmul::MatMulJob;

fn main() {
    let job = MatMulJob {
        n: 192,
        block_rows: 16,
        seed: 9,
    };
    let skeleton = Skeleton::farm(job.as_tasks(1e6));
    println!(
        "proc_recovery: {} matmul bands (n={}) on 3 worker processes; \
         worker 1 will be hard-killed after 2 results",
        job.task_count(),
        job.n
    );

    let backend = ProcBackend::new(3)
        .with_payloads(job.wire_payloads())
        // Slow the pool slightly via real work only — the matmul bands are
        // the computation; the kill must land while units are in flight.
        .with_fault_injection(FaultInjection::none().kill(1, 2));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("a hard-killed worker must not fail the run");

    let outcome = &report.outcome;
    assert_eq!(outcome.completed, job.task_count());
    assert!(
        outcome.conserves_units_of(&skeleton),
        "no band lost or duplicated"
    );
    assert!(
        outcome.resilience.nodes_lost >= 1,
        "the kill must be accounted: {:?}",
        outcome.resilience
    );
    match &outcome.detail {
        OutcomeDetail::ProcFarm {
            tasks_per_worker,
            unit_digests,
            bytes_sent,
            bytes_received,
            ..
        } => {
            for &(unit, digest) in unit_digests {
                assert_eq!(
                    digest,
                    job.band_task(unit).digest(),
                    "band {unit} recomputed after the kill must still be correct"
                );
            }
            println!(
                "proc_recovery: survived — {} units, {:?} per worker, \
                 resilience {:?}, {}B out / {}B in, all digests verified",
                outcome.completed, tasks_per_worker, outcome.resilience, bytes_sent, bytes_received
            );
        }
        other => panic!("unexpected detail {other:?}"),
    }
}
