//! Quickstart: the four-phase GRASP life-cycle on a small heterogeneous grid.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks through Figure 1 of the paper with the unified skeleton API:
//! the *programming* phase describes the job as a composable [`Skeleton`]
//! expression, the *compilation* phase binds it to a backend (here the
//! simulated grid), then the *calibration* and *execution* phases run and
//! the resulting report is printed.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::gridsim::{Grid, TopologyBuilder};

fn main() {
    // ----- Programming phase: describe the job as a skeleton ---------------
    // 300 independent tasks of 50 work units each, shipping 32 KiB each way.
    let skeleton = Skeleton::farm(TaskSpec::uniform(300, 50.0, 32 * 1024, 32 * 1024));
    let grasp = Grasp::new(GraspConfig::default());

    // ----- Compilation phase: bind to the parallel environment ------------
    // A 16-node heterogeneous cluster (speeds 20–80 work units/s), idle.
    let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(16, 20.0, 80.0, 7));
    let backend = SimBackend::new(&grid);

    // ----- Calibration + execution phases ----------------------------------
    let report = grasp
        .run(&backend, &skeleton)
        .expect("valid workload on an all-up grid");

    println!("== GRASP quickstart ==");
    println!(
        "phases: calibration {:.2}s ({:.1}% of total), execution {:.2}s",
        report.phases.calibration.as_secs(),
        report.phases.calibration_fraction() * 100.0,
        report.phases.execution.as_secs()
    );
    println!(
        "completed {} units in {:.2}s ({:.2} units/s), {} adaptations",
        report.outcome.completed,
        report.outcome.makespan_s,
        report.outcome.throughput(),
        report.outcome.adaptations()
    );
    // The simulated engine's full native report rides along as the detail.
    if let OutcomeDetail::SimFarm(farm) = &report.outcome.detail {
        println!("\n{}", farm.calibration.to_table_string());
        println!("tasks per node:");
        for (node, count) in &farm.per_node_tasks {
            println!("  {node}: {count}");
        }
    }

    // ----- The same entry point runs a nested composition ------------------
    // A farm of four pipeline instances (farm-of-pipelines): each lane
    // streams 25 items through a three-stage chain.
    let lane = Skeleton::pipeline(StageSpec::balanced(3, 15.0, 8 * 1024), 25);
    let nested = Skeleton::farm_of(vec![lane.clone(), lane.clone(), lane.clone(), lane]);
    let report = grasp
        .run(&backend, &nested)
        .expect("valid workload on an all-up grid");
    println!(
        "\nnested {} completed {} units in {:.2}s across {} lanes",
        report.outcome.kind.name(),
        report.outcome.completed,
        report.outcome.makespan_s,
        report.outcome.children.len()
    );
}
