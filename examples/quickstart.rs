//! Quickstart: the four-phase GRASP life-cycle on a small heterogeneous grid.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks through Figure 1 of the paper: the *programming* phase picks a
//! task-farm skeleton and parameterises it, the *compilation* phase binds it
//! to a grid, then the *calibration* and *execution* phases run and the
//! resulting report is printed.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::gridsim::{Grid, TopologyBuilder};

fn main() {
    // ----- Programming phase: choose and parameterise the skeleton --------
    // 300 independent tasks of 50 work units each, shipping 32 KiB each way.
    let tasks = TaskSpec::uniform(300, 50.0, 32 * 1024, 32 * 1024);
    let config = GraspConfig::default();
    let grasp = Grasp::new(config);

    // ----- Compilation phase: bind to the parallel environment ------------
    // A 16-node heterogeneous cluster (speeds 20–80 work units/s), idle.
    let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(16, 20.0, 80.0, 7));

    // ----- Calibration + execution phases ----------------------------------
    let report = grasp.run_farm(&grid, &tasks);

    println!("== GRASP quickstart ==");
    println!("{}", report.outcome.calibration.to_table_string());
    println!(
        "phases: calibration {:.2}s ({:.1}% of total), execution {:.2}s",
        report.phases.calibration.as_secs(),
        report.phases.calibration_fraction() * 100.0,
        report.phases.execution.as_secs()
    );
    println!(
        "completed {} tasks in {:.2}s on {} nodes ({:.2} tasks/s); {}",
        report.outcome.completed_tasks(),
        report.outcome.makespan.as_secs(),
        report.outcome.final_active_nodes.len(),
        report.outcome.throughput(),
        report.outcome.adaptation.summary()
    );
    println!("\ntasks per node:");
    for (node, count) in &report.outcome.per_node_tasks {
        println!("  {node}: {count}");
    }
}
