//! The shared-memory backend on real threads: Mandelbrot and sequence search.
//!
//! ```text
//! cargo run --release --example multicore_farm
//! ```
//!
//! Runs the same workloads the grid experiments simulate, but for real on the
//! local machine through `grasp_exec::ThreadFarm`, comparing scheduling
//! policies and reporting per-worker statistics.

use grasp_repro::grasp_core::SchedulePolicy;
use grasp_repro::grasp_exec::ThreadFarm;
use grasp_repro::grasp_workloads::mandelbrot::MandelbrotJob;
use grasp_repro::grasp_workloads::seqmatch::SequenceMatchJob;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("running on {workers} worker threads\n");

    // ---------------- Mandelbrot tiles (irregular tasks) ----------------
    let job = MandelbrotJob {
        width: 1024,
        height: 768,
        tiles_x: 16,
        tiles_y: 12,
        max_iter: 600,
        ..MandelbrotJob::default()
    };
    let tiles = job.tiles();
    println!(
        "Mandelbrot: {} tiles of {}x{}",
        tiles.len(),
        job.width,
        job.height
    );
    for policy in [
        SchedulePolicy::StaticBlock,
        SchedulePolicy::SelfScheduling,
        SchedulePolicy::Guided { min_chunk: 1 },
    ] {
        let farm = ThreadFarm::new(workers).with_policy(policy);
        let (results, stats) = farm.run(&tiles, |t| job.render_tile(t));
        let total_pixels: usize = results.iter().map(|r| r.len()).sum();
        println!(
            "  {:<16} {:>8.1} ms  imbalance {:.2}  ({} px)",
            policy.name(),
            stats.total.as_secs_f64() * 1e3,
            stats.imbalance(),
            total_pixels
        );
    }

    // ---------------- Sequence matching (uniform tasks) ----------------
    let seq = SequenceMatchJob {
        queries: 64,
        subjects: 32,
        query_len: 192,
        subject_len: 384,
        seed: 7,
    };
    let queries = seq.generate_queries();
    let subjects = seq.generate_subjects();
    println!(
        "\nsequence search: {} queries x {} subjects ({} DP cells/task)",
        seq.queries,
        seq.subjects,
        seq.cells_per_task() as u64
    );
    let farm = ThreadFarm::new(workers).with_policy(SchedulePolicy::Guided { min_chunk: 1 });
    let (scores, stats) = farm.run(&queries, |q| seq.score_query(q, &subjects));
    let best = scores
        .iter()
        .flat_map(|per_subject| per_subject.iter().copied())
        .max()
        .unwrap_or(0);
    println!(
        "  guided            {:>8.1} ms  best alignment score {}  tasks/worker {:?}",
        stats.total.as_secs_f64() * 1e3,
        best,
        stats.tasks_per_worker
    );
}
