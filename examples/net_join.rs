//! Dynamic membership on the socket backend, over real localhost TCP.
//!
//! The paper's premise is that a computational grid is never static: nodes
//! appear and disappear underneath a running computation.  This example runs
//! it end to end — a master binds a TCP listener on 127.0.0.1, two workers
//! register through the Join/Welcome handshake and start the job, and once
//! a quarter of the units are done a **third worker joins mid-run**: it is
//! admitted, ranked by a calibration prefix of probe units (receiving real
//! units only afterwards), and then carries part of the remaining load.
//!
//! Run with: `cargo build --release && cargo run --release --example net_join`
//! (the build step produces the `grasp-net-worker` binary the backend
//! spawns and points at its listener).

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_net::NetBackend;
use grasp_repro::grasp_workloads::matmul::MatMulJob;

fn main() {
    let job = MatMulJob {
        n: 192,
        block_rows: 16,
        seed: 9,
    };
    let skeleton = Skeleton::farm(job.as_tasks(1e6));
    let join_after = job.task_count() / 4;
    println!(
        "net_join: {} matmul bands (n={}) on 2 TCP workers; a third worker \
         joins after {} results and must calibrate before serving",
        job.task_count(),
        job.n,
        join_after
    );

    let backend = NetBackend::new(2)
        .with_payloads(job.wire_payloads())
        .with_fault_injection(FaultInjection::none().join_spawn(join_after, 1));
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("a worker joining mid-run must not fail the run");

    let outcome = &report.outcome;
    assert_eq!(outcome.completed, job.task_count());
    assert!(
        outcome.conserves_units_of(&skeleton),
        "no band lost or duplicated across the membership change"
    );
    assert!(
        outcome.adaptation_log.node_joins() >= 1,
        "the mid-run admission must be on the audit trail"
    );
    match &outcome.detail {
        OutcomeDetail::NetFarm {
            members,
            tasks_per_worker,
            bytes_sent,
            bytes_received,
            unit_digests,
            ..
        } => {
            let joiner = members
                .iter()
                .find(|m| m.joined_mid_run)
                .expect("the third worker joined mid-run");
            assert!(
                joiner.calibration_probes > 0,
                "a mid-run joiner is ranked by a calibration prefix first"
            );
            for &(unit, digest) in unit_digests {
                assert_eq!(
                    digest,
                    job.band_task(unit).digest(),
                    "band {unit} computed over TCP must match the local kernel"
                );
            }
            println!(
                "net_join: done — {} units, {:?} per worker; late joiner ran \
                 {} calibration probes then {} real units; {}B out / {}B in",
                outcome.completed,
                tasks_per_worker,
                joiner.calibration_probes,
                joiner.units_completed,
                bytes_sent,
                bytes_received
            );
        }
        other => panic!("unexpected detail {other:?}"),
    }
}
