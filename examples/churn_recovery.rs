//! Fault-hardened execution under node churn, end to end on both backends.
//!
//! ```console
//! $ cargo run --release --example churn_recovery
//! ```
//!
//! 1. **Simulated grid** — a 12-node cluster where every node except the
//!    master suffers random revocations (some permanent).  The same farm
//!    expression runs under GRASP's adaptive configuration and under the
//!    rigid `StaticBlock` baseline; lost chunks are requeued onto surviving
//!    nodes and the recovery is reported through the backend-neutral
//!    [`ResilienceReport`].
//! 2. **Real threads** — the churn analogue is injected worker panics: the
//!    fault-isolated `ThreadBackend` catches them, retries the tasks on
//!    surviving workers and completes the job without aborting the process.
//!
//! [`ResilienceReport`]: grasp_repro::grasp_core::ResilienceReport

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_exec::ThreadBackend;
use grasp_repro::gridsim::{FaultPlan, GridBuilder, NodeId, SimTime, TopologyBuilder};

fn main() {
    // Injected panics print the default panic banner; keep the demo output
    // readable without hiding any *unexpected* panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker fault"));
        if !injected {
            default_hook(info);
        }
    }));

    // ------------------------- simulated churn -------------------------
    let nodes = 12;
    let topo = TopologyBuilder::uniform_cluster(nodes, 40.0);
    let churn_targets: Vec<NodeId> = topo.node_ids()[1..].to_vec();
    // Random churn over the first 80 virtual seconds, plus one *permanent*
    // revocation mid-run: node 5 is reclaimed at t=6 and never comes back,
    // so its in-flight chunk must be requeued onto surviving nodes.
    let faults = FaultPlan::from_events(
        FaultPlan::random(&churn_targets, 0.7, 80.0, 20.0, 2007)
            .events()
            .iter()
            .filter(|e| e.node != NodeId(5))
            .copied()
            .collect(),
    )
    .revoked_from(NodeId(5), SimTime::new(6.0));
    let grid = GridBuilder::new(topo).faults(faults).quantum(0.25).build();

    let tasks: Vec<TaskSpec> = (0..240)
        .map(|i| TaskSpec::new(i, 20.0 * (1.0 + 3.0 * i as f64 / 240.0), 16 << 10, 16 << 10))
        .collect();
    let skeleton = Skeleton::farm(tasks);

    println!("== simulated grid: random churn, master churn-free ==");
    for (name, cfg) in [
        ("adaptive", GraspConfig::default()),
        ("static  ", GraspConfig::static_baseline()),
    ] {
        let report = Grasp::new(cfg)
            .run(&SimBackend::new(&grid), &skeleton)
            .expect("churn with a fault-free master must complete");
        assert!(report.outcome.conserves_units_of(&skeleton));
        let r = report.outcome.resilience;
        println!(
            "{name}  makespan {:7.1}s  requeued {:2}  retried {:2}  nodes lost {}",
            report.outcome.makespan_s, r.requeued_tasks, r.retried_tasks, r.nodes_lost
        );
    }

    // ------------------------- thread backend --------------------------
    println!("\n== real threads: injected worker panics as churn ==");
    let backend = ThreadBackend::new(4).with_config(
        BackendConfig::new()
            .spin_per_work_unit(2_000)
            .max_task_attempts(8)
            .faults(FaultInjection::none().panics(5)),
    );
    let report = Grasp::new(GraspConfig::default())
        .run(&backend, &skeleton)
        .expect("injected panics must be isolated, not fatal");
    assert!(report.outcome.conserves_units_of(&skeleton));
    let r = report.outcome.resilience;
    println!(
        "adaptive  wall {:.3}s  requeued {:2}  retried {:2}  workers lost {}",
        report.outcome.makespan_s, r.requeued_tasks, r.retried_tasks, r.nodes_lost
    );
    assert!(
        r.retried_tasks > 0,
        "injected faults must surface as retries in the ResilienceReport"
    );
    println!(
        "\nall {} units completed exactly once on both backends",
        report.outcome.completed
    );
}
