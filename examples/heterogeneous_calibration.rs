//! Calibration deep-dive: how Algorithm 1 ranks a transiently loaded pool.
//!
//! ```text
//! cargo run --example heterogeneous_calibration
//! ```
//!
//! Prints the full calibration table (the *T* of Algorithm 1) for the three
//! extrapolation modes on a heterogeneous pool where half the nodes carry a
//! transient external load at calibration time, so the difference between
//! time-only and statistical calibration is visible row by row.

use grasp_repro::grasp_core::calibration::{CalibrationMode, Calibrator};
use grasp_repro::grasp_core::{CalibrationConfig, TaskSpec};
use grasp_repro::gridmon::MonitorRegistry;
use grasp_repro::gridsim::{GridBuilder, NodeId, SimTime, SpikeLoad, TopologyBuilder};

fn main() {
    // Heterogeneous pool: speeds 10–80; odd nodes are 60 % loaded right now
    // (but would be idle for the rest of the job).
    let topo = TopologyBuilder::heterogeneous_cluster(12, 10.0, 80.0, 21);
    let node_ids = topo.node_ids();
    let mut builder = GridBuilder::new(topo);
    for &n in &node_ids {
        if n.index() % 2 == 1 {
            builder = builder.node_load(
                n,
                SpikeLoad::new(0.02, 0.6, SimTime::ZERO, SimTime::new(500.0)),
            );
        }
    }
    let grid = builder.build();
    let tasks = TaskSpec::uniform(96, 60.0, 32 * 1024, 32 * 1024);

    for mode in [
        CalibrationMode::TimeOnly,
        CalibrationMode::Univariate,
        CalibrationMode::Multivariate,
    ] {
        let cfg = CalibrationConfig {
            mode,
            samples_per_node: 2,
            selection_fraction: 0.5,
            ..CalibrationConfig::default()
        };
        let mut registry = MonitorRegistry::new(NodeId(0), 64);
        let report = Calibrator::new(cfg)
            .calibrate(
                &grid,
                &mut registry,
                &node_ids,
                &tasks,
                NodeId(0),
                SimTime::ZERO,
            )
            .expect("calibration failed");
        println!("{}", report.to_table_string());
        println!(
            "ranking (fittest first): {}\n",
            report
                .ranking
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
