//! Adaptive pipeline: a four-stage image-processing stream on a loaded grid.
//!
//! ```text
//! cargo run --example pipeline_imaging
//! ```
//!
//! The stage costs come from the real image kernels (blur, sharpen, Sobel,
//! threshold); the grid develops a load spike on the initially chosen nodes,
//! and the adaptive pipeline remaps its stages while the rigid one suffers.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_workloads::imaging::ImagePipeline;
use grasp_repro::gridsim::{ConstantLoad, GridBuilder, SimTime, SpikeLoad, TopologyBuilder};

fn build_grid() -> grasp_repro::gridsim::Grid {
    let topo = TopologyBuilder::uniform_cluster(8, 50.0);
    let node_ids = topo.node_ids();
    let mut builder = GridBuilder::new(topo).quantum(0.1);
    for &n in &node_ids {
        if n.index() < 5 {
            builder = builder.node_load(
                n,
                SpikeLoad::new(0.02, 0.9, SimTime::new(30.0), SimTime::new(100_000.0)),
            );
        } else {
            builder = builder.node_load(n, ConstantLoad::new(0.02));
        }
    }
    builder.build()
}

fn main() {
    let job = ImagePipeline {
        width: 1280,
        height: 720,
        frames: 400,
        seed: 11,
    };
    // ~2e4 pixels per simulated work unit.
    let stages = job.as_stages(2e4);
    println!(
        "image pipeline: {} stages, {} frames of {}x{}",
        stages.len(),
        job.frames,
        job.width,
        job.height
    );

    let adaptive =
        Grasp::new(GraspConfig::default()).run_pipeline(&build_grid(), &stages, job.frames);
    let mut rigid_cfg = GraspConfig::default();
    rigid_cfg.execution.adaptive = false;
    let rigid = Grasp::new(rigid_cfg).run_pipeline(&build_grid(), &stages, job.frames);

    println!("\n== adaptive pipeline ==");
    println!(
        "makespan {:.1}s, steady throughput {:.2} frames/s, {} stage remaps",
        adaptive.outcome.makespan.as_secs(),
        adaptive.outcome.steady_state_throughput(),
        adaptive.outcome.adaptation.stage_remaps()
    );
    println!(
        "final stage assignment: {:?}",
        adaptive.outcome.stage_assignment
    );
    println!("\n== rigid pipeline (baseline) ==");
    println!(
        "makespan {:.1}s, steady throughput {:.2} frames/s",
        rigid.outcome.makespan.as_secs(),
        rigid.outcome.steady_state_throughput()
    );
    println!(
        "\nadaptive sustains {:.2}x the rigid throughput under the spike",
        adaptive.outcome.steady_state_throughput() / rigid.outcome.steady_state_throughput()
    );
}
