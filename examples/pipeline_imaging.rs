//! Adaptive pipeline: a four-stage image-processing stream on a loaded grid.
//!
//! ```text
//! cargo run --example pipeline_imaging
//! ```
//!
//! The stage costs come from the real image kernels (blur, sharpen, Sobel,
//! threshold); the grid develops a load spike on the initially chosen nodes,
//! and the adaptive pipeline remaps its stages while the rigid one suffers.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_workloads::imaging::ImagePipeline;
use grasp_repro::gridsim::{ConstantLoad, GridBuilder, SimTime, SpikeLoad, TopologyBuilder};

fn build_grid() -> grasp_repro::gridsim::Grid {
    let topo = TopologyBuilder::uniform_cluster(8, 50.0);
    let node_ids = topo.node_ids();
    let mut builder = GridBuilder::new(topo).quantum(0.1);
    for &n in &node_ids {
        if n.index() < 5 {
            builder = builder.node_load(
                n,
                SpikeLoad::new(0.02, 0.9, SimTime::new(30.0), SimTime::new(100_000.0)),
            );
        } else {
            builder = builder.node_load(n, ConstantLoad::new(0.02));
        }
    }
    builder.build()
}

fn main() {
    let job = ImagePipeline {
        width: 1280,
        height: 720,
        frames: 400,
        seed: 11,
    };
    // ~2e4 pixels per simulated work unit.
    let stages = job.as_stages(2e4);
    println!(
        "image pipeline: {} stages, {} frames of {}x{}",
        stages.len(),
        job.frames,
        job.width,
        job.height
    );

    let skeleton = Skeleton::pipeline(stages, job.frames);
    let adaptive_grid = build_grid();
    let adaptive = Grasp::new(GraspConfig::default())
        .run(&SimBackend::new(&adaptive_grid), &skeleton)
        .expect("adaptive pipeline run failed");
    let mut rigid_cfg = GraspConfig::default();
    rigid_cfg.execution.adaptive = false;
    let rigid_grid = build_grid();
    let rigid = Grasp::new(rigid_cfg)
        .run(&SimBackend::new(&rigid_grid), &skeleton)
        .expect("rigid pipeline run failed");

    println!("\n== adaptive pipeline ==");
    print_pipeline(&adaptive.outcome);
    println!("\n== rigid pipeline (baseline) ==");
    print_pipeline(&rigid.outcome);
    println!(
        "\nadaptive sustains {:.2}x the rigid throughput under the spike",
        steady_throughput(&adaptive.outcome) / steady_throughput(&rigid.outcome)
    );

    // The same chain with the heavy Sobel stage as a nested farm of three
    // workers (pipeline-of-farms): the bottleneck stage stops dominating.
    let nested = job.as_nested_skeleton(2e4, 3);
    let nested_grid = build_grid();
    let nested_report = Grasp::new(GraspConfig::default())
        .run(&SimBackend::new(&nested_grid), &nested)
        .expect("nested pipeline run failed");
    println!(
        "\n== {} (Sobel stage farmed x3) ==",
        nested_report.outcome.kind.name()
    );
    print_pipeline(&nested_report.outcome);
}

fn steady_throughput(outcome: &SkeletonOutcome) -> f64 {
    match &outcome.detail {
        OutcomeDetail::SimPipeline(p) => p.steady_state_throughput(),
        _ => outcome.throughput(),
    }
}

fn print_pipeline(outcome: &SkeletonOutcome) {
    if let OutcomeDetail::SimPipeline(p) = &outcome.detail {
        println!(
            "makespan {:.1}s, steady throughput {:.2} frames/s, {} stage remaps",
            p.makespan.as_secs(),
            p.steady_state_throughput(),
            p.adaptation.stage_remaps()
        );
        println!("final stage assignment: {:?}", p.stage_assignment);
    }
}
