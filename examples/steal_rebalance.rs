//! Work stealing rebalances an asymmetric multicore farm, end to end.
//!
//! ```console
//! $ cargo run --release --example steal_rebalance
//! ```
//!
//! One core of a four-worker farm is slowed 8x mid-run (after its
//! calibration prefix), the way a shared grid node degrades when a
//! competing job lands on it.  The same irregular farm runs twice:
//!
//! 1. **Demand-driven** (`Guided`) — workers pull chunks from a shared
//!    queue.  A chunk handed to the slow core before the slowdown is
//!    irrevocable: the farm waits on it.
//! 2. **Work-stealing** (`WorkStealing`) — every worker owns a deque
//!    seeded from a one-shot partition; idle workers steal the top half
//!    of the most-loaded victim's deque, so the slow core's backlog is
//!    redistributed instead of awaited.
//!
//! Demotion is disabled (`min_active_nodes = workers`) so the whole
//! rebalancing credit belongs to the dispatch mechanism.  The cost metric
//! is the weighted critical path — the slow worker's executed work counts
//! 8x — which is schedule-determined, not wall-clock noise.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_core::SchedulePolicy;
use grasp_repro::grasp_exec::ThreadBackend;

const WORKERS: usize = 4;
const SLOW_FACTOR: f64 = 8.0;

/// Per-run summary pulled out of the `ThreadFarm` outcome detail.
struct RunStats {
    cost: f64,
    tasks_per_worker: Vec<usize>,
    steals_completed: usize,
    units_stolen: usize,
}

fn run(scheduler: SchedulePolicy, skeleton: &Skeleton) -> RunStats {
    let backend = ThreadBackend::new(WORKERS).with_config(
        BackendConfig::new()
            .spin_per_work_unit(30_000)
            .faults(FaultInjection::none().worker_slowdown(0, 8, SLOW_FACTOR)),
    );
    let mut cfg = GraspConfig {
        scheduler,
        ..GraspConfig::default()
    };
    cfg.execution.adaptive = true;
    cfg.execution.monitor_interval_s = 3e-3; // wall seconds
    cfg.execution.min_active_nodes = WORKERS;
    let report = Grasp::new(cfg)
        .run(&backend, skeleton)
        .expect("the asymmetric farm must complete");
    assert!(report.outcome.conserves_units_of(skeleton));
    match &report.outcome.detail {
        OutcomeDetail::ThreadFarm {
            work_per_worker,
            tasks_per_worker,
            steals_completed,
            units_stolen,
            ..
        } => {
            let slow = work_per_worker.first().copied().unwrap_or(0.0) * SLOW_FACTOR;
            let fast = work_per_worker.iter().skip(1).copied().fold(0.0, f64::max);
            RunStats {
                cost: slow.max(fast),
                tasks_per_worker: tasks_per_worker.clone(),
                steals_completed: *steals_completed,
                units_stolen: *units_stolen,
            }
        }
        other => panic!("unexpected outcome detail {other:?}"),
    }
}

fn main() {
    // An irregular stream: per-unit work ramps 1x..21x, so late chunks are
    // expensive and a backlog stranded on the slow core really hurts.
    let n = 600;
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| TaskSpec::new(i, 20.0 * (1.0 + 20.0 * i as f64 / n as f64), 0, 0))
        .collect();
    let skeleton = Skeleton::farm(tasks);

    println!("== worker 0 slowed {SLOW_FACTOR}x after its calibration prefix ==");
    let demand = run(SchedulePolicy::Guided { min_chunk: 1 }, &skeleton);
    let steal = run(SchedulePolicy::WorkStealing { min_chunk: 1 }, &skeleton);

    println!(
        "demand-driven  weighted cost {:8.0}  tasks/worker {:?}",
        demand.cost, demand.tasks_per_worker
    );
    println!(
        "work-stealing  weighted cost {:8.0}  tasks/worker {:?}  \
         steals {}  units moved {}",
        steal.cost, steal.tasks_per_worker, steal.steals_completed, steal.units_stolen
    );
    println!(
        "\nsteal speedup on the weighted critical path: {:.2}x",
        demand.cost / steal.cost.max(1e-9)
    );
    assert!(
        steal.steals_completed >= 1,
        "thieves must move work off the slowed deque"
    );
}
