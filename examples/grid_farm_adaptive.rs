//! Adaptive task farm on a non-dedicated grid: the Mandelbrot parameter sweep.
//!
//! ```text
//! cargo run --example grid_farm_adaptive
//! ```
//!
//! The Mandelbrot tile costs are taken from the *real* kernel (so task
//! irregularity is genuine), the grid is the three-site "paper testbed"
//! topology, and half the nodes suffer a sustained external load spike midway
//! through the run.  The adaptive farm is compared against the rigid static
//! farm on exactly the same grid.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_workloads::mandelbrot::MandelbrotJob;
use grasp_repro::gridsim::{GridBuilder, SimTime, SpikeLoad, TopologyBuilder};

fn build_grid() -> grasp_repro::gridsim::Grid {
    let topo = TopologyBuilder::paper_testbed(3);
    let node_ids = topo.node_ids();
    let mut builder = GridBuilder::new(topo).quantum(0.25);
    for &n in &node_ids {
        if n.index() % 2 == 0 {
            builder = builder.node_load(
                n,
                SpikeLoad::new(0.05, 0.9, SimTime::new(60.0), SimTime::new(100_000.0)),
            );
        }
    }
    builder.build()
}

fn main() {
    let job = MandelbrotJob {
        width: 2048,
        height: 1536,
        tiles_x: 32,
        tiles_y: 24,
        max_iter: 500,
        ..MandelbrotJob::default()
    };
    // Scale: ~5e4 kernel iterations per simulated work unit.
    let tasks = job.as_tasks(5e4);
    println!(
        "Mandelbrot sweep: {} tiles, {:.0} total work units",
        tasks.len(),
        grasp_repro::grasp_core::task::total_work(&tasks)
    );

    let skeleton = Skeleton::farm(tasks);
    let adaptive_grid = build_grid();
    let adaptive = Grasp::new(GraspConfig::adaptive_multivariate())
        .run(&SimBackend::new(&adaptive_grid), &skeleton)
        .expect("adaptive farm run failed");
    let rigid_grid = build_grid();
    let rigid = Grasp::new(GraspConfig::static_baseline())
        .run(&SimBackend::new(&rigid_grid), &skeleton)
        .expect("rigid farm run failed");

    println!("\n== adaptive GRASP farm ==");
    print_farm_report(&adaptive);
    println!("\n== rigid static farm (baseline) ==");
    print_farm_report(&rigid);
    println!(
        "\nadaptive is {:.2}x faster than the rigid baseline under the load spike",
        rigid.outcome.makespan_s / adaptive.outcome.makespan_s
    );
}

fn print_farm_report(report: &GraspRunReport<SkeletonOutcome>) {
    match &report.outcome.detail {
        OutcomeDetail::SimFarm(farm) => println!(
            "makespan {:.1}s, {} adaptations, {} recalibrations, mean task latency {:.2}s",
            farm.makespan.as_secs(),
            farm.adaptation.len(),
            farm.adaptation.recalibrations(),
            farm.mean_task_latency()
        ),
        _ => println!(
            "makespan {:.1}s, {} adaptations",
            report.outcome.makespan_s,
            report.outcome.adaptations()
        ),
    }
}
