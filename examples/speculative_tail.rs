//! Tail speculation absorbs a straggler on a multicore farm, end to end.
//!
//! ```console
//! $ cargo run --release --example speculative_tail
//! ```
//!
//! A Time-Warp transaction-simulation workload ([`TranSimJob`]) is cut into
//! a handful of large, irregular partitions and farmed over four workers,
//! one of which is slowed 25x for the whole run — the grid straggler the
//! paper's adaptation loop exists to survive.  The same farm runs twice:
//!
//! 1. **No speculation** — under pure self-scheduling the slowed core
//!    claims one partition and the farm waits ~25x its dedicated time on
//!    that single unit: the classic straggler tail.
//! 2. **Tail speculation** (`speculate_tail_fraction = 0.25`) — once the
//!    queue drains, idle workers duplicate the remaining in-flight units.
//!    The first result wins, the loser is discarded unrecorded, and the
//!    straggler's partition is superseded by a fast copy.
//!
//! Demotion is disabled (`min_active_nodes = workers`) so the whole tail
//! win belongs to speculation, and the cost metric is the weighted
//! critical path (the slow worker's executed work counts 25x), which is
//! schedule-determined rather than wall-clock noise.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_core::SchedulePolicy;
use grasp_repro::grasp_exec::ThreadBackend;
use grasp_repro::grasp_workloads::TranSimJob;

const WORKERS: usize = 4;
const SLOW_FACTOR: f64 = 25.0;

/// Per-run summary: weighted critical-path cost plus the speculation
/// counters out of the [`ResilienceReport`].
struct RunStats {
    cost: f64,
    speculated: usize,
    wins: usize,
}

fn run(fraction: f64, skeleton: &Skeleton) -> RunStats {
    let backend = ThreadBackend::new(WORKERS).with_config(
        BackendConfig::new()
            .spin_per_work_unit(30_000)
            .faults(FaultInjection::none().worker_slowdown(0, 0, SLOW_FACTOR)),
    );
    let mut cfg = GraspConfig {
        scheduler: SchedulePolicy::SelfScheduling,
        ..GraspConfig::default()
    };
    cfg.execution.adaptive = true;
    cfg.execution.monitor_interval_s = 3e-3; // wall seconds
    cfg.execution.min_active_nodes = WORKERS;
    cfg.execution.speculate_tail_fraction = fraction;
    let report = Grasp::new(cfg)
        .run(&backend, skeleton)
        .expect("the straggler farm must complete");
    assert!(report.outcome.conserves_units_of(skeleton));
    let cost = match &report.outcome.detail {
        OutcomeDetail::ThreadFarm {
            work_per_worker, ..
        } => {
            let slow = work_per_worker.first().copied().unwrap_or(0.0) * SLOW_FACTOR;
            let fast = work_per_worker.iter().skip(1).copied().fold(0.0, f64::max);
            slow.max(fast)
        }
        other => panic!("unexpected outcome detail {other:?}"),
    };
    RunStats {
        cost,
        speculated: report.outcome.resilience.speculated_units,
        wins: report.outcome.resilience.speculation_wins,
    }
}

fn main() {
    // A dozen large partitions with irregular event counts: under
    // self-scheduling the 25x-slowed worker claims exactly one of them and
    // holds the whole farm hostage unless a speculative copy supersedes it.
    let job = TranSimJob {
        partitions: 12,
        ..TranSimJob::default()
    };
    let skeleton = Skeleton::farm(job.as_tasks(40.0));

    println!("== worker 0 slowed {SLOW_FACTOR}x from its first unit ==");
    let plain = run(0.0, &skeleton);
    let spec = run(0.25, &skeleton);

    println!(
        "no-speculation  weighted cost {:8.0}  speculated {:2}  wins {:2}",
        plain.cost, plain.speculated, plain.wins
    );
    println!(
        "speculation     weighted cost {:8.0}  speculated {:2}  wins {:2}",
        spec.cost, spec.speculated, spec.wins
    );
    println!(
        "\nspeculative tail speedup on the weighted critical path: {:.2}x",
        plain.cost / spec.cost.max(1e-9)
    );
    assert_eq!(plain.speculated, 0, "fraction 0.0 must never speculate");
    assert!(
        spec.speculated >= 1 && spec.wins >= 1,
        "the tail must launch and win at least one speculative copy"
    );
    assert!(
        spec.wins <= spec.speculated,
        "wins cannot exceed speculative launches"
    );
}
