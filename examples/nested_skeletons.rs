//! Nested skeletons through one entry point on two backends.
//!
//! ```text
//! cargo run --release --example nested_skeletons
//! ```
//!
//! Builds a **farm-of-pipelines** from the imaging workload (four lanes,
//! each streaming frames through the blur → sharpen → Sobel → threshold
//! chain) and a **pipeline-of-farms** (the same chain with the heavy Sobel
//! stage farmed across three workers), then runs both expressions unchanged
//! through `Grasp::run` on:
//!
//! * the simulated-grid backend (`SimBackend`, virtual time), and
//! * the real-thread backend (`ThreadBackend`, wall-clock time).
//!
//! The two backends share the skeleton lowering, so their outcomes agree
//! structurally — same unit ids, same per-lane counts — which the example
//! asserts before printing the reports.

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_exec::ThreadBackend;
use grasp_repro::grasp_workloads::imaging::ImagePipeline;
use grasp_repro::gridsim::{Grid, TopologyBuilder};

fn report_line(backend: &str, report: &GraspRunReport<SkeletonOutcome>) {
    println!(
        "  {backend:<8} {:<18} {:>4} units in {:>8.3}s ({:>7.2} units/s), {} lanes, {} adaptations",
        report.outcome.kind.name(),
        report.outcome.completed,
        report.outcome.makespan_s,
        report.outcome.throughput(),
        report.outcome.children.len(),
        report.outcome.adaptations(),
    );
}

fn main() {
    let job = ImagePipeline {
        width: 320,
        height: 240,
        frames: 64,
        seed: 11,
    };
    let farm_of_pipes = job.as_farm_of_pipelines(2e4, 4);
    let pipe_of_farms = job.as_nested_skeleton(2e4, 3);

    let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(8, 20.0, 80.0, 11));
    let sim = SimBackend::new(&grid);
    let threads = ThreadBackend::new(4).with_config(BackendConfig::new().spin_per_work_unit(2_000));
    let grasp = Grasp::new(GraspConfig::default());

    println!(
        "farm-of-pipelines: {} lanes x ~{} frames, properties: ratio {:.2}, kind {}",
        4,
        job.frames / 4,
        farm_of_pipes.properties().comp_comm_ratio,
        farm_of_pipes.kind().name()
    );
    let sim_report = grasp
        .run(&sim, &farm_of_pipes)
        .expect("sim run of the nested farm failed");
    let thread_report = grasp
        .run(&threads, &farm_of_pipes)
        .expect("thread run of the nested farm failed");
    report_line("sim", &sim_report);
    report_line("threads", &thread_report);
    assert_eq!(
        sim_report.outcome.unit_ids, thread_report.outcome.unit_ids,
        "both backends must cover the same unit set"
    );
    assert!(sim_report.outcome.conserves_units_of(&farm_of_pipes));
    assert!(thread_report.outcome.conserves_units_of(&farm_of_pipes));
    println!("  -> backends agree on the unit set and per-lane counts\n");

    println!(
        "pipeline-of-farms: Sobel stage farmed x3, kind {}",
        pipe_of_farms.kind().name()
    );
    let sim_report = grasp
        .run(&sim, &pipe_of_farms)
        .expect("sim run of the nested pipeline failed");
    let thread_report = grasp
        .run(&threads, &pipe_of_farms)
        .expect("thread run of the nested pipeline failed");
    report_line("sim", &sim_report);
    report_line("threads", &thread_report);
    assert_eq!(
        sim_report.outcome.completed,
        thread_report.outcome.completed
    );
    if let OutcomeDetail::ThreadPipeline {
        replicas_per_stage, ..
    } = &thread_report.outcome.detail
    {
        println!("  thread replicas per stage: {replicas_per_stage:?}");
    }
}
