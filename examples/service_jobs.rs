//! The resident multi-job service, end to end.
//!
//! Where every other example spins a pool up for one skeleton and tears it
//! down, this one starts a [`GraspService`] once and streams many small
//! mixed-shape jobs through it: the worker pool and the adaptation engine
//! outlive every job, calibration profiles are cached per (worker,
//! payload-kind) and re-served to later jobs, small jobs ride shared
//! dispatch rounds, and the bounded admission queue turns overload into a
//! typed rejection instead of unbounded memory growth.
//!
//! Run with: `cargo run --release --example service_jobs`

use grasp_repro::grasp_core::prelude::*;
use grasp_repro::grasp_service::{GraspService, JobPriority, JobSpec, ServiceConfig};
use grasp_repro::grasp_workloads::ServiceMixJob;

fn main() {
    let mut config = ServiceConfig::with_workers(4);
    config.spin_per_work_unit = 2_000;
    config.backlog_capacity = 32;
    let service = GraspService::start(config);

    // A deterministic Poisson stream of mixed shapes: farm, pipeline,
    // farm-of-farms — the same generator E14 measures.
    let stream = ServiceMixJob {
        jobs: 18,
        units_per_job: 8,
        ..ServiceMixJob::default()
    };
    println!(
        "service_jobs: submitting {} mixed-shape jobs to one resident pool",
        stream.jobs
    );

    let handles: Vec<_> = stream
        .arrivals()
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            let spec = JobSpec::default()
                .with_payload_kind(arrival.shape)
                .with_tenant(if i % 2 == 0 { "alice" } else { "bob" })
                .with_priority(if i % 6 == 0 {
                    JobPriority::High
                } else {
                    JobPriority::Normal
                });
            let skeleton = arrival.skeleton;
            let handle = service
                .submit(skeleton.clone(), spec)
                .expect("the stream fits the admission backlog");
            (skeleton, arrival.shape, handle)
        })
        .collect();

    let mut reused = 0usize;
    for (skeleton, shape, handle) in handles {
        let outcome = handle.wait().expect("every job must complete");
        assert!(
            outcome.conserves_units_of(&skeleton),
            "each job's outcome must conserve its own unit namespace"
        );
        if let OutcomeDetail::Service {
            job,
            batched_jobs,
            profile_hits,
            ..
        } = &outcome.detail
        {
            if *profile_hits > 0 {
                reused += 1;
            }
            println!(
                "  job-{job:<2} {shape:<8} {} units in {:.4}s  (round shared by {batched_jobs} job(s), {profile_hits} cached profiles)",
                outcome.completed, outcome.makespan_s
            );
        }
    }
    assert!(
        reused >= 2,
        "cached calibration must serve at least two jobs"
    );

    let stats = service.stats();
    println!(
        "service_jobs: {} jobs over {} shared rounds; profile cache {} hits / {} misses",
        stats.jobs_completed, stats.rounds, stats.profile.hits, stats.profile.misses
    );
    service.shutdown();
    println!("service_jobs: OK");
}
