//! Offline shim for the `rand` crate (0.8-era API surface).
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of `rand` it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! deterministic for a given seed but do **not** match the real `rand`
//! crate's `StdRng` output; nothing in this workspace depends on the exact
//! stream, only on fixed-seed reproducibility.

use std::ops::{Range, RangeInclusive};

/// Types that can seed an RNG. Only `seed_from_u64` is exercised here.
pub trait SeedableRng: Sized {
    /// The raw seed type (fixed-width byte array for the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a 64-bit seed (SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Core randomness source (subset of the real `RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, ints or floats).
    ///
    /// Panics on an empty range, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Converts 64 random bits into a uniform f64 in [0, 1).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    /// Alias: the small generator is the same xoshiro core here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let inc = rng.gen_range(10i64..=12);
            assert!((10..=12).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.03);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn seed_zero_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| rng.gen_range(0..u64::MAX)).collect();
        assert!(draws.iter().any(|&d| d != draws[0]));
    }
}
