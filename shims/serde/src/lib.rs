//! Offline shim for the `serde` crate.
//!
//! This workspace only ever *derives* `Serialize`/`Deserialize` — it never
//! calls a serializer — so the traits here are markers with blanket impls
//! and the derives (re-exported from the `serde_derive` shim) expand to
//! nothing. Any `T: Serialize` bound is satisfied for every type, keeping
//! the source identical to what it would be against the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    //! Deserialization-side marker re-exports.
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    //! Serialization-side marker re-exports.
    pub use crate::Serialize;
}
