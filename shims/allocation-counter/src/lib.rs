//! Offline API-compatible shim for the `allocation-counter` crate (0.8
//! line): count heap allocations made by a closure, per thread.
//!
//! The crate installs a `#[global_allocator]` that forwards to the system
//! allocator and, while the current thread is inside [`measure`], records
//! every allocation into thread-local counters. Outside `measure` the
//! bookkeeping is a single thread-local flag check, so linking this shim
//! into a test binary does not meaningfully slow the untested paths.
//!
//! Like the real crate, counting is strictly per-thread: allocations made
//! by other threads while a `measure` is running are not attributed to it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// What a [`measure`]d closure allocated on the calling thread.
///
/// `*_total` only ever grows; `*_current` is live-at-this-instant and drops
/// back on free (it can go negative if the closure frees memory allocated
/// before the measurement started); `*_max` is the high-water mark of
/// `*_current` within the measurement.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AllocationInfo {
    /// Number of allocations performed.
    pub count_total: u64,
    /// Allocations still live (allocated minus freed).
    pub count_current: i64,
    /// Peak of `count_current` during the measurement.
    pub count_max: u64,
    /// Bytes allocated in total.
    pub bytes_total: u64,
    /// Bytes still live (allocated minus freed).
    pub bytes_current: i64,
    /// Peak of `bytes_current` during the measurement.
    pub bytes_max: u64,
}

const ZERO: AllocationInfo = AllocationInfo {
    count_total: 0,
    count_current: 0,
    count_max: 0,
    bytes_total: 0,
    bytes_current: 0,
    bytes_max: 0,
};

thread_local! {
    /// True while the current thread is inside `measure` and not `opt_out`.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// Counters for the innermost in-progress `measure` on this thread.
    static INFO: Cell<AllocationInfo> = const { Cell::new(ZERO) };
}

fn on_alloc(bytes: usize) {
    // `try_with` so allocations during thread teardown (after TLS
    // destruction) fall through silently instead of aborting.
    let _ = ACTIVE.try_with(|active| {
        if !active.get() {
            return;
        }
        let _ = INFO.try_with(|cell| {
            let mut info = cell.get();
            info.count_total += 1;
            info.count_current += 1;
            info.count_max = info.count_max.max(info.count_current.max(0) as u64);
            info.bytes_total += bytes as u64;
            info.bytes_current += bytes as i64;
            info.bytes_max = info.bytes_max.max(info.bytes_current.max(0) as u64);
            cell.set(info);
        });
    });
}

fn on_dealloc(bytes: usize) {
    let _ = ACTIVE.try_with(|active| {
        if !active.get() {
            return;
        }
        let _ = INFO.try_with(|cell| {
            let mut info = cell.get();
            info.count_current -= 1;
            info.bytes_current -= bytes as i64;
            cell.set(info);
        });
    });
}

/// System allocator wrapper feeding the thread-local counters.
struct CountingSystemAlloc;

// SAFETY: pure pass-through to `System`; the bookkeeping around each call
// touches only `Cell`-based thread-locals and never allocates itself.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingSystemAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingSystemAlloc = CountingSystemAlloc;

/// Run `run_while_counting` and report what it allocated on this thread.
///
/// Nested calls are supported: an inner `measure` returns its own counters
/// and folds its totals back into the enclosing measurement. The counters
/// are restored even if the closure panics.
pub fn measure<F: FnOnce()>(run_while_counting: F) -> AllocationInfo {
    /// Restores (and, when nested, merges) the enclosing measurement state
    /// on drop, so a panicking closure cannot corrupt the counters.
    struct Guard {
        outer_active: bool,
        outer: AllocationInfo,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            let inner = INFO.with(Cell::get);
            ACTIVE.with(|a| a.set(self.outer_active));
            let restored = if self.outer_active {
                let o = self.outer;
                AllocationInfo {
                    count_total: o.count_total + inner.count_total,
                    count_current: o.count_current + inner.count_current,
                    count_max: o
                        .count_max
                        .max((o.count_current + inner.count_max as i64).max(0) as u64),
                    bytes_total: o.bytes_total + inner.bytes_total,
                    bytes_current: o.bytes_current + inner.bytes_current,
                    bytes_max: o
                        .bytes_max
                        .max((o.bytes_current + inner.bytes_max as i64).max(0) as u64),
                }
            } else {
                self.outer
            };
            INFO.with(|c| c.set(restored));
        }
    }

    let guard = Guard {
        outer_active: ACTIVE.with(|a| a.replace(true)),
        outer: INFO.with(|c| c.replace(ZERO)),
    };
    run_while_counting();
    let inner = INFO.with(Cell::get);
    drop(guard);
    inner
}

/// Run `run_while_not_counting` with counting suspended on this thread, so
/// its allocations are not attributed to any enclosing [`measure`].
pub fn opt_out<F: FnOnce() -> R, R>(run_while_not_counting: F) -> R {
    /// Re-arms counting on drop so a panic cannot leave it disabled.
    struct Guard(bool);
    impl Drop for Guard {
        fn drop(&mut self) {
            ACTIVE.with(|a| a.set(self.0));
        }
    }
    let _guard = Guard(ACTIVE.with(|a| a.replace(false)));
    run_while_not_counting()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hint::black_box;

    #[test]
    fn a_vec_allocation_is_counted_with_its_exact_size() {
        let info = measure(|| {
            let v: Vec<u8> = Vec::with_capacity(1024);
            black_box(&v);
        });
        assert_eq!(info.count_total, 1);
        assert_eq!(info.bytes_total, 1024);
        assert_eq!(info.count_max, 1);
        assert_eq!(info.bytes_max, 1024);
        // The vector dropped inside the closure, so nothing is still live.
        assert_eq!(info.count_current, 0);
        assert_eq!(info.bytes_current, 0);
    }

    #[test]
    fn pure_computation_reports_zero() {
        let mut acc = 0u64;
        let info = measure(|| {
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i).wrapping_mul(i));
            }
        });
        black_box(acc);
        assert_eq!(info, AllocationInfo::default());
    }

    #[test]
    fn leaked_allocations_stay_current() {
        let mut kept: Vec<u8> = Vec::new();
        let info = measure(|| {
            kept = Vec::with_capacity(256);
        });
        black_box(&kept);
        assert_eq!(info.count_current, 1);
        assert_eq!(info.bytes_current, 256);
    }

    #[test]
    fn realloc_counts_as_free_plus_alloc() {
        let info = measure(|| {
            let mut v: Vec<u8> = Vec::with_capacity(16);
            v.extend_from_slice(&[0; 16]);
            v.reserve_exact(512);
            black_box(&v);
        });
        assert!(info.count_total >= 2, "grow must re-count: {info:?}");
        assert_eq!(info.count_current, 0);
        assert_eq!(info.bytes_current, 0);
    }

    #[test]
    fn opt_out_suppresses_counting() {
        let info = measure(|| {
            opt_out(|| {
                let v = vec![0u8; 512];
                black_box(&v);
            });
        });
        assert_eq!(info, AllocationInfo::default());
    }

    #[test]
    fn nested_measures_fold_into_the_outer_one() {
        let outer = measure(|| {
            let inner = measure(|| {
                let v = vec![0u8; 256];
                black_box(&v);
            });
            assert_eq!(inner.bytes_total, 256);
        });
        assert!(
            outer.bytes_total >= 256,
            "inner totals must fold: {outer:?}"
        );
    }
}
