//! Offline shim for the `crossbeam` crate.
//!
//! Provides the subset this workspace uses: `crossbeam::channel::{bounded,
//! Sender, Receiver}` — a bounded multi-producer multi-consumer channel with
//! cloneable endpoints, built on `std::sync::{Mutex, Condvar}`.

pub mod channel {
    //! Bounded MPMC channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver has hung up;
    /// yields the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain.
        Empty,
        /// Channel empty and every sender has hung up.
        Disconnected,
    }

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a bounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel with room for `capacity` in-flight messages.
    ///
    /// Unlike real crossbeam, `capacity == 0` (rendezvous) is rounded up to 1;
    /// this workspace never requests a rendezvous channel.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity: capacity.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns it in
        /// `Err(SendError)` once every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < state.capacity {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or returns `Err(RecvError)` once
        /// the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over incoming messages; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake senders blocked on a full queue so they observe the
                // disconnect.
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn messages_arrive_in_order() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        }

        #[test]
        fn recv_reports_disconnect() {
            let (tx, rx) = bounded::<u8>(1);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_reports_disconnect() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(2);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            producer.join().unwrap();
            assert_eq!(got.len(), 100);
        }

        #[test]
        fn mpmc_consumes_every_message_once() {
            let (tx, rx) = bounded(8);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || rx.iter().count())
                })
                .collect();
            drop(rx);
            for i in 0..300 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 300);
        }
    }
}
