//! Offline shim for the `criterion` crate.
//!
//! A minimal benchmark harness exposing the subset this workspace uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up call, then `sample_size`
//! timed samples of an adaptively chosen iteration batch — and results are
//! printed as `name  time: [mean ± stddev]`. There is no statistical
//! regression machinery; swap the real crate back in for publishable
//! numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("nodes", 64)` → `nodes/64`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<f64>,
}

impl Bencher<'_> {
    /// Measures `routine`, recording per-iteration seconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + batch sizing: aim for batches of at least ~1 ms so that
        // timer resolution doesn't dominate very fast routines.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let batch = if once >= Duration::from_millis(1) {
            1
        } else {
            let per_iter = once.as_secs_f64().max(1e-9);
            ((1e-3 / per_iter) as usize).clamp(1, 10_000)
        };
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.results.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{:.3} s", s)
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_and_report<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut results = Vec::new();
    {
        let mut bencher = Bencher {
            samples,
            results: &mut results,
        };
        f(&mut bencher);
    }
    if results.is_empty() {
        println!("{:<40} (no measurement: bencher.iter was not called)", name);
        return;
    }
    let n = results.len() as f64;
    let mean = results.iter().sum::<f64>() / n;
    let var = results.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
    println!(
        "{:<40} time: [{} ± {}]",
        name,
        format_seconds(mean),
        format_seconds(var.sqrt())
    );
}

impl Criterion {
    /// Default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_and_report(&id.into_benchmark_id(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_and_report(&full, self.sample_size, f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_and_report(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (print-only harness: nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags such as `--bench`; this
            // minimal harness has no filtering, so flags are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("smoke", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
    }

    #[test]
    fn groups_run_parameterised_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        for n in [1usize, 4] {
            group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
                b.iter(|| vec![0u8; n * 64].len())
            });
        }
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("nodes", 64).id, "nodes/64");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
