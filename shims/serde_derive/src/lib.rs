//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! as documentation of intent, but never actually serialises anything (no
//! `serde_json`, no `Serializer` calls). The companion `serde` shim gives the
//! traits blanket impls, so these derives can expand to nothing: the derive
//! only needs to *exist* (and accept `#[serde(...)]` helper attributes) for
//! the code to compile unchanged against the real crates later.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
