//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `parking_lot` implemented on top of
//! `std::sync`. Semantics match what this workspace relies on: `lock()`
//! returns a guard directly (no `Result`, no poisoning — a poisoned std lock
//! is recovered transparently, matching parking_lot's panic-transparent
//! behaviour closely enough for these single-process uses).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive. See the module docs for the shim contract.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: Some(g) },
            Err(poisoned) => MutexGuard {
                inner: Some(poisoned.into_inner()),
            },
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The guard is held as an `Option` internally so [`Condvar::wait`] can move
/// it through `std::sync::Condvar::wait` and put it back; the slot is `Some`
/// at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is held")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is held")
    }
}

/// A condition variable paired with the shim [`Mutex`], mirroring the
/// `parking_lot::Condvar` API surface this workspace uses.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the mutex while waiting.
    /// Like all waits, spurious wakeups are possible: callers loop on their
    /// predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let held = guard.inner.take().expect("guard is held");
        let held = match self.inner.wait(held) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(held);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock with the same no-poisoning contract as [`Mutex`].
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(poisoned) => RwLockReadGuard {
                inner: poisoned.into_inner(),
            },
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(poisoned) => RwLockWriteGuard {
                inner: poisoned.into_inner(),
            },
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_a_predicate_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let signaller = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*signaller;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
