//! Case execution: config, RNG, and the loop driving each property.

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum ratio of rejected (`prop_assume!`) to accepted cases before
    /// the test aborts as under-constrained.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// `prop_assume!` rejected the drawn inputs; the case is re-drawn.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Deterministic per-case RNG (xoshiro256++ seeded by FNV-1a of the test
/// name mixed with the case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the test called `name`.
    pub fn from_name_and_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Expand through SplitMix64 into the xoshiro state.
        let mut s = [0u64; 4];
        for word in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if s.iter().all(|&w| w == 0) {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Effective case count: the config's `cases`, capped by the
/// `PROPTEST_CASES` environment variable when it is set and smaller.
///
/// The cap (rather than override) semantics keep `cargo test -q` bounded in
/// CI without letting the environment silently *increase* a test's budget.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
    {
        Some(cap) => config.cases.min(cap.max(1)),
        None => config.cases,
    }
}

/// Drives one property: draws inputs, runs the case closure, panics with a
/// report on the first falsified case. No shrinking — seeds are
/// deterministic, so the report alone reproduces the failure.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, case: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = effective_cases(config);
    let mut rejects: u32 = 0;
    let mut passed: u32 = 0;
    // Reject re-draws take fresh seeds after the nominal case range.
    let mut draw: u64 = 0;
    while passed < cases {
        let mut rng = TestRng::from_name_and_case(name, draw);
        draw += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{}': too many prop_assume! rejections ({}) — \
                         the property is under-constrained",
                        name, rejects
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{}' falsified at case {} (seed draw {}):\n{}",
                    name,
                    passed,
                    draw - 1,
                    msg
                );
            }
        }
    }
}
