//! Offline shim for the `proptest` crate.
//!
//! A small deterministic property-testing engine exposing the subset of the
//! real API this workspace uses: the [`proptest!`] macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, range and tuple
//! strategies, `any::<T>()`, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: case seeds derive from the test name and case index,
//!   so runs are reproducible without persistence. Consequently no
//!   `proptest-regressions/` files are ever written (see DESIGN.md for the
//!   regression-file policy if the real crate is ever swapped back in).
//! * **No shrinking**: a failing case reports its inputs verbatim.
//! * **`PROPTEST_CASES`** (environment) acts as a *cap* on the per-test case
//!   count, keeping `cargo test -q` time-bounded.

pub mod test_runner;

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A (possibly degenerate) range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works after a prelude
/// glob import, as with the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(stringify!($name), &config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                    let __inputs = || {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg
                            ));
                        )+
                        s
                    };
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match __result {
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(
                                format!("{}\nwith inputs:\n{}", msg, __inputs()),
                            ),
                        ),
                        other => other,
                    }
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            x in 1usize..10,
            pair in (0.0f64..1.0, 2.0f64..3.0),
            flag in any::<bool>(),
        ) {
            let (lo, hi) = pair;
            let in_unit = (0.0..1.0).contains(&lo);
            let in_upper = (2.0..3.0).contains(&hi);
            prop_assert!((1..10).contains(&x));
            prop_assert!(in_unit);
            prop_assert!(in_upper);
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0i32..5, 2..8)) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(0.0f64..1.0, 9)) {
            prop_assert_eq!(v.len(), 9);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "with inputs")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was small: {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0.0f64..1.0;
        let a: Vec<f64> = {
            let mut rng = TestRng::from_name_and_case("det", 3);
            (0..16).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = TestRng::from_name_and_case("det", 3);
            (0..16).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
