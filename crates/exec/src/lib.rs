//! # grasp-exec — shared-memory execution backend for GRASP skeletons
//!
//! The reference backend of `grasp-core` drives a *simulated* grid so that
//! the adaptive behaviour can be studied reproducibly.  This crate provides
//! the complementary piece a downstream user wants on a real machine: the
//! same two skeletons — task farm and pipeline — executing user closures on
//! real threads.
//!
//! The shared-memory backend keeps the GRASP shape:
//!
//! * [`farm::ThreadFarm`] runs a **calibration pass** (a few probe tasks per
//!   worker) before settling on a chunk size, then executes the remaining
//!   tasks demand-driven, recording per-worker statistics.
//! * [`pipeline::ThreadPipeline`] runs each stage on its own thread connected
//!   by bounded channels, measures per-stage service times, and can
//!   **replicate the bottleneck stage** when its observed service time
//!   exceeds the adaptation threshold — the shared-memory analogue of
//!   remapping a stage to a faster node.
//!
//! Both skeletons guarantee that results are delivered in submission order,
//! and neither uses `unsafe`.
//!
//! On top of the two engines, [`backend::ThreadBackend`] implements the
//! `grasp-core` `Backend` trait, so any composable `Skeleton` expression —
//! including nested farm-of-pipelines and pipeline-of-farms — runs on real
//! threads through the same `Grasp::run` entry point as the simulation.
//! The backend also drives the backend-neutral
//! [`grasp_core::engine::AdaptationEngine`] on wall-clock observations
//! (Algorithms 1–2: calibrate, monitor against the threshold *Z*, demote or
//! re-calibrate), so `SkeletonOutcome::adaptation_log` is populated on real
//! threads exactly as on the simulated grid.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
pub mod deque;
pub mod farm;
pub mod pipeline;
pub mod pool;

pub use backend::{spin, ThreadBackend};
pub use deque::StealDeque;
pub use farm::{FarmStats, RankTable, ThreadFarm, WorkerGate};
pub use pipeline::{PipelineStats, ThreadPipeline};
pub use pool::{PoolLease, RoundOutcome, WorkerPool};
