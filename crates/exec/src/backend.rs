//! The shared-memory [`Backend`]: composable skeletons on real threads.
//!
//! [`ThreadBackend`] adapts [`ThreadFarm`] and [`ThreadPipeline`] to the
//! `grasp-core` [`Backend`] trait so the *same* [`Skeleton`] expression that
//! drives the simulated grid runs on the local machine:
//!
//! * farm-shaped expressions (including farm-of-pipelines, via the shared
//!   lowering of [`Skeleton::lower_to_farm`]) become a [`ThreadFarm`] whose
//!   tasks execute a calibrated spin kernel proportional to each unit's
//!   declared work;
//! * pipeline-shaped expressions become a [`ThreadPipeline`], with farmed
//!   stages realised as genuinely replicated stage workers
//!   ([`ThreadPipeline::stage_replicated`]).
//!
//! Because both backends lower compositions through the same rules, their
//! outcomes agree structurally — same unit ids, same per-child counts — even
//! though one clock is virtual and the other is wall time.  That is what
//! makes backend-parity tests and experiment portability possible.

use crate::farm::ThreadFarm;
use crate::pipeline::ThreadPipeline;
use grasp_core::error::GraspError;
use grasp_core::skeleton::{
    Backend, OutcomeDetail, ResilienceReport, Skeleton, SkeletonOutcome, UnitSpan,
};
use grasp_core::{GraspConfig, SchedulePolicy, StageSpec};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Spin for approximately `iters` iterations of optimisation-resistant
/// integer work — the real computational kernel synthesised from a unit's
/// abstract work declaration (also the spin loop the crate's tests use, so
/// the kernel lives in exactly one place).
pub(crate) fn spin(iters: u64) -> u64 {
    let mut acc = 0x9E3779B97F4A7C15u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
    }
    black_box(acc)
}

/// The real-thread execution backend for skeleton expressions.
///
/// Job-level parameters come from the [`GraspConfig`] handed to
/// `Grasp::run`: the farm scheduling policy (`config.scheduler`) and the
/// calibration sample count (`config.calibration.samples_per_node`), unless
/// explicitly overridden with [`ThreadBackend::with_policy`] /
/// [`ThreadBackend::with_calibration_samples`].  The grid-monitoring knobs
/// (threshold *Z*, monitor interval, recalibration budget) have no
/// wall-clock counterpart here: the thread farm adapts continuously through
/// demand-driven weighted chunking instead of discrete recalibrations.
#[derive(Debug, Clone)]
pub struct ThreadBackend {
    workers: usize,
    /// Explicit override of the config's scheduling policy.
    policy: Option<SchedulePolicy>,
    /// Explicit override of the config's calibration sample count.
    calibration_samples: Option<usize>,
    /// Spin iterations executed per declared work unit.
    spin_per_work_unit: u64,
    /// Bounded attempts per unit before the run fails.
    max_task_attempts: usize,
    /// Panics one farm worker may absorb before retiring from the pool.
    worker_panic_budget: usize,
    /// Fault injection: the first `inject_panics` unit executions of each run
    /// panic (the shared-memory churn analogue of node revocation).
    inject_panics: usize,
}

impl Default for ThreadBackend {
    fn default() -> Self {
        ThreadBackend::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
        )
    }
}

impl ThreadBackend {
    /// A backend with `workers` farm threads and a small default kernel
    /// scale; scheduling policy and calibration sample count come from the
    /// job's [`GraspConfig`] unless overridden.
    pub fn new(workers: usize) -> Self {
        ThreadBackend {
            workers: workers.max(1),
            policy: None,
            calibration_samples: None,
            spin_per_work_unit: 500,
            max_task_attempts: 3,
            worker_panic_budget: 3,
            inject_panics: 0,
        }
    }

    /// Override the farm scheduling policy (otherwise `config.scheduler`).
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Override how many probe tasks each farm worker executes during the
    /// calibration pass (0 disables it; otherwise
    /// `config.calibration.samples_per_node`).
    pub fn with_calibration_samples(mut self, samples: usize) -> Self {
        self.calibration_samples = Some(samples);
        self
    }

    /// Override how many spin iterations one declared work unit costs
    /// (lower = faster tests, higher = more realistic load).
    pub fn with_spin_per_work_unit(mut self, iters: u64) -> Self {
        self.spin_per_work_unit = iters.max(1);
        self
    }

    /// Override how many times one unit may be attempted before the run
    /// fails with [`GraspError::WorkerFailed`] (clamped to ≥ 1; default 3).
    pub fn with_max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Override how many panics one farm worker may absorb before it
    /// retires from the pool (see `ThreadFarm::with_worker_panic_budget`;
    /// the last active worker never retires).
    pub fn with_worker_panic_budget(mut self, budget: usize) -> Self {
        self.worker_panic_budget = budget;
        self
    }

    /// Inject worker faults: the first `panics` unit executions of each run
    /// panic before doing any work.  This is the shared-memory analogue of a
    /// grid node being revoked mid-task — the backend must isolate the
    /// panics, retry the units on surviving workers and report the recovery
    /// in the outcome's [`ResilienceReport`].  Intended for churn
    /// experiments and fault-path tests; 0 (the default) disables injection.
    pub fn with_panic_injection(mut self, panics: usize) -> Self {
        self.inject_panics = panics;
        self
    }

    /// Number of farm worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn iters_for(&self, work: f64) -> u64 {
        (work.max(0.0) * self.spin_per_work_unit as f64).round() as u64
    }
}

/// A skeleton bound to the thread backend, ready to execute.
#[derive(Debug, Clone)]
pub struct ThreadCompiled {
    plan: ThreadPlan,
    kind: grasp_core::SkeletonKind,
}

#[derive(Debug, Clone)]
enum ThreadPlan {
    /// Flat unit list (global id, declared work) plus the composition spans.
    Farm {
        units: Vec<(usize, f64)>,
        spans: Vec<UnitSpan>,
    },
    /// Raw stages with their replica counts and the stream length.
    Pipeline {
        stages: Vec<StageSpec>,
        replicas: Vec<usize>,
        items: usize,
    },
}

impl Backend for ThreadBackend {
    type Compiled = ThreadCompiled;

    fn name(&self) -> &'static str {
        "threads"
    }

    fn compile(
        &self,
        config: &GraspConfig,
        skeleton: &Skeleton,
    ) -> Result<Self::Compiled, GraspError> {
        config.validate()?;
        skeleton.validate()?;
        let plan = match skeleton.pipeline_plan() {
            Some((stages, replicas, items)) => ThreadPlan::Pipeline {
                stages,
                replicas,
                items,
            },
            None => {
                let (tasks, spans) = skeleton.lower_to_farm();
                ThreadPlan::Farm {
                    units: tasks.iter().map(|t| (t.id, t.work)).collect(),
                    spans,
                }
            }
        };
        Ok(ThreadCompiled {
            plan,
            kind: skeleton.kind(),
        })
    }

    fn execute(
        &self,
        config: &GraspConfig,
        compiled: &Self::Compiled,
    ) -> Result<SkeletonOutcome, GraspError> {
        let policy = self.policy.unwrap_or(config.scheduler);
        // Fault-injection budget for this run: the first `inject_panics`
        // unit executions panic before doing any work.
        let injector = Arc::new(AtomicUsize::new(self.inject_panics));
        let maybe_inject = move |injector: &AtomicUsize| {
            if injector
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                .is_ok()
            {
                panic!("injected worker fault (churn analogue)");
            }
        };
        match &compiled.plan {
            ThreadPlan::Farm { units, spans } => {
                let samples = self
                    .calibration_samples
                    .unwrap_or(config.calibration.samples_per_node);
                let farm = ThreadFarm::new(self.workers)
                    .with_policy(policy)
                    .with_calibration_samples(samples)
                    .with_max_task_attempts(self.max_task_attempts)
                    .with_worker_panic_budget(self.worker_panic_budget);
                let run_start = std::time::Instant::now();
                // Declared work per worker: the outcome reports it so
                // experiments can judge schedule balance on any hardware
                // (see `OutcomeDetail::ThreadFarm`).  One atomic per worker
                // (micro-work-units) keeps the accounting off the task hot
                // path — no shared lock.
                let work_acc: Vec<AtomicU64> =
                    (0..self.workers).map(|_| AtomicU64::new(0)).collect();
                let (results, stats) = farm.try_run_indexed(units, |wid, &(id, work)| {
                    maybe_inject(&injector);
                    spin(self.iters_for(work));
                    work_acc[wid].fetch_add((work * 1e6) as u64, Ordering::Relaxed);
                    (id, run_start.elapsed().as_secs_f64())
                })?;
                let work_per_worker: Vec<f64> = work_acc
                    .iter()
                    .map(|a| a.load(Ordering::Relaxed) as f64 / 1e6)
                    .collect();
                let makespan_s = stats.total.as_secs_f64();
                // Sparse id → wall-clock completion table: leaf farms keep
                // their original (possibly arbitrary) ids, so no dense
                // max-id-sized buffer.  Spans share it via the same helper
                // the simulated backend uses.
                let completions: std::collections::BTreeMap<usize, f64> =
                    results.iter().copied().collect();
                let mut unit_ids: Vec<usize> = results.iter().map(|&(id, _)| id).collect();
                unit_ids.sort_unstable();
                Ok(SkeletonOutcome {
                    kind: compiled.kind,
                    completed: unit_ids.len(),
                    unit_ids,
                    makespan_s,
                    calibration_s: stats.calibration.as_secs_f64(),
                    adaptations: 0,
                    resilience: ResilienceReport {
                        // Each caught panic hands the task back to the pool…
                        requeued_tasks: stats.panics,
                        // …and each retried task eventually completed again.
                        retried_tasks: stats.retried,
                        migrated_stages: 0,
                        nodes_lost: stats.workers_lost,
                    },
                    children: spans.iter().map(|s| s.outcome_from(&completions)).collect(),
                    detail: OutcomeDetail::ThreadFarm {
                        workers: stats.workers,
                        tasks_per_worker: stats.tasks_per_worker.clone(),
                        work_per_worker,
                    },
                })
            }
            ThreadPlan::Pipeline {
                stages,
                replicas,
                items,
            } => {
                let mut pipeline: ThreadPipeline<usize> =
                    ThreadPipeline::new().with_max_task_attempts(self.max_task_attempts);
                for (stage, &r) in stages.iter().zip(replicas) {
                    let iters = self.iters_for(stage.work_per_item);
                    let injector = Arc::clone(&injector);
                    let f = move |x: usize| {
                        maybe_inject(&injector);
                        spin(iters);
                        x
                    };
                    pipeline = if r > 1 {
                        pipeline.stage_replicated(f, r)
                    } else {
                        pipeline.stage(f)
                    };
                }
                let (out, stats) = pipeline.try_run((0..*items).collect())?;
                let mut unit_ids = out;
                unit_ids.sort_unstable();
                Ok(SkeletonOutcome {
                    kind: compiled.kind,
                    completed: unit_ids.len(),
                    unit_ids,
                    makespan_s: stats.total.as_secs_f64(),
                    calibration_s: 0.0,
                    adaptations: 0,
                    resilience: ResilienceReport {
                        requeued_tasks: 0,
                        retried_tasks: stats.retried,
                        migrated_stages: 0,
                        nodes_lost: 0,
                    },
                    children: Vec::new(),
                    detail: OutcomeDetail::ThreadPipeline {
                        bottleneck_stage: stats.bottleneck_stage,
                        replicas_per_stage: stats.replicas_per_stage.clone(),
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_core::{Grasp, SkeletonKind, TaskSpec};

    fn fast_backend() -> ThreadBackend {
        ThreadBackend::new(3).with_spin_per_work_unit(1)
    }

    fn lane(items: usize) -> Skeleton {
        Skeleton::pipeline(StageSpec::balanced(3, 4.0, 1024), items)
    }

    #[test]
    fn farm_skeleton_completes_every_unit_exactly_once() {
        let skeleton = Skeleton::farm(TaskSpec::uniform(50, 2.0, 0, 0));
        let report = Grasp::new(GraspConfig::default())
            .run(&fast_backend(), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.completed, 50);
        assert_eq!(report.outcome.unit_ids, (0..50).collect::<Vec<_>>());
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert!(matches!(
            report.outcome.detail,
            OutcomeDetail::ThreadFarm { workers: 3, .. }
        ));
    }

    #[test]
    fn nested_farm_of_pipelines_runs_on_threads() {
        let skeleton = Skeleton::farm_of(vec![
            lane(8),
            Skeleton::farm(TaskSpec::uniform(5, 1.0, 0, 0)),
            lane(8),
        ]);
        let report = Grasp::new(GraspConfig::default())
            .run(&fast_backend(), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.kind, SkeletonKind::FarmOfPipelines);
        assert_eq!(report.outcome.completed, 21);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert_eq!(report.outcome.children.len(), 3);
        assert_eq!(report.outcome.children[1].completed, 5);
        // Child makespans are each child's own last completion, bounded by
        // the whole run — not a copy of the parent's.
        for c in &report.outcome.children {
            assert!(c.makespan_s > 0.0);
            assert!(c.makespan_s <= report.outcome.makespan_s);
        }
    }

    #[test]
    fn job_config_drives_policy_and_calibration_unless_overridden() {
        let skeleton = Skeleton::farm(TaskSpec::uniform(30, 1.0, 0, 0));
        // Config with calibration disabled: the backend must honour it.
        let mut cfg = GraspConfig::default();
        cfg.calibration.samples_per_node = 0;
        cfg.scheduler = grasp_core::SchedulePolicy::SelfScheduling;
        let report = Grasp::new(cfg)
            .run(&ThreadBackend::new(2).with_spin_per_work_unit(1), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.calibration_s, 0.0);
        assert_eq!(report.outcome.completed, 30);
        // An explicit backend override wins over the config.
        let report = Grasp::new(cfg)
            .run(
                &ThreadBackend::new(2)
                    .with_spin_per_work_unit(1)
                    .with_calibration_samples(2),
                &skeleton,
            )
            .unwrap();
        assert!(report.outcome.calibration_s >= 0.0);
        assert_eq!(report.outcome.completed, 30);
    }

    #[test]
    fn pipeline_of_farms_replicates_the_farmed_stage() {
        use grasp_core::FarmedStage;
        let skeleton = Skeleton::pipeline_of(
            vec![
                FarmedStage::plain(StageSpec::new(0, 1.0, 0, 0)),
                FarmedStage::farmed(StageSpec::new(1, 8.0, 0, 0), 3),
            ],
            30,
        );
        let report = Grasp::new(GraspConfig::default())
            .run(&fast_backend(), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.kind, SkeletonKind::PipelineOfFarms);
        assert_eq!(report.outcome.completed, 30);
        match &report.outcome.detail {
            OutcomeDetail::ThreadPipeline {
                replicas_per_stage, ..
            } => assert_eq!(replicas_per_stage, &vec![1, 3]),
            other => panic!("unexpected detail {other:?}"),
        }
    }

    #[test]
    fn invalid_expressions_are_rejected_at_compile_time() {
        let backend = fast_backend();
        let cfg = GraspConfig::default();
        assert!(backend.compile(&cfg, &Skeleton::farm(vec![])).is_err());
        assert!(backend
            .compile(
                &cfg,
                &Skeleton::farm_of(vec![Skeleton::pipeline(vec![], 4)])
            )
            .is_err());
    }

    #[test]
    fn default_backend_uses_available_parallelism() {
        assert!(ThreadBackend::default().workers() >= 1);
    }

    #[test]
    fn injected_farm_panics_are_survived_and_reported() {
        let skeleton = Skeleton::farm(TaskSpec::uniform(40, 2.0, 0, 0));
        let backend = fast_backend().with_panic_injection(2);
        let report = Grasp::new(GraspConfig::default())
            .run(&backend, &skeleton)
            .expect("injected panics must not fail the run");
        assert_eq!(report.outcome.completed, 40);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert!(report.outcome.resilience.retried_tasks >= 1);
        assert!(report.outcome.resilience.requeued_tasks >= 1);
        assert!(!report.outcome.resilience.is_clean());
    }

    #[test]
    fn injected_pipeline_panics_are_survived_and_reported() {
        let skeleton = lane(12);
        let backend = fast_backend()
            .with_panic_injection(1)
            .with_max_task_attempts(4);
        let report = Grasp::new(GraspConfig::default())
            .run(&backend, &skeleton)
            .expect("injected stage panic must not fail the run");
        assert_eq!(report.outcome.completed, 12);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert!(report.outcome.resilience.retried_tasks >= 1);
    }

    #[test]
    fn exhausted_retries_surface_as_worker_failed() {
        // More injected faults than `units × (attempts − 1)` can absorb: some
        // unit must fail every attempt, and the error must be typed, not a
        // process abort.
        let skeleton = Skeleton::farm(TaskSpec::uniform(4, 1.0, 0, 0));
        let backend = ThreadBackend::new(2)
            .with_spin_per_work_unit(1)
            .with_max_task_attempts(2)
            .with_panic_injection(1000);
        let err = Grasp::new(GraspConfig::default())
            .run(&backend, &skeleton)
            .expect_err("saturated fault injection must fail the run");
        assert!(matches!(err, GraspError::WorkerFailed { .. }), "{err}");
    }
}
