//! The shared-memory [`Backend`]: composable skeletons on real threads.
//!
//! [`ThreadBackend`] adapts [`ThreadFarm`] and [`ThreadPipeline`] to the
//! `grasp-core` [`Backend`] trait so the *same* [`Skeleton`] expression that
//! drives the simulated grid runs on the local machine:
//!
//! * farm-shaped expressions (including farm-of-pipelines, via the shared
//!   lowering of [`Skeleton::lower_to_farm`]) become a [`ThreadFarm`] whose
//!   tasks execute a calibrated spin kernel proportional to each unit's
//!   declared work;
//! * pipeline-shaped expressions become a [`ThreadPipeline`], with farmed
//!   stages realised as genuinely replicated stage workers
//!   ([`ThreadPipeline::stage_replicated`]).
//!
//! Because both backends lower compositions through the same rules, their
//! outcomes agree structurally — same unit ids, same per-child counts — even
//! though one clock is virtual and the other is wall time.  That is what
//! makes backend-parity tests and experiment portability possible.
//!
//! **Adaptation** runs through the same backend-neutral
//! [`grasp_core::engine::AdaptationEngine`] the simulated grid uses
//! (Algorithms 1–2): farm workers report wall-clock seconds-per-work-unit
//! observations, the engine compares them against the calibrated threshold
//! *Z* every monitor interval, and its directives are applied for real —
//! a pathological worker is demoted through the farm's
//! [`crate::farm::WorkerGate`] (it stops pulling chunks), and a whole-pool
//! breach triggers a fresh re-calibration sample that re-bases *Z*
//! ([`grasp_core::engine::AdaptationEngine::begin_resample`]).  Pipelines
//! run the stage-mode loop: a breached stage activates a standby replica
//! ([`ThreadPipeline::with_adaptation`]).  Observations are also plumbed
//! into a [`gridmon::MonitorRegistry`] so the same forecasters that smooth
//! simulated load smooth wall-clock load (reported per worker in
//! [`OutcomeDetail::ThreadFarm`]).

use crate::farm::{RankTable, SpeculationPolicy, ThreadFarm, WorkerGate};
use crate::pipeline::ThreadPipeline;
use grasp_core::adaptation::AdaptationLog;
use grasp_core::config::{BackendConfig, ExecutionConfig, FaultInjection};
use grasp_core::engine::{AdaptationDirective, AdaptationEngine, WallClock};
use grasp_core::error::GraspError;
use grasp_core::skeleton::{
    Backend, OutcomeDetail, ResilienceReport, Skeleton, SkeletonOutcome, UnitSpan,
};
use grasp_core::{GraspConfig, SchedulePolicy, StageSpec};
use gridmon::{MonitorRegistry, NodeObservation};
use gridsim::NodeId;
use parking_lot::Mutex;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Spin for approximately `iters` iterations of optimisation-resistant
/// integer work — the real computational kernel synthesised from a unit's
/// abstract work declaration (also the spin loop the crate's tests use, so
/// the kernel lives in exactly one place).  Public so the process-isolated
/// backend's workers burn the *same* kernel per declared work unit, keeping
/// thread/process comparisons like-for-like.
pub fn spin(iters: u64) -> u64 {
    let mut acc = 0x9E3779B97F4A7C15u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
    }
    black_box(acc)
}

/// The real-thread execution backend for skeleton expressions.
///
/// Job-level parameters come from the [`GraspConfig`] handed to
/// `Grasp::run`: the farm scheduling policy (`config.scheduler`) and the
/// calibration sample count (`config.calibration.samples_per_node`), unless
/// explicitly overridden with [`ThreadBackend::with_policy`] /
/// [`ThreadBackend::with_calibration_samples`].  The grid-monitoring knobs
/// — threshold *Z* policy, `monitor_interval_s`, `demote_factor`,
/// `max_recalibrations`, `min_active_nodes`, the `adaptive` master switch —
/// drive the **same** Algorithm-2 loop as on the simulated grid, via the
/// shared [`AdaptationEngine`] on wall-clock observations: a breach demotes
/// the slow worker or re-bases *Z* from a fresh re-calibration sample, on
/// top of the continuous demand-driven weighted chunking.  The interval is
/// interpreted in wall seconds, so short test runs under the default 5 s
/// interval never reach an evaluation — adaptation engages on runs long
/// enough for the signal to beat scheduler noise.  Calibration is the
/// engine's Algorithm 1 here too: with `samples_per_node == 0` there is no
/// calibrated baseline, hence no *Z*, hence no threshold-driven adaptation.
#[derive(Debug, Clone)]
pub struct ThreadBackend {
    workers: usize,
    /// Explicit override of the config's scheduling policy.
    policy: Option<SchedulePolicy>,
    /// Explicit override of the config's calibration sample count.
    calibration_samples: Option<usize>,
    /// Spin iterations executed per declared work unit.
    spin_per_work_unit: u64,
    /// Bounded attempts per unit before the run fails.
    max_task_attempts: usize,
    /// Panics one farm worker may absorb before retiring from the pool.
    worker_panic_budget: usize,
    /// Fault injection: the first `inject_panics` unit executions of each run
    /// panic (the shared-memory churn analogue of node revocation).
    inject_panics: usize,
    /// Slowdown injection: after `after_units` executions, spin `factor`×
    /// more per unit, pool-wide or on one worker (the wall-clock analogue
    /// of gridsim's external-load spike).
    slowdown: Option<SlowdownInjection>,
}

/// Parameters of [`ThreadBackend::with_slowdown_injection`] /
/// [`ThreadBackend::with_worker_slowdown_injection`].
#[derive(Debug, Clone, Copy)]
struct SlowdownInjection {
    /// Unit executions (across the pool) before the slowdown sets in.
    after_units: usize,
    /// Spin multiplier once active.
    factor: f64,
    /// Restrict the slowdown to one worker id (`None` = whole pool).
    worker: Option<usize>,
}

impl Default for ThreadBackend {
    fn default() -> Self {
        ThreadBackend::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
        )
    }
}

impl ThreadBackend {
    /// A backend with `workers` farm threads and a small default kernel
    /// scale; scheduling policy and calibration sample count come from the
    /// job's [`GraspConfig`] unless overridden.
    pub fn new(workers: usize) -> Self {
        ThreadBackend {
            workers: workers.max(1),
            policy: None,
            calibration_samples: None,
            spin_per_work_unit: 500,
            max_task_attempts: 3,
            worker_panic_budget: 3,
            inject_panics: 0,
            slowdown: None,
        }
    }

    /// Override the farm scheduling policy (otherwise `config.scheduler`).
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Apply a shared [`BackendConfig`]: the one builder every backend
    /// understands.  Unset fields keep this backend's defaults.  The
    /// `heartbeat` and `worker_bin` knobs have no thread analogue — workers
    /// share the master's address space and fate, so there is no wire to
    /// time out on and no separate binary to spawn — and are ignored.  The
    /// plan's [`FaultInjection`] is applied as by
    /// [`ThreadBackend::with_fault_injection`].
    pub fn with_config(mut self, cfg: BackendConfig) -> Self {
        if let Some(samples) = cfg.calibration_samples {
            self.calibration_samples = Some(samples);
        }
        if let Some(iters) = cfg.spin_per_work_unit {
            self.spin_per_work_unit = iters.max(1);
        }
        if let Some(attempts) = cfg.max_task_attempts {
            self.max_task_attempts = attempts.max(1);
        }
        if let Some(budget) = cfg.worker_panic_budget {
            self.worker_panic_budget = budget;
        }
        self.with_fault_injection(cfg.faults)
    }

    /// Apply a typed [`FaultInjection`] plan, replacing any previously
    /// configured injection outright (the plan is the complete description
    /// of the run's faults).  Threads realise `panics` as unit executions
    /// that panic before doing work (the shared-memory analogue of node
    /// revocation) and `slowdown` as a spin multiplier; `kill` and
    /// `join_spawn` have no thread analogue — there is no separate process
    /// to kill and no wire for late joiners — and are ignored.
    pub fn with_fault_injection(mut self, faults: FaultInjection) -> Self {
        self.inject_panics = faults.panics;
        self.slowdown = faults.slowdown.map(|s| SlowdownInjection {
            after_units: s.after_units,
            factor: s.factor.max(1.0),
            worker: s.worker,
        });
        self
    }

    /// Override how many probe tasks each farm worker executes during the
    /// calibration pass (0 disables it; otherwise
    /// `config.calibration.samples_per_node`).
    #[deprecated(note = "use with_config(BackendConfig::new().calibration_samples(n))")]
    pub fn with_calibration_samples(mut self, samples: usize) -> Self {
        self.calibration_samples = Some(samples);
        self
    }

    /// Override how many spin iterations one declared work unit costs
    /// (lower = faster tests, higher = more realistic load).
    #[deprecated(note = "use with_config(BackendConfig::new().spin_per_work_unit(iters))")]
    pub fn with_spin_per_work_unit(mut self, iters: u64) -> Self {
        self.spin_per_work_unit = iters.max(1);
        self
    }

    /// Override how many times one unit may be attempted before the run
    /// fails with [`GraspError::WorkerFailed`] (clamped to ≥ 1; default 3).
    #[deprecated(note = "use with_config(BackendConfig::new().max_task_attempts(n))")]
    pub fn with_max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Override how many panics one farm worker may absorb before it
    /// retires from the pool (see `ThreadFarm::with_worker_panic_budget`;
    /// the last active worker never retires).
    #[deprecated(note = "use with_config(BackendConfig::new().worker_panic_budget(n))")]
    pub fn with_worker_panic_budget(mut self, budget: usize) -> Self {
        self.worker_panic_budget = budget;
        self
    }

    /// Inject worker faults: the first `panics` unit executions of each run
    /// panic before doing any work.  This is the shared-memory analogue of a
    /// grid node being revoked mid-task — the backend must isolate the
    /// panics, retry the units on surviving workers and report the recovery
    /// in the outcome's [`ResilienceReport`].  Intended for churn
    /// experiments and fault-path tests; 0 (the default) disables injection.
    #[deprecated(note = "use with_fault_injection(FaultInjection::none().panics(n))")]
    pub fn with_panic_injection(mut self, panics: usize) -> Self {
        self.inject_panics = panics;
        self
    }

    /// Inject a mid-run **pool-wide slowdown**: after `after_units` unit
    /// executions (across all workers), every unit costs `factor`× the
    /// spin — the wall-clock analogue of gridsim's external-load spike
    /// hitting the whole pool.  Algorithm 2 should respond with a
    /// recalibration (`min T > Z`).  Intended for experiments and tests.
    #[deprecated(
        note = "use with_fault_injection(FaultInjection::none().slowdown(after_units, factor))"
    )]
    pub fn with_slowdown_injection(mut self, after_units: usize, factor: f64) -> Self {
        self.slowdown = Some(SlowdownInjection {
            after_units,
            factor: factor.max(1.0),
            worker: None,
        });
        self
    }

    /// Inject a mid-run slowdown on **one worker**: after `after_units`
    /// unit executions (across the pool), units executed by `worker` cost
    /// `factor`× the spin — the analogue of one grid node degrading.
    /// Algorithm 2 should respond by demoting that worker.
    #[deprecated(
        note = "use with_fault_injection(FaultInjection::none().worker_slowdown(worker, after_units, factor))"
    )]
    pub fn with_worker_slowdown_injection(
        mut self,
        worker: usize,
        after_units: usize,
        factor: f64,
    ) -> Self {
        self.slowdown = Some(SlowdownInjection {
            after_units,
            factor: factor.max(1.0),
            worker: Some(worker),
        });
        self
    }

    /// Number of farm worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn iters_for(&self, work: f64) -> u64 {
        (work.max(0.0) * self.spin_per_work_unit as f64).round() as u64
    }
}

/// The wall-clock driver of the shared [`AdaptationEngine`] for farm runs:
/// workers report per-work-unit times through [`ThreadAdaptation::report`],
/// which treats the first `calib_target` observations as the Algorithm-1
/// calibration sample (deriving *Z*), feeds later observations to the
/// engine and the gridmon forecasters, and applies the engine's directives
/// — demotion through the [`WorkerGate`], whole-pool breaches through a
/// fresh re-calibration sample.
struct ThreadAdaptation {
    engine: Mutex<AdaptationEngine>,
    clock: WallClock,
    gate: Arc<WorkerGate>,
    /// Published per-worker calibration ranks: refreshed from the engine's
    /// live window on every monitor flush, read lock-free by the farm's
    /// work-stealing dispatch (owner chunk weighting, victim selection).
    ranks: Arc<RankTable>,
    /// gridmon plumbing: per-worker wall observations → forecasters.
    registry: Mutex<MonitorRegistry>,
    /// Normalised times of the calibration prefix (arms the engine when
    /// `calib_target` observations have been collected).
    calib: Mutex<Vec<f64>>,
    calib_target: usize,
    armed: AtomicBool,
    /// Best calibrated per-work-unit time as f64 bits (written once when
    /// the engine arms) — the load-estimate baseline.
    baseline_bits: AtomicU64,
    /// Per-worker observation accumulators since the last flush:
    /// `(sum of normalised times, count)`.  Each worker only ever touches
    /// its own buffer, so the per-unit hot path takes **no shared lock** —
    /// exactly the discipline PR 3 established for chunk weighting.  The
    /// engine and registry locks are taken once per monitor interval, by
    /// whichever worker wins the `next_due_micros` race.
    buffers: Vec<Mutex<(f64, usize)>>,
    /// Wall microseconds (on `clock`) when the next evaluation is due —
    /// the hot path's lock-free gate.
    next_due_micros: AtomicU64,
    interval_micros: u64,
    min_active: usize,
    workers: usize,
}

impl ThreadAdaptation {
    fn new(exec: &ExecutionConfig, workers: usize, calib_target: usize) -> Self {
        ThreadAdaptation {
            // Armed with an empty reference sample: Z stays infinite until
            // the calibration prefix completes, so nothing can fire early.
            engine: Mutex::new(AdaptationEngine::for_executors(
                exec,
                &[],
                gridsim::SimTime::ZERO,
            )),
            clock: WallClock::start(),
            gate: Arc::new(WorkerGate::new(workers)),
            ranks: Arc::new(RankTable::new(workers)),
            registry: Mutex::new(MonitorRegistry::new(NodeId(0), 64)),
            calib: Mutex::new(Vec::with_capacity(calib_target)),
            calib_target: calib_target.max(1),
            armed: AtomicBool::new(false),
            baseline_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            buffers: (0..workers).map(|_| Mutex::new((0.0, 0))).collect(),
            next_due_micros: AtomicU64::new(u64::MAX),
            interval_micros: (exec.monitor_interval_s * 1e6).max(1.0) as u64,
            min_active: exec.min_active_nodes.max(1),
            workers,
        }
    }

    /// Worker-side report of one completed unit: `work` declared units took
    /// `elapsed_s` wall seconds on worker `wid`.
    ///
    /// Hot path: one uncontended per-worker mutex plus one atomic load.
    /// Once per monitor interval a single worker flushes every buffer into
    /// the engine (the monitor evaluates per-interval per-worker *means*,
    /// so buffering the interval's observations into one mean per worker is
    /// the same table *T* the verdict would have computed) and applies the
    /// resulting directives.
    fn report(&self, wid: usize, work: f64, elapsed_s: f64, job_has_work: bool) {
        // Unit selection mirrors the simulated farm: per-work-unit times
        // when the job has real work (zero-work units carry no signal in
        // that unit), raw seconds for an all-zero-work job.
        if work <= 0.0 && job_has_work {
            return;
        }
        let t_norm = if work > 0.0 {
            elapsed_s / work
        } else {
            elapsed_s
        };
        let now = self.clock.now();
        if !self.armed.load(Ordering::Acquire) {
            // Algorithm 1: the first `calib_target` observations are the
            // calibration sample; completing it derives Z and starts the
            // monitor interval.
            let mut calib = self.calib.lock();
            if !self.armed.load(Ordering::Acquire) {
                calib.push(t_norm);
                if calib.len() >= self.calib_target {
                    self.engine.lock().calibrate(&calib, now);
                    let best = calib.iter().copied().fold(f64::INFINITY, f64::min);
                    self.baseline_bits.store(best.to_bits(), Ordering::Relaxed);
                    self.next_due_micros
                        .store(Self::micros(now) + self.interval_micros, Ordering::Relaxed);
                    self.armed.store(true, Ordering::Release);
                }
                return;
            }
        }
        {
            let mut buf = self.buffers[wid].lock();
            buf.0 += t_norm;
            buf.1 += 1;
        }
        // Lock-free due gate; the compare-exchange elects exactly one
        // flusher per interval.
        let now_micros = Self::micros(now);
        let due = self.next_due_micros.load(Ordering::Relaxed);
        if now_micros < due
            || self
                .next_due_micros
                .compare_exchange(
                    due,
                    now_micros + self.interval_micros,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_err()
        {
            return;
        }
        let mut engine = self.engine.lock();
        // Flush every worker's buffered interval mean into the engine and
        // the gridmon forecasters (the slowdown relative to the calibrated
        // baseline becomes the load estimate).
        let baseline = f64::from_bits(self.baseline_bits.load(Ordering::Relaxed));
        let mut registry = self.registry.lock();
        for (w, buffer) in self.buffers.iter().enumerate() {
            let (sum, count) = std::mem::take(&mut *buffer.lock());
            if count > 0 {
                let mean = sum / count as f64;
                engine.observe(NodeId(w), mean);
                registry.record(NodeObservation::from_wall_times(
                    NodeId(w),
                    now,
                    baseline,
                    mean,
                ));
            }
        }
        drop(registry);
        // Publish the refreshed calibration ranks (the engine's live
        // per-node means) before the evaluation clears the window, so the
        // stealing dispatcher steers by this interval's observations.
        for (node, mean) in engine.rank_snapshot() {
            self.ranks.set(node.index(), mean);
        }
        if let Some(poll) = engine.poll(now) {
            for directive in &poll.directives {
                match directive {
                    AdaptationDirective::DemoteExecutor {
                        executor,
                        recent_mean,
                    } => {
                        let w = executor.index();
                        // The pool floor mirrors the sim farm's gating and
                        // counts every worker no longer pulling — demoted
                        // here or retired by the farm after panics.  A
                        // retirement landing between this check and the
                        // demote can undershoot the floor by one (the
                        // flags are written by concurrently panicking
                        // workers; closing that window would need a lock
                        // shared with the farm's fault path) — the hard
                        // liveness guarantee is the gate's own last-active-
                        // worker rule, which never stops the final puller.
                        if self.workers - self.gate.inactive_count() > self.min_active
                            && self.gate.demote(w)
                        {
                            engine.note_demoted(now, *executor, *recent_mean, &poll.verdict);
                        }
                    }
                    AdaptationDirective::Recalibrate => {
                        // No load model to consult on real threads: take a
                        // real re-calibration sample instead — the next
                        // fresh interval re-bases Z.  The logged chosen set
                        // is the workers still pulling: neither demoted nor
                        // panic-retired.
                        let chosen = (0..self.workers)
                            .filter(|w| !self.gate.is_inactive(*w))
                            .map(NodeId)
                            .collect();
                        engine.begin_resample(now, chosen, &poll.verdict);
                    }
                    AdaptationDirective::RemapStage { .. } => {}
                    // Speculation is pull-driven here: idle farm workers ask
                    // the engine directly through the [`SpeculationPolicy`]
                    // bridge, so a poll-emitted directive has nothing left
                    // to do.
                    AdaptationDirective::Speculate { .. } => {}
                }
            }
        }
    }

    /// Microseconds of a clock stamp (saturating; the run is far shorter
    /// than the ~584-millennium overflow horizon).
    fn micros(t: gridsim::SimTime) -> u64 {
        (t.as_secs() * 1e6) as u64
    }

    /// Per-worker external-load forecast (see
    /// [`OutcomeDetail::ThreadFarm`]'s `load_per_worker`).
    fn load_per_worker(&self) -> Vec<f64> {
        let registry = self.registry.lock();
        (0..self.workers)
            // A load is a fraction by definition; the forecast is clamped
            // accordingly (predictors may overshoot slightly on trends).
            .map(|w| {
                registry
                    .forecast_cpu_load(NodeId(w))
                    .unwrap_or(0.0)
                    .clamp(0.0, 1.0)
            })
            .collect()
    }

    fn into_log(self) -> AdaptationLog {
        self.engine.into_inner().into_log()
    }
}

/// The farm asks the engine before duplicating a straggler, and reports
/// launches/wins back so the run's [`AdaptationLog`] records them — the
/// Speculate directive routed through the same decision point as demotion
/// and recalibration.
impl SpeculationPolicy for ThreadAdaptation {
    fn allow(&self, in_flight: usize, total: usize) -> bool {
        self.engine
            .lock()
            .maybe_speculate(in_flight, total)
            .is_some()
    }

    fn note_launched(&self, unit: usize, worker: usize) {
        let now = self.clock.now();
        self.engine
            .lock()
            .note_speculated(now, unit, NodeId(worker));
    }

    fn note_win(&self, unit: usize, worker: usize) {
        let now = self.clock.now();
        self.engine
            .lock()
            .note_speculation_won(now, unit, NodeId(worker));
    }
}

/// A skeleton bound to the thread backend, ready to execute.
#[derive(Debug, Clone)]
pub struct ThreadCompiled {
    plan: ThreadPlan,
    kind: grasp_core::SkeletonKind,
}

#[derive(Debug, Clone)]
enum ThreadPlan {
    /// Flat unit list (global id, declared work) plus the composition spans.
    Farm {
        units: Vec<(usize, f64)>,
        spans: Vec<UnitSpan>,
    },
    /// Raw stages with their replica counts and the stream length.
    Pipeline {
        stages: Vec<StageSpec>,
        replicas: Vec<usize>,
        items: usize,
    },
}

impl Backend for ThreadBackend {
    type Compiled = ThreadCompiled;

    fn name(&self) -> &'static str {
        "threads"
    }

    fn compile(
        &self,
        config: &GraspConfig,
        skeleton: &Skeleton,
    ) -> Result<Self::Compiled, GraspError> {
        config.validate()?;
        skeleton.validate()?;
        let plan = match skeleton.pipeline_plan() {
            Some((stages, replicas, items)) => ThreadPlan::Pipeline {
                stages,
                replicas,
                items,
            },
            None => {
                let (tasks, spans) = skeleton.lower_to_farm();
                ThreadPlan::Farm {
                    units: tasks.iter().map(|t| (t.id, t.work)).collect(),
                    spans,
                }
            }
        };
        Ok(ThreadCompiled {
            plan,
            kind: skeleton.kind(),
        })
    }

    fn execute(
        &self,
        config: &GraspConfig,
        compiled: &Self::Compiled,
    ) -> Result<SkeletonOutcome, GraspError> {
        let policy = self.policy.unwrap_or(config.scheduler);
        // Fault-injection budget for this run: the first `inject_panics`
        // unit executions panic before doing any work.
        let injector = Arc::new(AtomicUsize::new(self.inject_panics));
        let maybe_inject = move |injector: &AtomicUsize| {
            if injector
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                .is_ok()
            {
                panic!("injected worker fault (churn analogue)");
            }
        };
        match &compiled.plan {
            ThreadPlan::Farm { units, spans } => {
                let samples = self
                    .calibration_samples
                    .unwrap_or(config.calibration.samples_per_node);
                // The shared Algorithm-2 loop: the first `workers × samples`
                // completed units are the calibration sample (they execute
                // inside the job, exactly as on the grid); without a
                // calibration sample there is no Z, hence no engine.
                let job_has_work = units.iter().any(|&(_, w)| w > 0.0);
                let adaptation = (config.execution.adaptive && samples > 0).then(|| {
                    Arc::new(ThreadAdaptation::new(
                        &config.execution,
                        self.workers,
                        self.workers * samples,
                    ))
                });
                let mut farm = ThreadFarm::new(self.workers)
                    .with_policy(policy)
                    .with_calibration_samples(samples)
                    .with_max_task_attempts(self.max_task_attempts)
                    .with_worker_panic_budget(self.worker_panic_budget);
                if let Some(driver) = &adaptation {
                    farm = farm
                        .with_gate(Arc::clone(&driver.gate))
                        .with_rank_table(Arc::clone(&driver.ranks));
                    // Tail speculation routes through the engine: idle
                    // workers consult `maybe_speculate` before duplicating
                    // an in-flight straggler.
                    if config.execution.speculate_tail_fraction > 0.0 {
                        farm =
                            farm.with_speculation(Arc::clone(driver) as Arc<dyn SpeculationPolicy>);
                    }
                }
                let run_start = std::time::Instant::now();
                // Declared work per worker: the outcome reports it so
                // experiments can judge schedule balance on any hardware
                // (see `OutcomeDetail::ThreadFarm`).  One atomic per worker
                // (micro-work-units) keeps the accounting off the task hot
                // path — no shared lock.  Credited through the farm's record
                // hook, not in the task closure: under speculation the
                // closure also runs for losing copies, and a superseded
                // straggler must not be charged to its worker.
                let work_acc: Arc<Vec<AtomicU64>> =
                    Arc::new((0..self.workers).map(|_| AtomicU64::new(0)).collect());
                {
                    let work_acc = Arc::clone(&work_acc);
                    let unit_works: Vec<f64> = units.iter().map(|&(_, w)| w).collect();
                    farm = farm.with_record_hook(Arc::new(move |wid, index| {
                        work_acc[wid]
                            .fetch_add((unit_works[index] * 1e6) as u64, Ordering::Relaxed);
                    }));
                }
                let executed_units = AtomicUsize::new(0);
                let (results, stats) = farm.try_run_indexed(units, |wid, &(id, work)| {
                    maybe_inject(&injector);
                    let mut iters = self.iters_for(work);
                    if let Some(slow) = &self.slowdown {
                        let n = executed_units.fetch_add(1, Ordering::Relaxed);
                        if n >= slow.after_units && slow.worker.map_or(true, |w| w == wid) {
                            iters = (iters as f64 * slow.factor).round() as u64;
                        }
                    }
                    let t0 = std::time::Instant::now();
                    spin(iters);
                    if let Some(driver) = &adaptation {
                        driver.report(wid, work, t0.elapsed().as_secs_f64(), job_has_work);
                    }
                    (id, run_start.elapsed().as_secs_f64())
                })?;
                let work_per_worker: Vec<f64> = work_acc
                    .iter()
                    .map(|a| a.load(Ordering::Relaxed) as f64 / 1e6)
                    .collect();
                // The farm holds the only other handle on the driver (its
                // speculation policy); dropping it lets the driver unwrap
                // so the engine's log can be consumed.
                drop(farm);
                let (load_per_worker, adaptation_log) = match adaptation {
                    Some(driver) => {
                        let load = driver.load_per_worker();
                        let driver = Arc::try_unwrap(driver)
                            .ok()
                            .expect("the dropped farm held the last other driver handle");
                        (load, driver.into_log())
                    }
                    None => (vec![0.0; self.workers], AdaptationLog::new()),
                };
                let makespan_s = stats.total.as_secs_f64();
                // Sparse id → wall-clock completion table: leaf farms keep
                // their original (possibly arbitrary) ids, so no dense
                // max-id-sized buffer.  Spans share it via the same helper
                // the simulated backend uses.
                let completions: std::collections::BTreeMap<usize, f64> =
                    results.iter().copied().collect();
                let mut unit_ids: Vec<usize> = results.iter().map(|&(id, _)| id).collect();
                unit_ids.sort_unstable();
                Ok(SkeletonOutcome {
                    kind: compiled.kind,
                    completed: unit_ids.len(),
                    unit_ids,
                    makespan_s,
                    calibration_s: stats.calibration.as_secs_f64(),
                    adaptation_log,
                    resilience: ResilienceReport {
                        // Each caught panic hands the task back to the pool…
                        requeued_tasks: stats.panics,
                        // …and each retried task eventually completed again.
                        retried_tasks: stats.retried,
                        migrated_stages: 0,
                        nodes_lost: stats.workers_lost,
                        speculated_units: stats.speculated_units,
                        speculation_wins: stats.speculation_wins,
                    },
                    children: spans.iter().map(|s| s.outcome_from(&completions)).collect(),
                    detail: OutcomeDetail::ThreadFarm {
                        workers: stats.workers,
                        tasks_per_worker: stats.tasks_per_worker.clone(),
                        work_per_worker,
                        load_per_worker,
                        steals_attempted: stats.steals_attempted,
                        steals_completed: stats.steals_completed,
                        units_stolen: stats.units_stolen,
                    },
                })
            }
            ThreadPlan::Pipeline {
                stages,
                replicas,
                items,
            } => {
                let mut pipeline: ThreadPipeline<usize> = ThreadPipeline::new()
                    .with_max_task_attempts(self.max_task_attempts)
                    // The shared stage-mode loop: probe-calibrated Zₛ per
                    // stage, breach → standby replica (a no-op when the
                    // config disables adaptation).
                    .with_adaptation(config.execution);
                if config.execution.migrate_stages {
                    // Stream items are indices: the checkpoint codec is one
                    // u64 through the wire payload format, and a breach
                    // re-homes the stage instead of replicating it.
                    pipeline = pipeline.with_migration(
                        |x, w| w.put_u64(*x as u64),
                        |r| r.take_u64().map(|v| v as usize),
                    );
                }
                for (stage, &r) in stages.iter().zip(replicas) {
                    let iters = self.iters_for(stage.work_per_item);
                    let injector = Arc::clone(&injector);
                    let f = move |x: usize| {
                        maybe_inject(&injector);
                        spin(iters);
                        x
                    };
                    pipeline = if r > 1 {
                        pipeline.stage_replicated(f, r)
                    } else {
                        pipeline.stage(f)
                    };
                }
                let (out, stats) = pipeline.try_run((0..*items).collect())?;
                let mut unit_ids = out;
                unit_ids.sort_unstable();
                Ok(SkeletonOutcome {
                    kind: compiled.kind,
                    completed: unit_ids.len(),
                    unit_ids,
                    makespan_s: stats.total.as_secs_f64(),
                    calibration_s: 0.0,
                    adaptation_log: stats.adaptation.clone(),
                    resilience: ResilienceReport {
                        requeued_tasks: 0,
                        retried_tasks: stats.retried,
                        migrated_stages: stats.adaptation.stage_migrations(),
                        nodes_lost: 0,
                        speculated_units: 0,
                        speculation_wins: 0,
                    },
                    children: Vec::new(),
                    detail: OutcomeDetail::ThreadPipeline {
                        bottleneck_stage: stats.bottleneck_stage,
                        replicas_per_stage: stats.replicas_per_stage.clone(),
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_core::{Grasp, SkeletonKind, TaskSpec};

    fn fast_backend() -> ThreadBackend {
        ThreadBackend::new(3).with_config(BackendConfig::new().spin_per_work_unit(1))
    }

    fn lane(items: usize) -> Skeleton {
        Skeleton::pipeline(StageSpec::balanced(3, 4.0, 1024), items)
    }

    #[test]
    fn farm_skeleton_completes_every_unit_exactly_once() {
        let skeleton = Skeleton::farm(TaskSpec::uniform(50, 2.0, 0, 0));
        let report = Grasp::new(GraspConfig::default())
            .run(&fast_backend(), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.completed, 50);
        assert_eq!(report.outcome.unit_ids, (0..50).collect::<Vec<_>>());
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert!(matches!(
            report.outcome.detail,
            OutcomeDetail::ThreadFarm { workers: 3, .. }
        ));
    }

    #[test]
    fn nested_farm_of_pipelines_runs_on_threads() {
        let skeleton = Skeleton::farm_of(vec![
            lane(8),
            Skeleton::farm(TaskSpec::uniform(5, 1.0, 0, 0)),
            lane(8),
        ]);
        let report = Grasp::new(GraspConfig::default())
            .run(&fast_backend(), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.kind, SkeletonKind::FarmOfPipelines);
        assert_eq!(report.outcome.completed, 21);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert_eq!(report.outcome.children.len(), 3);
        assert_eq!(report.outcome.children[1].completed, 5);
        // Child makespans are each child's own last completion, bounded by
        // the whole run — not a copy of the parent's.
        for c in &report.outcome.children {
            assert!(c.makespan_s > 0.0);
            assert!(c.makespan_s <= report.outcome.makespan_s);
        }
    }

    #[test]
    fn job_config_drives_policy_and_calibration_unless_overridden() {
        let skeleton = Skeleton::farm(TaskSpec::uniform(30, 1.0, 0, 0));
        // Config with calibration disabled: the backend must honour it.
        let mut cfg = GraspConfig::default();
        cfg.calibration.samples_per_node = 0;
        cfg.scheduler = grasp_core::SchedulePolicy::SelfScheduling;
        let report = Grasp::new(cfg)
            .run(
                &ThreadBackend::new(2).with_config(BackendConfig::new().spin_per_work_unit(1)),
                &skeleton,
            )
            .unwrap();
        assert_eq!(report.outcome.calibration_s, 0.0);
        assert_eq!(report.outcome.completed, 30);
        // An explicit backend override wins over the config.
        let report = Grasp::new(cfg)
            .run(
                &ThreadBackend::new(2).with_config(
                    BackendConfig::new()
                        .spin_per_work_unit(1)
                        .calibration_samples(2),
                ),
                &skeleton,
            )
            .unwrap();
        assert!(report.outcome.calibration_s >= 0.0);
        assert_eq!(report.outcome.completed, 30);
    }

    #[test]
    fn pipeline_of_farms_replicates_the_farmed_stage() {
        use grasp_core::FarmedStage;
        let skeleton = Skeleton::pipeline_of(
            vec![
                FarmedStage::plain(StageSpec::new(0, 1.0, 0, 0)),
                FarmedStage::farmed(StageSpec::new(1, 8.0, 0, 0), 3),
            ],
            30,
        );
        let report = Grasp::new(GraspConfig::default())
            .run(&fast_backend(), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.kind, SkeletonKind::PipelineOfFarms);
        assert_eq!(report.outcome.completed, 30);
        match &report.outcome.detail {
            OutcomeDetail::ThreadPipeline {
                replicas_per_stage, ..
            } => assert_eq!(replicas_per_stage, &vec![1, 3]),
            other => panic!("unexpected detail {other:?}"),
        }
    }

    #[test]
    fn invalid_expressions_are_rejected_at_compile_time() {
        let backend = fast_backend();
        let cfg = GraspConfig::default();
        assert!(backend.compile(&cfg, &Skeleton::farm(vec![])).is_err());
        assert!(backend
            .compile(
                &cfg,
                &Skeleton::farm_of(vec![Skeleton::pipeline(vec![], 4)])
            )
            .is_err());
    }

    #[test]
    fn default_backend_uses_available_parallelism() {
        assert!(ThreadBackend::default().workers() >= 1);
    }

    #[test]
    fn injected_farm_panics_are_survived_and_reported() {
        let skeleton = Skeleton::farm(TaskSpec::uniform(40, 2.0, 0, 0));
        let backend = fast_backend().with_fault_injection(FaultInjection::none().panics(2));
        let report = Grasp::new(GraspConfig::default())
            .run(&backend, &skeleton)
            .expect("injected panics must not fail the run");
        assert_eq!(report.outcome.completed, 40);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert!(report.outcome.resilience.retried_tasks >= 1);
        assert!(report.outcome.resilience.requeued_tasks >= 1);
        assert!(!report.outcome.resilience.is_clean());
    }

    #[test]
    fn injected_pipeline_panics_are_survived_and_reported() {
        let skeleton = lane(12);
        let backend = fast_backend()
            .with_config(BackendConfig::new().max_task_attempts(4))
            .with_fault_injection(FaultInjection::none().panics(1));
        let report = Grasp::new(GraspConfig::default())
            .run(&backend, &skeleton)
            .expect("injected stage panic must not fail the run");
        assert_eq!(report.outcome.completed, 12);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert!(report.outcome.resilience.retried_tasks >= 1);
    }

    #[test]
    fn short_runs_and_disabled_adaptation_keep_the_log_empty() {
        // Under the default 5 s wall monitor interval a sub-second run never
        // reaches an evaluation, so the engine is inert noise-wise…
        let skeleton = Skeleton::farm(TaskSpec::uniform(40, 2.0, 0, 0));
        let report = Grasp::new(GraspConfig::default())
            .run(&fast_backend(), &skeleton)
            .unwrap();
        assert!(report.outcome.adaptation_log.is_empty());
        assert_eq!(report.outcome.adaptations(), 0);
        match &report.outcome.detail {
            OutcomeDetail::ThreadFarm {
                load_per_worker, ..
            } => assert_eq!(load_per_worker.len(), 3),
            other => panic!("unexpected detail {other:?}"),
        }
        // …and the master switch disables it outright.
        let mut cfg = GraspConfig::default();
        cfg.execution.adaptive = false;
        cfg.execution.monitor_interval_s = 1e-4;
        let report = Grasp::new(cfg).run(&fast_backend(), &skeleton).unwrap();
        assert!(report.outcome.adaptation_log.is_empty());
    }

    #[test]
    fn pool_wide_slowdown_triggers_a_recalibration_sample() {
        // The wall-clock acceptance path of the shared engine: every worker
        // slows 40x mid-run (the thread analogue of a whole-pool load
        // spike), so `min T > Z` must fire and re-base Z from a fresh
        // sample — visible as a `Recalibrated` entry in the outcome's
        // adaptation log, exactly as on the simulated grid.
        let skeleton = Skeleton::farm(TaskSpec::uniform(260, 4.0, 0, 0));
        let backend = ThreadBackend::new(3).with_config(
            BackendConfig::new()
                .spin_per_work_unit(2_000)
                .faults(FaultInjection::none().slowdown(20, 40.0)),
        );
        let mut cfg = GraspConfig::default();
        cfg.execution.monitor_interval_s = 2e-3; // wall seconds
        let report = Grasp::new(cfg)
            .run(&backend, &skeleton)
            .expect("slowdown must not fail the run");
        assert_eq!(report.outcome.completed, 260);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert!(
            report.outcome.adaptation_log.recalibrations() >= 1,
            "the pool-wide breach must recalibrate: {}",
            report.outcome.adaptation_log.summary()
        );
        assert_eq!(
            report.outcome.adaptations(),
            report.outcome.adaptation_log.len()
        );
    }

    #[test]
    fn exhausted_retries_surface_as_worker_failed() {
        // More injected faults than `units × (attempts − 1)` can absorb: some
        // unit must fail every attempt, and the error must be typed, not a
        // process abort.
        let skeleton = Skeleton::farm(TaskSpec::uniform(4, 1.0, 0, 0));
        let backend = ThreadBackend::new(2).with_config(
            BackendConfig::new()
                .spin_per_work_unit(1)
                .max_task_attempts(2)
                .faults(FaultInjection::none().panics(1000)),
        );
        let err = Grasp::new(GraspConfig::default())
            .run(&backend, &skeleton)
            .expect_err("saturated fault injection must fail the run");
        assert!(matches!(err, GraspError::WorkerFailed { .. }), "{err}");
    }
}
