//! A lock-free steal deque over a contiguous index range.
//!
//! The farm's work-stealing mode gives every worker a local deque seeded
//! from a one-shot partition of the task range.  Because tasks are plain
//! indices, a worker's whole deque is just the not-yet-claimed sub-range
//! `[bottom, top)` — which fits in a single `AtomicU64` (`bottom` in the low
//! 32 bits, `top` in the high 32).  Both the owner's pop-from-the-bottom and
//! a thief's steal-from-the-top are one CAS on that word, so the structure
//! is linearizable, allocation-free, safe code, and lock-free: a failed CAS
//! means somebody else made progress.
//!
//! This is the THE-protocol idea (Arora–Blumofe–Plaxton and its successors)
//! specialised to range tasks: instead of a fence-synchronised owner fast
//! path over an array, the packed word makes owner/thief overlap impossible
//! by construction — a CAS that would hand the same index to both sides
//! cannot succeed twice.  Thieves take the top *half* of the remaining
//! range and never touch a deque shorter than two, so the lone last task
//! always stays with its owner.

use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum index (exclusive) a [`StealDeque`] can hold.
///
/// Ranges are packed as two 32-bit halves of one atomic word; the E15 scale
/// smoke peaks at one million units, five hundred times below this bound.
pub const MAX_RANGE: usize = u32::MAX as usize;

/// A single worker's deque of task indices: the contiguous range
/// `[bottom, top)` packed into one atomic word.
///
/// The **owner** pops chunks from the bottom with [`StealDeque::take_bottom`];
/// **thieves** remove the top half with [`StealDeque::steal_top_half`].
/// Demotion and retirement drain the whole remainder at once with
/// [`StealDeque::drain_all`] so the tasks re-enter circulation.
#[derive(Debug)]
pub struct StealDeque {
    /// `top << 32 | bottom`; empty when `bottom >= top`.
    range: AtomicU64,
}

fn pack(bottom: usize, top: usize) -> u64 {
    debug_assert!(bottom <= top && top <= MAX_RANGE);
    ((top as u64) << 32) | bottom as u64
}

fn unpack(word: u64) -> (usize, usize) {
    ((word & 0xFFFF_FFFF) as usize, (word >> 32) as usize)
}

impl StealDeque {
    /// A deque seeded with the task range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > `[`MAX_RANGE`].
    pub fn new(start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= MAX_RANGE,
            "invalid deque range [{start}, {end})"
        );
        StealDeque {
            range: AtomicU64::new(pack(start, end)),
        }
    }

    /// An empty deque.
    pub fn empty() -> Self {
        StealDeque::new(0, 0)
    }

    /// Tasks still in the deque (a racy snapshot, exact only to its owner).
    pub fn len(&self) -> usize {
        let (bottom, top) = unpack(self.range.load(Ordering::Acquire));
        top.saturating_sub(bottom)
    }

    /// Whether the deque is empty (racy snapshot, like [`StealDeque::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner fast path: claim up to `want` tasks from the **bottom**.
    ///
    /// Returns the claimed sub-range `(start, count)`, or `None` when the
    /// deque is empty (a thief may have emptied it since the owner last
    /// looked).  Lock-free: retries its CAS only when a concurrent steal
    /// succeeded, i.e. when someone made progress.
    pub fn take_bottom(&self, want: usize) -> Option<(usize, usize)> {
        if want == 0 {
            return None;
        }
        let mut word = self.range.load(Ordering::Acquire);
        loop {
            let (bottom, top) = unpack(word);
            if bottom >= top {
                return None;
            }
            let count = want.min(top - bottom);
            match self.range.compare_exchange_weak(
                word,
                pack(bottom + count, top),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((bottom, count)),
                Err(seen) => word = seen,
            }
        }
    }

    /// Thief path: steal the **top half** of the deque.
    ///
    /// Returns the stolen sub-range `(start, count)`, or `None` when fewer
    /// than two tasks remain — the last task is never stolen, so the owner
    /// can always finish what it started without contending for it.
    pub fn steal_top_half(&self) -> Option<(usize, usize)> {
        let mut word = self.range.load(Ordering::Acquire);
        loop {
            let (bottom, top) = unpack(word);
            let share = grasp_core::scheduler::SchedulePolicy::steal_share(top - bottom);
            if share == 0 {
                return None;
            }
            match self.range.compare_exchange_weak(
                word,
                pack(bottom, top - share),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((top - share, share)),
                Err(seen) => word = seen,
            }
        }
    }

    /// Drain the whole remaining range (demotion / retirement): the deque
    /// becomes empty and the drained `(start, count)` re-enters circulation
    /// through the caller.  Returns `None` when already empty.
    pub fn drain_all(&self) -> Option<(usize, usize)> {
        let mut word = self.range.load(Ordering::Acquire);
        loop {
            let (bottom, top) = unpack(word);
            if bottom >= top {
                return None;
            }
            match self.range.compare_exchange_weak(
                word,
                pack(top, top),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((bottom, top - bottom)),
                Err(seen) => word = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn owner_pops_from_the_bottom_in_order() {
        let d = StealDeque::new(10, 30);
        assert_eq!(d.len(), 20);
        assert_eq!(d.take_bottom(5), Some((10, 5)));
        assert_eq!(d.take_bottom(100), Some((15, 15)), "clamped to remaining");
        assert_eq!(d.take_bottom(1), None);
        assert!(d.is_empty());
    }

    #[test]
    fn thief_takes_the_top_half_and_spares_the_last_task() {
        let d = StealDeque::new(0, 8);
        assert_eq!(d.steal_top_half(), Some((4, 4)));
        assert_eq!(d.steal_top_half(), Some((2, 2)));
        assert_eq!(d.steal_top_half(), Some((1, 1)));
        assert_eq!(d.len(), 1);
        assert_eq!(d.steal_top_half(), None, "lone last task stays home");
        assert_eq!(d.take_bottom(4), Some((0, 1)));
    }

    #[test]
    fn drain_hands_back_the_whole_remainder() {
        let d = StealDeque::new(3, 9);
        assert_eq!(d.take_bottom(2), Some((3, 2)));
        assert_eq!(d.drain_all(), Some((5, 4)));
        assert!(d.is_empty());
        assert_eq!(d.drain_all(), None);
    }

    #[test]
    fn zero_want_and_empty_deques_yield_nothing() {
        let d = StealDeque::empty();
        assert_eq!(d.take_bottom(4), None);
        assert_eq!(d.steal_top_half(), None);
        let d = StealDeque::new(5, 9);
        assert_eq!(d.take_bottom(0), None);
    }

    /// Concurrent owner + thieves: every index claimed exactly once, none
    /// lost — the conservation property the farm's `conserves_units_of`
    /// invariant rests on.
    #[test]
    fn concurrent_owner_and_thieves_partition_the_range() {
        const TOTAL: usize = 20_000;
        const THIEVES: usize = 3;
        let deque = Arc::new(StealDeque::new(0, TOTAL));
        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let deque = Arc::clone(&deque);
            handles.push(std::thread::spawn(move || {
                let mut got: Vec<(usize, usize)> = Vec::new();
                loop {
                    match deque.steal_top_half() {
                        Some(r) => got.push(r),
                        None => {
                            if deque.len() <= 1 {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
                got
            }));
        }
        // The owner pops small chunks until its deque is gone.
        let mut owned: Vec<(usize, usize)> = Vec::new();
        while let Some(r) = deque.take_bottom(3) {
            owned.push(r);
        }
        let mut claimed = vec![false; TOTAL];
        for (start, count) in handles
            .into_iter()
            .flat_map(|h| h.join().expect("thief panicked"))
            .chain(owned)
        {
            for (idx, slot) in claimed.iter_mut().enumerate().skip(start).take(count) {
                assert!(!*slot, "index {idx} claimed twice");
                *slot = true;
            }
        }
        assert!(claimed.iter().all(|&c| c), "some index was never claimed");
    }
}
