//! A real-thread task farm.
//!
//! The farm mirrors the GRASP life-cycle on shared memory:
//!
//! 1. **Calibration** — every worker thread executes a small probe sample of
//!    the real tasks; the observed per-task times establish each worker's
//!    relative speed (on an otherwise idle machine they are equal, but when
//!    the machine is shared they are not) and the initial chunk size.
//! 2. **Execution** — remaining tasks are dispensed demand-driven in chunks
//!    decided by the configured [`SchedulePolicy`]; results are written into
//!    their original slots so output order always matches input order.
//!
//! The implementation uses scoped threads and `parking_lot` mutexes only —
//! no unsafe code, no dependency on a global thread pool.

use grasp_core::SchedulePolicy;
use gridstats::mean;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Per-run statistics reported by [`ThreadFarm::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct FarmStats {
    /// Number of worker threads used.
    pub workers: usize,
    /// Tasks completed per worker.
    pub tasks_per_worker: Vec<usize>,
    /// Mean per-task execution time per worker (seconds), as measured during
    /// the run (calibration probes included).
    pub mean_task_time_per_worker: Vec<f64>,
    /// Wall-clock duration of the calibration pass.
    pub calibration: Duration,
    /// Wall-clock duration of the whole run.
    pub total: Duration,
    /// Chunk size chosen after calibration (for fixed/guided policies this is
    /// the first chunk actually dispensed).
    pub initial_chunk: usize,
}

impl FarmStats {
    /// Ratio between the busiest and least busy worker's task counts
    /// (1.0 = perfectly balanced; higher = more imbalance).
    pub fn imbalance(&self) -> f64 {
        let max = self.tasks_per_worker.iter().copied().max().unwrap_or(0) as f64;
        let min = self.tasks_per_worker.iter().copied().min().unwrap_or(0) as f64;
        if min <= 0.0 {
            max.max(1.0)
        } else {
            max / min
        }
    }
}

/// A shared-memory task farm.
#[derive(Debug, Clone)]
pub struct ThreadFarm {
    workers: usize,
    policy: SchedulePolicy,
    calibration_samples: usize,
}

impl Default for ThreadFarm {
    fn default() -> Self {
        ThreadFarm::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
        )
    }
}

impl ThreadFarm {
    /// A farm with `workers` threads and the default (adaptive) policy.
    pub fn new(workers: usize) -> Self {
        ThreadFarm {
            workers: workers.max(1),
            policy: SchedulePolicy::Guided { min_chunk: 1 },
            calibration_samples: 2,
        }
    }

    /// Override the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Override how many probe tasks each worker executes during calibration
    /// (0 disables the calibration pass).
    pub fn with_calibration_samples(mut self, samples: usize) -> Self {
        self.calibration_samples = samples;
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `worker` over every item, returning the results in input
    /// order together with run statistics.
    pub fn run<T, R, F>(&self, items: &[T], worker: F) -> (Vec<R>, FarmStats)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let started = Instant::now();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);

        if n == 0 {
            return (
                Vec::new(),
                FarmStats {
                    workers: self.workers,
                    tasks_per_worker: vec![0; self.workers],
                    mean_task_time_per_worker: vec![0.0; self.workers],
                    calibration: Duration::ZERO,
                    total: started.elapsed(),
                    initial_chunk: 0,
                },
            );
        }

        let results_slots: Vec<Mutex<&mut [Option<R>]>> =
            results.chunks_mut(1).map(Mutex::new).collect();
        // A single cursor protected by a mutex dispenses chunks; per-worker
        // bookkeeping lives behind its own lock.
        struct Shared {
            next: usize,
            total: usize,
        }
        let shared = Mutex::new(Shared { next: 0, total: n });
        let per_worker_counts: Vec<Mutex<usize>> =
            (0..self.workers).map(|_| Mutex::new(0)).collect();
        let per_worker_times: Vec<Mutex<Vec<f64>>> =
            (0..self.workers).map(|_| Mutex::new(Vec::new())).collect();
        let calibration_done = Mutex::new(Duration::ZERO);
        let initial_chunk = Mutex::new(0usize);

        let calib_samples = self.calibration_samples;
        let policy = self.policy;
        let workers = self.workers;

        std::thread::scope(|scope| {
            for wid in 0..workers {
                let shared = &shared;
                let results_slots = &results_slots;
                let per_worker_counts = &per_worker_counts;
                let per_worker_times = &per_worker_times;
                let calibration_done = &calibration_done;
                let initial_chunk = &initial_chunk;
                let worker_fn = &worker;
                scope.spawn(move || {
                    // ----------------- calibration pass -----------------
                    let calib_start = Instant::now();
                    for _ in 0..calib_samples {
                        let idx = {
                            let mut s = shared.lock();
                            if s.next >= s.total {
                                break;
                            }
                            let i = s.next;
                            s.next += 1;
                            i
                        };
                        let t0 = Instant::now();
                        let out = worker_fn(&items[idx]);
                        let dt = t0.elapsed().as_secs_f64();
                        *results_slots[idx].lock().first_mut().unwrap() = Some(out);
                        per_worker_times[wid].lock().push(dt);
                        *per_worker_counts[wid].lock() += 1;
                    }
                    if calib_samples > 0 {
                        let elapsed = calib_start.elapsed();
                        let mut cd = calibration_done.lock();
                        if elapsed > *cd {
                            *cd = elapsed;
                        }
                    }

                    // ----------------- execution pass -----------------
                    loop {
                        // Weight = pool mean time / this worker's mean time.
                        let my_mean = mean(&per_worker_times[wid].lock()).unwrap_or(0.0);
                        let pool_mean = {
                            let all: Vec<f64> = per_worker_times
                                .iter()
                                .filter_map(|m| mean(&m.lock()))
                                .collect();
                            mean(&all).unwrap_or(0.0)
                        };
                        let weight = if my_mean > 0.0 && pool_mean > 0.0 {
                            pool_mean / my_mean
                        } else {
                            1.0
                        };
                        let (start, count) = {
                            let mut s = shared.lock();
                            let remaining = s.total - s.next;
                            if remaining == 0 {
                                break;
                            }
                            let c = policy.next_chunk(remaining, workers, weight);
                            let start = s.next;
                            s.next += c;
                            (start, c)
                        };
                        {
                            let mut ic = initial_chunk.lock();
                            if *ic == 0 {
                                *ic = count;
                            }
                        }
                        for idx in start..start + count {
                            let t0 = Instant::now();
                            let out = worker_fn(&items[idx]);
                            let dt = t0.elapsed().as_secs_f64();
                            *results_slots[idx].lock().first_mut().unwrap() = Some(out);
                            per_worker_times[wid].lock().push(dt);
                            *per_worker_counts[wid].lock() += 1;
                        }
                    }
                });
            }
        });

        drop(results_slots);
        let output: Vec<R> = results
            .into_iter()
            .map(|r| r.expect("every task slot must have been filled"))
            .collect();
        let stats = FarmStats {
            workers: self.workers,
            tasks_per_worker: per_worker_counts.iter().map(|m| *m.lock()).collect(),
            mean_task_time_per_worker: per_worker_times
                .iter()
                .map(|m| mean(&m.lock()).unwrap_or(0.0))
                .collect(),
            calibration: *calibration_done.lock(),
            total: started.elapsed(),
            initial_chunk: *initial_chunk.lock(),
        };
        (output, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::spin as spin_work;

    #[test]
    fn results_preserve_input_order() {
        let farm = ThreadFarm::new(4);
        let items: Vec<u64> = (0..200).collect();
        let (out, stats) = farm.run(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 200);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let farm = ThreadFarm::new(2);
        let (out, stats) = farm.run(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 0);
    }

    #[test]
    fn single_worker_still_completes() {
        let farm = ThreadFarm::new(1).with_policy(SchedulePolicy::SelfScheduling);
        let items: Vec<u64> = (0..50).collect();
        let (out, stats) = farm.run(&items, |&x| x + 1);
        assert_eq!(out.len(), 50);
        assert_eq!(stats.tasks_per_worker, vec![50]);
        assert_eq!(stats.imbalance(), 50.0_f64.max(1.0) / 50.0);
    }

    #[test]
    fn every_policy_completes_the_workload() {
        let items: Vec<u64> = (0..300).collect();
        for policy in [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduling,
            SchedulePolicy::FixedChunk { chunk: 7 },
            SchedulePolicy::Guided { min_chunk: 2 },
            SchedulePolicy::Factoring { factor: 0.5 },
            SchedulePolicy::AdaptiveWeighted { min_chunk: 1 },
        ] {
            let farm = ThreadFarm::new(3).with_policy(policy);
            let (out, _) = farm.run(&items, |&x| spin_work(x % 64) ^ x);
            assert_eq!(out.len(), 300, "{policy:?}");
        }
    }

    #[test]
    fn calibration_can_be_disabled() {
        let farm = ThreadFarm::new(2).with_calibration_samples(0);
        let items: Vec<u64> = (0..20).collect();
        let (out, stats) = farm.run(&items, |&x| x);
        assert_eq!(out.len(), 20);
        assert_eq!(stats.calibration, Duration::ZERO);
    }

    #[test]
    fn irregular_work_is_shared_among_workers() {
        // Irregular per-item cost: demand-driven scheduling should keep every
        // worker busy (no worker should end up with almost nothing).  Items
        // are heavy enough that the workload outlives thread start-up.
        let farm = ThreadFarm::new(4).with_policy(SchedulePolicy::SelfScheduling);
        let items: Vec<u64> = (0..200).map(|i| (i % 37) * 20_000 + 5_000).collect();
        let (out, stats) = farm.run(&items, |&x| spin_work(x));
        assert_eq!(out.len(), 200);
        assert!(stats.tasks_per_worker.iter().all(|&c| c > 0));
        assert!(stats.mean_task_time_per_worker.iter().all(|&t| t >= 0.0));
        assert!(stats.total >= stats.calibration);
    }

    #[test]
    fn default_uses_available_parallelism() {
        let farm = ThreadFarm::default();
        assert!(farm.workers() >= 1);
    }
}
