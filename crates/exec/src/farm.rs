//! A real-thread task farm.
//!
//! The farm mirrors the GRASP life-cycle on shared memory:
//!
//! 1. **Calibration** — every worker thread executes a small probe sample of
//!    the real tasks; the observed per-task times establish each worker's
//!    relative speed (on an otherwise idle machine they are equal, but when
//!    the machine is shared they are not) and the initial chunk size.
//! 2. **Execution** — remaining tasks are dispensed demand-driven in chunks
//!    decided by the configured [`SchedulePolicy`]; results are written into
//!    their original slots so output order always matches input order.
//!
//! Execution is **fault-isolated**: a panic inside the user closure is caught
//! with `catch_unwind` (the shared-memory analogue of a grid node being
//! revoked mid-chunk), the failed task is requeued for a surviving worker,
//! and a worker that keeps panicking past its health budget retires from the
//! pool.  Retries are bounded per task; a task that fails every attempt turns
//! the run into a typed [`GraspError::WorkerFailed`] instead of aborting the
//! process.
//!
//! The implementation uses scoped threads, `parking_lot` mutexes and atomics
//! only — no unsafe code, no dependency on a global thread pool.  The
//! per-worker timing statistics that feed the adaptive weighted chunking are
//! kept as running sums behind atomics, so computing the pool-mean weight on
//! the dispatch hot path costs a handful of loads instead of locking every
//! worker's history.

use crate::deque::{StealDeque, MAX_RANGE};
use grasp_core::error::GraspError;
use grasp_core::SchedulePolicy;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lock-free shared view of the adaptation engine's per-worker calibration
/// ranks (mean per-unit execution times, seconds; lower = faster).
///
/// The adaptation layer publishes its latest rank snapshot here on every
/// monitor flush; the farm's work-stealing mode reads it on the dispatch
/// hot path — owner chunk sizes are weighted by `pool mean / my mean`, and
/// thieves pick the *slowest*-ranked victim.  Entries are `f64` bits in
/// atomics (`NaN` = no observation yet), so both sides stay lock-free.
#[derive(Debug)]
pub struct RankTable {
    means: Vec<AtomicU64>,
}

impl RankTable {
    /// A table for `workers` workers, all initially unranked.
    pub fn new(workers: usize) -> Self {
        RankTable {
            means: (0..workers)
                .map(|_| AtomicU64::new(f64::NAN.to_bits()))
                .collect(),
        }
    }

    /// Publish `worker`'s latest mean time (seconds).  Out-of-range ids and
    /// non-positive / non-finite values are ignored.
    pub fn set(&self, worker: usize, mean_s: f64) {
        if mean_s.is_finite() && mean_s > 0.0 {
            if let Some(m) = self.means.get(worker) {
                m.store(mean_s.to_bits(), Ordering::Relaxed);
            }
        }
    }

    /// `worker`'s latest published mean, `None` before its first rank.
    pub fn get(&self, worker: usize) -> Option<f64> {
        self.means
            .get(worker)
            .map(|m| f64::from_bits(m.load(Ordering::Relaxed)))
            .filter(|v| v.is_finite() && *v > 0.0)
    }

    /// Number of workers the table covers.
    pub fn workers(&self) -> usize {
        self.means.len()
    }
}

/// Shared per-worker demotion flags: the adaptation layer (the backend
/// driving the shared `AdaptationEngine`) sets them, the farm's pull loop
/// honours them.
///
/// Demotion is the wall-clock realisation of Algorithm 2's "drop the slow
/// node from the chosen set": a demoted worker finishes what it already
/// claimed and then stops pulling new work, so the demand-driven queue
/// naturally routes the remaining tasks to the healthy workers.  The same
/// progress guards as panic retirement apply — a worker never stops while
/// task retries are pending, and the last active worker never stops.
#[derive(Debug, Default)]
pub struct WorkerGate {
    demoted: Vec<AtomicBool>,
    /// Workers the farm retired after exhausting their panic budget.  The
    /// farm reports these so the adaptation layer's pool-floor arithmetic
    /// (`workers − inactive > min_active`) counts every worker that is no
    /// longer pulling, not just the ones it demoted itself.
    retired: Vec<AtomicBool>,
}

impl WorkerGate {
    /// A gate for `workers` workers, all initially active.
    pub fn new(workers: usize) -> Self {
        WorkerGate {
            demoted: (0..workers).map(|_| AtomicBool::new(false)).collect(),
            retired: (0..workers).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Flag `worker` as demoted.  Returns `true` when the flag was newly
    /// set (false for out-of-range ids and repeat demotions).
    pub fn demote(&self, worker: usize) -> bool {
        self.demoted
            .get(worker)
            .map(|f| !f.swap(true, Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Whether `worker` has been demoted.
    pub fn is_demoted(&self, worker: usize) -> bool {
        self.demoted
            .get(worker)
            .map(|f| f.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Farm-side report: `worker` retired after exhausting its panic budget.
    pub fn mark_retired(&self, worker: usize) {
        if let Some(f) = self.retired.get(worker) {
            f.store(true, Ordering::Relaxed);
        }
    }

    /// Whether `worker` is no longer pulling for any reason — demoted by
    /// the adaptation layer or retired by the farm after panics.
    pub fn is_inactive(&self, worker: usize) -> bool {
        self.is_demoted(worker)
            || self
                .retired
                .get(worker)
                .map(|f| f.load(Ordering::Relaxed))
                .unwrap_or(false)
    }

    /// Number of demoted workers.
    pub fn demoted_count(&self) -> usize {
        self.demoted
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// Number of workers no longer pulling for any reason — demoted by the
    /// adaptation layer or retired by the farm after panics.
    pub fn inactive_count(&self) -> usize {
        self.demoted
            .iter()
            .zip(&self.retired)
            .filter(|(d, r)| d.load(Ordering::Relaxed) || r.load(Ordering::Relaxed))
            .count()
    }
}

/// Per-run statistics reported by [`ThreadFarm::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct FarmStats {
    /// Number of worker threads used.
    pub workers: usize,
    /// Tasks completed per worker.
    pub tasks_per_worker: Vec<usize>,
    /// Mean per-task execution time per worker (seconds), as measured during
    /// the run (calibration probes included).
    pub mean_task_time_per_worker: Vec<f64>,
    /// Wall-clock duration of the calibration pass.
    pub calibration: Duration,
    /// Wall-clock duration of the whole run.
    pub total: Duration,
    /// Chunk size chosen after calibration (for fixed/guided policies this is
    /// the first chunk actually dispensed).
    pub initial_chunk: usize,
    /// Worker panics caught and isolated during the run.
    pub panics: usize,
    /// Tasks that were re-executed after a panicked attempt and completed.
    pub retried: usize,
    /// Workers retired after exhausting their panic budget.
    pub workers_lost: usize,
    /// Workers that stopped pulling after an external demotion through the
    /// [`WorkerGate`] (Algorithm 2's "drop the slow node", not a fault).
    pub workers_demoted: usize,
    /// Steal attempts made by idle workers (work-stealing policy only; a
    /// chosen victim whose deque drained first counts as attempted).
    pub steals_attempted: usize,
    /// Steal attempts that removed a non-empty range from a victim's deque.
    pub steals_completed: usize,
    /// Total task units moved between deques by completed steals.
    pub units_stolen: usize,
    /// In-flight units speculatively duplicated on idle workers near the
    /// tail (each unit at most once; demand-driven policies only).
    pub speculated_units: usize,
    /// Speculative duplicates that delivered the winning (first) result.
    pub speculation_wins: usize,
}

impl FarmStats {
    /// Ratio between the busiest and least busy worker's task counts
    /// (1.0 = perfectly balanced; higher = more imbalance).
    pub fn imbalance(&self) -> f64 {
        let max = self.tasks_per_worker.iter().copied().max().unwrap_or(0) as f64;
        let min = self.tasks_per_worker.iter().copied().min().unwrap_or(0) as f64;
        if min <= 0.0 {
            max.max(1.0)
        } else {
            max / min
        }
    }
}

/// Per-worker running statistics, updated with atomic stores only so that
/// the dispatch hot path (which reads every worker's mean to derive the
/// pool-mean weight) never takes a lock.
#[derive(Debug, Default)]
struct WorkerStat {
    /// Sum of observed task times in nanoseconds.
    sum_ns: AtomicU64,
    /// Number of timed (successful) task executions.
    count: AtomicUsize,
    /// Panics this worker has caught.
    panics: AtomicUsize,
}

impl WorkerStat {
    fn record(&self, dt: Duration) {
        self.sum_ns.fetch_add(
            dt.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean task time in seconds, `None` before the first completion.
    fn mean_s(&self) -> Option<f64> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            None
        } else {
            Some(self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9 / count as f64)
        }
    }
}

/// One unit of work pulled from the shared queue.
enum Job {
    /// A fresh contiguous chunk `[start, start + count)`.
    Chunk { start: usize, count: usize },
    /// A single requeued task on its `attempt`-th retry.
    Retry { index: usize, attempt: usize },
}

/// The shared dispensing state: a cursor over fresh tasks, the retry queue
/// fed by caught panics, the first permanently failed task (if any), and —
/// in work-stealing mode — ranges drained from demoted or retired workers'
/// deques awaiting re-circulation.
struct Queue {
    next: usize,
    total: usize,
    retries: std::collections::VecDeque<(usize, usize)>,
    failed: Option<usize>,
    reclaimed: std::collections::VecDeque<(usize, usize)>,
}

/// Decides whether an idle worker may duplicate an in-flight unit near the
/// tail, and receives the launch/win reports.
///
/// The farm consults the policy only once every fresh unit has been handed
/// out (`pending == 0`): `allow` is asked with the current in-flight count,
/// and an affirmative answer lets the idle worker duplicate **one** not-yet-
/// speculated in-flight unit (first result to land wins; the loser is
/// discarded on arrival).  The adaptation layer implements this by routing
/// the question through
/// [`grasp_core::engine::AdaptationEngine::maybe_speculate`], so speculation
/// is audited like every other adaptation.
pub trait SpeculationPolicy: Send + Sync {
    /// May one more speculative duplicate launch, with `in_flight` of
    /// `total` units still running and nothing left pending?
    fn allow(&self, in_flight: usize, total: usize) -> bool;
    /// A duplicate of unit `unit` was launched on worker `worker`.
    fn note_launched(&self, unit: usize, worker: usize);
    /// The duplicate of `unit` on `worker` delivered the winning result.
    fn note_win(&self, unit: usize, worker: usize);
}

/// A shared-memory task farm.
#[derive(Clone)]
pub struct ThreadFarm {
    workers: usize,
    policy: SchedulePolicy,
    calibration_samples: usize,
    max_task_attempts: usize,
    worker_panic_budget: usize,
    gate: Option<Arc<WorkerGate>>,
    ranks: Option<Arc<RankTable>>,
    speculation: Option<Arc<dyn SpeculationPolicy>>,
    record_hook: Option<Arc<dyn Fn(usize, usize) + Send + Sync>>,
}

impl std::fmt::Debug for ThreadFarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadFarm")
            .field("workers", &self.workers)
            .field("policy", &self.policy)
            .field("calibration_samples", &self.calibration_samples)
            .field("max_task_attempts", &self.max_task_attempts)
            .field("worker_panic_budget", &self.worker_panic_budget)
            .field("gate", &self.gate)
            .field("ranks", &self.ranks)
            .field(
                "speculation",
                &self.speculation.as_ref().map(|_| "<policy>"),
            )
            .field("record_hook", &self.record_hook.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl Default for ThreadFarm {
    fn default() -> Self {
        ThreadFarm::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
        )
    }
}

impl ThreadFarm {
    /// A farm with `workers` threads and the default (adaptive) policy.
    pub fn new(workers: usize) -> Self {
        ThreadFarm {
            workers: workers.max(1),
            policy: SchedulePolicy::Guided { min_chunk: 1 },
            calibration_samples: 2,
            max_task_attempts: 3,
            worker_panic_budget: 3,
            gate: None,
            ranks: None,
            speculation: None,
            record_hook: None,
        }
    }

    /// Attach a [`SpeculationPolicy`]: near the tail, idle workers duplicate
    /// in-flight units instead of exiting (demand-driven policies only; the
    /// work-stealing mode already rebalances its tail by stealing).
    pub fn with_speculation(mut self, policy: Arc<dyn SpeculationPolicy>) -> Self {
        self.speculation = Some(policy);
        self
    }

    /// Attach a hook called as `(worker, item_index)` each time a result is
    /// *recorded* under the first-result-wins rule.  Losing executions —
    /// a speculative duplicate beaten by its primary, or a primary superseded
    /// by its duplicate — never reach the hook, so accounting attached here
    /// counts every unit exactly once even under speculation.  (The task
    /// closure itself cannot tell: it runs before the farm resolves the
    /// race.)
    pub fn with_record_hook(mut self, hook: Arc<dyn Fn(usize, usize) + Send + Sync>) -> Self {
        self.record_hook = Some(hook);
        self
    }

    /// Attach a [`WorkerGate`] whose demotion flags the pull loop honours
    /// (see the gate's docs for the progress guards).  The caller keeps its
    /// own handle and flips flags while the run is in flight.
    pub fn with_gate(mut self, gate: Arc<WorkerGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Override the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attach a shared [`RankTable`] published by the adaptation layer.  The
    /// work-stealing mode prefers these engine calibration ranks over the
    /// farm-local running means for both owner chunk weighting and victim
    /// selection; other policies ignore the table.
    pub fn with_rank_table(mut self, ranks: Arc<RankTable>) -> Self {
        self.ranks = Some(ranks);
        self
    }

    /// Override how many probe tasks each worker executes during calibration
    /// (0 disables the calibration pass).
    pub fn with_calibration_samples(mut self, samples: usize) -> Self {
        self.calibration_samples = samples;
        self
    }

    /// Override how many times one task may be attempted before the run is
    /// declared failed (clamped to ≥ 1; the default is 3).
    pub fn with_max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Override how many panics a single worker may absorb before it retires
    /// from the pool (the last active worker never retires, so progress is
    /// preserved as long as some attempt can succeed).
    pub fn with_worker_panic_budget(mut self, budget: usize) -> Self {
        self.worker_panic_budget = budget;
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `worker` over every item, returning the results in input
    /// order together with run statistics.
    ///
    /// Panics (with the [`GraspError`] message) if a task fails on every
    /// allowed attempt; use [`ThreadFarm::try_run`] for the fallible path.
    pub fn run<T, R, F>(&self, items: &[T], worker: F) -> (Vec<R>, FarmStats)
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_run(items, worker)
            .unwrap_or_else(|e| panic!("ThreadFarm::run failed: {e}"))
    }

    /// Execute `worker` over every item, returning the results in input
    /// order together with run statistics, or a typed error when a task
    /// exhausts its retry budget.
    pub fn try_run<T, R, F>(
        &self,
        items: &[T],
        worker: F,
    ) -> Result<(Vec<R>, FarmStats), GraspError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.try_run_indexed(items, |_, item| worker(item))
    }

    /// [`ThreadFarm::try_run`] with the executing worker's index (0-based,
    /// `< self.workers()`) passed to the closure — for callers that keep
    /// per-worker accounting without a shared lock on the task hot path.
    pub fn try_run_indexed<T, R, F>(
        &self,
        items: &[T],
        worker: F,
    ) -> Result<(Vec<R>, FarmStats), GraspError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let started = Instant::now();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);

        if n == 0 {
            return Ok((
                Vec::new(),
                FarmStats {
                    workers: self.workers,
                    tasks_per_worker: vec![0; self.workers],
                    mean_task_time_per_worker: vec![0.0; self.workers],
                    calibration: Duration::ZERO,
                    total: started.elapsed(),
                    initial_chunk: 0,
                    panics: 0,
                    retried: 0,
                    workers_lost: 0,
                    workers_demoted: 0,
                    steals_attempted: 0,
                    steals_completed: 0,
                    units_stolen: 0,
                    speculated_units: 0,
                    speculation_wins: 0,
                },
            ));
        }

        let results_slots: Vec<Mutex<&mut [Option<R>]>> =
            results.chunks_mut(1).map(Mutex::new).collect();
        let queue = Mutex::new(Queue {
            next: 0,
            total: n,
            retries: std::collections::VecDeque::new(),
            failed: None,
            reclaimed: std::collections::VecDeque::new(),
        });
        let stats: Vec<WorkerStat> = (0..self.workers).map(|_| WorkerStat::default()).collect();
        let retried_total = AtomicUsize::new(0);
        let workers_lost = AtomicUsize::new(0);
        let workers_demoted = AtomicUsize::new(0);
        // Workers still pulling from the queue; the last one never retires.
        let active_workers = AtomicUsize::new(self.workers);
        let calibration_done = Mutex::new(Duration::ZERO);
        let initial_chunk = AtomicUsize::new(0);
        // Lock-free mirrors of the queue's slow-path state, so the stealing
        // owner fast path (pop own deque, execute) touches no lock at all.
        // Both pending counters are bumped *before* the backing store they
        // mirror is filled, so an idle worker's termination scan can never
        // miss in-flight work (see the steal loop's exit arm).
        let retries_pending = AtomicUsize::new(0);
        let reclaimed_pending = AtomicUsize::new(0);
        let failed_flag = AtomicBool::new(false);
        let steals_attempted = AtomicUsize::new(0);
        let steals_completed = AtomicUsize::new(0);
        let units_stolen = AtomicUsize::new(0);
        let speculated_units = AtomicUsize::new(0);
        let speculation_wins = AtomicUsize::new(0);
        // One claim flag per unit so each in-flight unit is duplicated at
        // most once (allocated only when a speculation policy is attached).
        let speculated_flags: Vec<AtomicBool> = if self.speculation.is_some() {
            (0..n).map(|_| AtomicBool::new(false)).collect()
        } else {
            Vec::new()
        };

        let calib_samples = self.calibration_samples;
        let policy = self.policy;
        let workers = self.workers;
        let max_attempts = self.max_task_attempts;
        let panic_budget = self.worker_panic_budget;
        let gate = self.gate.as_deref();
        let ranks = self.ranks.as_deref();
        let speculation = self.speculation.as_deref();
        let record_hook = self.record_hook.as_deref();

        // Work-stealing mode: seed one deque per worker from a one-shot
        // partition of the task range.  (Ranges beyond the packed 32-bit
        // bound — far past any supported workload — fall back to the
        // demand-driven queue.)
        let steal_deques: Option<Vec<StealDeque>> =
            if matches!(policy, SchedulePolicy::WorkStealing { .. }) && n <= MAX_RANGE {
                Some(
                    (0..workers)
                        .map(|w| StealDeque::new(w * n / workers, (w + 1) * n / workers))
                        .collect(),
                )
            } else {
                None
            };

        std::thread::scope(|scope| {
            for wid in 0..workers {
                let queue = &queue;
                let results_slots = &results_slots;
                let stats = &stats;
                let retried_total = &retried_total;
                let workers_lost = &workers_lost;
                let workers_demoted = &workers_demoted;
                let active_workers = &active_workers;
                let calibration_done = &calibration_done;
                let initial_chunk = &initial_chunk;
                let retries_pending = &retries_pending;
                let reclaimed_pending = &reclaimed_pending;
                let failed_flag = &failed_flag;
                let steals_attempted = &steals_attempted;
                let steals_completed = &steals_completed;
                let units_stolen = &units_stolen;
                let speculated_units = &speculated_units;
                let speculation_wins = &speculation_wins;
                let speculated_flags = &speculated_flags;
                let steal_deques = steal_deques.as_deref();
                let worker_fn = &worker;
                scope.spawn(move || {
                    // Execute one task attempt, isolating panics.  Returns
                    // `false` when the whole run must stop (task failed
                    // permanently).
                    let exec_task = |index: usize, attempt: usize| -> bool {
                        let t0 = Instant::now();
                        match catch_unwind(AssertUnwindSafe(|| worker_fn(wid, &items[index]))) {
                            Ok(out) => {
                                let dt = t0.elapsed();
                                // First result wins: under speculation a
                                // duplicate may already have filled the slot,
                                // in which case this copy is the cancelled
                                // loser — discarded, not recorded, so each
                                // unit is counted by exactly one worker.
                                let mut guard = results_slots[index].lock();
                                let slot = guard.first_mut().unwrap();
                                if slot.is_none() {
                                    *slot = Some(out);
                                    drop(guard);
                                    stats[wid].record(dt);
                                    if let Some(hook) = record_hook {
                                        hook(wid, index);
                                    }
                                    if attempt > 0 {
                                        retried_total.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                true
                            }
                            Err(_) => {
                                // A unit whose speculative duplicate already
                                // won needs no retry: the panic of the losing
                                // copy is swallowed (the unit is complete).
                                if speculation.is_some()
                                    && results_slots[index].lock().first().unwrap().is_some()
                                {
                                    return true;
                                }
                                stats[wid].panics.fetch_add(1, Ordering::Relaxed);
                                let mut q = queue.lock();
                                if attempt + 1 >= max_attempts {
                                    q.failed.get_or_insert(index);
                                    failed_flag.store(true, Ordering::SeqCst);
                                    false
                                } else {
                                    // Counter before queue entry: a peer's
                                    // termination scan must see the retry
                                    // pending before it could see it queued.
                                    retries_pending.fetch_add(1, Ordering::SeqCst);
                                    q.retries.push_back((index, attempt + 1));
                                    true
                                }
                            }
                        }
                    };
                    // Tail speculation (demand-driven modes): duplicate one
                    // in-flight unit on this otherwise-idle worker.  Returns
                    // `true` when a duplicate ran (the caller keeps looping:
                    // retries may have appeared, more tail may remain).
                    let try_speculate = || -> bool {
                        let Some(spec) = speculation else {
                            return false;
                        };
                        // In-flight = claimed units with no result yet
                        // (includes panicked units awaiting retry — their
                        // re-execution is exactly what a duplicate races).
                        // The slot scan is racy by design: a unit completing
                        // mid-scan only makes the in-flight count stale by
                        // one, and the claim flag still guards uniqueness.
                        let claimed = queue.lock().next;
                        let mut in_flight = 0usize;
                        let mut candidate = None;
                        for idx in 0..claimed {
                            if results_slots[idx].lock().first().unwrap().is_none() {
                                in_flight += 1;
                                if candidate.is_none()
                                    && !speculated_flags[idx].load(Ordering::Relaxed)
                                {
                                    candidate = Some(idx);
                                }
                            }
                        }
                        let Some(index) = candidate else {
                            return false;
                        };
                        if !spec.allow(in_flight, n) {
                            return false;
                        }
                        if speculated_flags[index]
                            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                            .is_err()
                        {
                            return true; // lost the claim race — rescan
                        }
                        speculated_units.fetch_add(1, Ordering::Relaxed);
                        spec.note_launched(index, wid);
                        let t0 = Instant::now();
                        if let Ok(out) =
                            catch_unwind(AssertUnwindSafe(|| worker_fn(wid, &items[index])))
                        {
                            let dt = t0.elapsed();
                            let mut guard = results_slots[index].lock();
                            let slot = guard.first_mut().unwrap();
                            if slot.is_none() {
                                *slot = Some(out);
                                drop(guard);
                                stats[wid].record(dt);
                                if let Some(hook) = record_hook {
                                    hook(wid, index);
                                }
                                speculation_wins.fetch_add(1, Ordering::Relaxed);
                                spec.note_win(index, wid);
                            }
                            // else: the straggler finished first after all —
                            // this duplicate is the discarded loser.
                        }
                        // A panicked duplicate is simply dropped: the primary
                        // still owns the unit, so the ordinary retry path
                        // (not the speculative one) decides its fate.
                        true
                    };
                    // A worker past its panic budget retires — unless it is
                    // the last one still pulling, which must soldier on to
                    // preserve progress.  A worker never retires while
                    // retries are pending: it may be the only worker still
                    // looping, and a requeued task must not be stranded.
                    let should_retire = || {
                        stats[wid].panics.load(Ordering::Relaxed) > panic_budget
                            && queue.lock().retries.is_empty()
                            && active_workers
                                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |a| {
                                    if a > 1 {
                                        Some(a - 1)
                                    } else {
                                        None
                                    }
                                })
                                .is_ok()
                    };
                    let retire = |retired: &mut bool| {
                        workers_lost.fetch_add(1, Ordering::Relaxed);
                        // Tell the gate (when present) so the adaptation
                        // layer's pool floor counts this worker as inactive.
                        if let Some(g) = gate {
                            g.mark_retired(wid);
                        }
                        *retired = true;
                    };
                    let mut retired = false;

                    // ============ work-stealing mode ============
                    //
                    // Each worker owns deques[wid], seeded with its slice of
                    // the one-shot range partition.  The owner fast path —
                    // rank-weighted pop from its own bottom — takes no lock
                    // and allocates nothing; the queue lock is only touched
                    // on the slow paths (retries, reclaimed ranges, faults).
                    if let Some(deques) = steal_deques {
                        let my_deque = &deques[wid];
                        // Drain our own deque back into circulation (used on
                        // demotion and retirement, so `conserves_units_of`
                        // holds even when a worker leaves mid-partition).
                        // The pending counter is bumped BEFORE the drain: a
                        // peer that later sees this deque empty is thereby
                        // guaranteed to also see the counter, so its
                        // termination scan cannot strand the range.
                        let drain_to_reclaimed = || {
                            reclaimed_pending.fetch_add(1, Ordering::SeqCst);
                            match my_deque.drain_all() {
                                Some(range) => queue.lock().reclaimed.push_back(range),
                                None => {
                                    reclaimed_pending.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                        };
                        // Rank weight: prefer the engine's published
                        // calibration ranks, fall back to the farm-local
                        // atomic running means.  Either way: no locks.
                        let rank_weight = || {
                            let from_engine = ranks.and_then(|t| {
                                let my = t.get(wid)?;
                                let mut sum = 0.0;
                                let mut k = 0usize;
                                for v in 0..workers {
                                    if let Some(m) = t.get(v) {
                                        sum += m;
                                        k += 1;
                                    }
                                }
                                (k > 0).then(|| sum / k as f64 / my)
                            });
                            from_engine.unwrap_or_else(|| {
                                let my_mean = stats[wid].mean_s().unwrap_or(0.0);
                                let mut sum = 0.0;
                                let mut k = 0usize;
                                for s in stats.iter() {
                                    if let Some(m) = s.mean_s() {
                                        sum += m;
                                        k += 1;
                                    }
                                }
                                if my_mean > 0.0 && k > 0 {
                                    (sum / k as f64) / my_mean
                                } else {
                                    1.0
                                }
                            })
                        };

                        // Calibration: probe tasks come from our own bottom.
                        let calib_start = Instant::now();
                        for _ in 0..calib_samples {
                            if failed_flag.load(Ordering::SeqCst) {
                                break;
                            }
                            let Some((idx, _)) = my_deque.take_bottom(1) else {
                                break;
                            };
                            if !exec_task(idx, 0) {
                                break;
                            }
                            if should_retire() {
                                drain_to_reclaimed();
                                retire(&mut retired);
                                break;
                            }
                        }
                        if calib_samples > 0 {
                            let elapsed = calib_start.elapsed();
                            let mut cd = calibration_done.lock();
                            if elapsed > *cd {
                                *cd = elapsed;
                            }
                        }

                        enum Slow {
                            Retry { index: usize, attempt: usize },
                            Range { start: usize, count: usize },
                            Nothing,
                        }
                        'steal: while !retired {
                            if failed_flag.load(Ordering::SeqCst) {
                                break;
                            }
                            // External demotion: drain our deque back into
                            // circulation first, under the same progress
                            // guards as the demand-driven loop.
                            if gate.map(|g| g.is_demoted(wid)).unwrap_or(false)
                                && queue.lock().retries.is_empty()
                                && active_workers
                                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |a| {
                                        if a > 1 {
                                            Some(a - 1)
                                        } else {
                                            None
                                        }
                                    })
                                    .is_ok()
                            {
                                drain_to_reclaimed();
                                workers_demoted.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            // Slow path first: panic retries, then ranges
                            // reclaimed from departed workers.
                            if retries_pending.load(Ordering::SeqCst) > 0
                                || reclaimed_pending.load(Ordering::SeqCst) > 0
                            {
                                let slow = {
                                    let mut q = queue.lock();
                                    if q.failed.is_some() {
                                        break;
                                    }
                                    if let Some((index, attempt)) = q.retries.pop_front() {
                                        retries_pending.fetch_sub(1, Ordering::SeqCst);
                                        Slow::Retry { index, attempt }
                                    } else if let Some((start, count)) = q.reclaimed.pop_front() {
                                        // Take one owner-sized bite; the rest
                                        // goes back for the other workers.
                                        let bite = policy.owner_chunk(count, workers, 1.0).max(1);
                                        if bite < count {
                                            q.reclaimed.push_back((start + bite, count - bite));
                                        } else {
                                            reclaimed_pending.fetch_sub(1, Ordering::SeqCst);
                                        }
                                        Slow::Range {
                                            start,
                                            count: bite.min(count),
                                        }
                                    } else {
                                        Slow::Nothing
                                    }
                                };
                                match slow {
                                    Slow::Retry { index, attempt } => {
                                        if !exec_task(index, attempt) {
                                            break;
                                        }
                                        if should_retire() {
                                            drain_to_reclaimed();
                                            retire(&mut retired);
                                        }
                                        continue;
                                    }
                                    Slow::Range { start, count } => {
                                        for idx in start..start + count {
                                            if !exec_task(idx, 0) {
                                                break 'steal;
                                            }
                                        }
                                        if should_retire() {
                                            drain_to_reclaimed();
                                            retire(&mut retired);
                                        }
                                        continue;
                                    }
                                    Slow::Nothing => {}
                                }
                            }
                            // Owner fast path: rank-weighted pop from our own
                            // bottom.  Lock-free and allocation-free.
                            let want = policy.owner_chunk(my_deque.len(), workers, rank_weight());
                            if want > 0 {
                                if let Some((start, count)) = my_deque.take_bottom(want) {
                                    let _ = initial_chunk.compare_exchange(
                                        0,
                                        count,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    );
                                    for idx in start..start + count {
                                        if !exec_task(idx, 0) {
                                            break 'steal;
                                        }
                                    }
                                    if should_retire() {
                                        drain_to_reclaimed();
                                        retire(&mut retired);
                                    }
                                    continue;
                                }
                            }
                            // Steal phase: pick the slowest-ranked victim
                            // with at least two tasks exposed (the lone last
                            // task always stays with its owner); with no
                            // ranks yet, the longest deque stands in.
                            let mut victim: Option<(usize, usize, Option<f64>)> = None;
                            for v in 0..workers {
                                if v == wid {
                                    continue;
                                }
                                let len = deques[v].len();
                                if len < 2 {
                                    continue;
                                }
                                let mean =
                                    ranks.and_then(|t| t.get(v)).or_else(|| stats[v].mean_s());
                                let better = match &victim {
                                    None => true,
                                    Some((_, best_len, best_mean)) => match (mean, best_mean) {
                                        (Some(m), Some(b)) => {
                                            m > *b || (m == *b && len > *best_len)
                                        }
                                        (Some(_), None) => true,
                                        (None, Some(_)) => false,
                                        (None, None) => len > *best_len,
                                    },
                                };
                                if better {
                                    victim = Some((v, len, mean));
                                }
                            }
                            match victim {
                                Some((v, _, _)) => {
                                    steals_attempted.fetch_add(1, Ordering::Relaxed);
                                    if let Some((start, count)) = deques[v].steal_top_half() {
                                        steals_completed.fetch_add(1, Ordering::Relaxed);
                                        units_stolen.fetch_add(count, Ordering::Relaxed);
                                        for idx in start..start + count {
                                            if !exec_task(idx, 0) {
                                                break 'steal;
                                            }
                                        }
                                        if should_retire() {
                                            drain_to_reclaimed();
                                            retire(&mut retired);
                                        }
                                    }
                                    // A lost race (the victim drained its own
                                    // deque first) just rescans.
                                }
                                None => {
                                    // Nothing local, nothing stealable: done
                                    // once no retries or reclaimed ranges are
                                    // pending either.  Both counters are
                                    // raised before their backing store
                                    // drains/fills, so this unlocked scan
                                    // cannot strand in-flight work; a task
                                    // that panics later is requeued and
                                    // finished by the panicking worker
                                    // itself, which cannot be past this exit.
                                    if my_deque.is_empty()
                                        && retries_pending.load(Ordering::SeqCst) == 0
                                        && reclaimed_pending.load(Ordering::SeqCst) == 0
                                    {
                                        break;
                                    }
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        return;
                    }

                    // ----------------- calibration pass -----------------
                    let calib_start = Instant::now();
                    for _ in 0..calib_samples {
                        let idx = {
                            let mut q = queue.lock();
                            if q.failed.is_some() || q.next >= q.total {
                                break;
                            }
                            let i = q.next;
                            q.next += 1;
                            i
                        };
                        if !exec_task(idx, 0) {
                            break;
                        }
                        if should_retire() {
                            retire(&mut retired);
                            break;
                        }
                    }
                    if calib_samples > 0 {
                        let elapsed = calib_start.elapsed();
                        let mut cd = calibration_done.lock();
                        if elapsed > *cd {
                            *cd = elapsed;
                        }
                    }

                    // ----------------- execution pass -----------------
                    'pull: while !retired {
                        // An externally demoted worker (Algorithm 2's "drop
                        // the slow node", flagged through the WorkerGate)
                        // stops pulling under the same progress guards as
                        // panic retirement: never while retries are pending,
                        // never as the last active worker.  Its completed
                        // work stands; the queue reroutes the rest.
                        if gate.map(|g| g.is_demoted(wid)).unwrap_or(false)
                            && queue.lock().retries.is_empty()
                            && active_workers
                                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |a| {
                                    if a > 1 {
                                        Some(a - 1)
                                    } else {
                                        None
                                    }
                                })
                                .is_ok()
                        {
                            workers_demoted.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        // Weight = pool mean time / this worker's mean time,
                        // derived from the atomic running sums (no locks).
                        let my_mean = stats[wid].mean_s().unwrap_or(0.0);
                        let pool_mean = {
                            let mut sum = 0.0;
                            let mut k = 0usize;
                            for s in stats.iter() {
                                if let Some(m) = s.mean_s() {
                                    sum += m;
                                    k += 1;
                                }
                            }
                            if k == 0 {
                                0.0
                            } else {
                                sum / k as f64
                            }
                        };
                        let weight = if my_mean > 0.0 && pool_mean > 0.0 {
                            pool_mean / my_mean
                        } else {
                            1.0
                        };
                        let job = {
                            let mut q = queue.lock();
                            if q.failed.is_some() {
                                break;
                            }
                            if let Some((index, attempt)) = q.retries.pop_front() {
                                retries_pending.fetch_sub(1, Ordering::SeqCst);
                                Some(Job::Retry { index, attempt })
                            } else {
                                let remaining = q.total - q.next;
                                if remaining == 0 {
                                    None
                                } else {
                                    let c =
                                        policy.next_chunk_with_total(remaining, n, workers, weight);
                                    let start = q.next;
                                    q.next += c;
                                    Some(Job::Chunk { start, count: c })
                                }
                            }
                        };
                        let Some(job) = job else {
                            // The tail: every fresh unit is claimed and no
                            // retry is queued.  Instead of going idle, a
                            // worker with a speculation policy duplicates an
                            // in-flight unit and rescans (retries may have
                            // appeared meanwhile); with none, it exits as
                            // before.
                            if try_speculate() {
                                continue;
                            }
                            break;
                        };
                        match job {
                            Job::Retry { index, attempt } => {
                                if !exec_task(index, attempt) {
                                    break;
                                }
                                if should_retire() {
                                    retire(&mut retired);
                                }
                            }
                            Job::Chunk { start, count } => {
                                let _ = initial_chunk.compare_exchange(
                                    0,
                                    count,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                );
                                // The chunk is finished even by a worker over
                                // its panic budget: its tasks are claimed, so
                                // retiring mid-chunk would strand them.
                                for idx in start..start + count {
                                    if !exec_task(idx, 0) {
                                        break 'pull;
                                    }
                                }
                                if should_retire() {
                                    retire(&mut retired);
                                }
                            }
                        }
                    }
                });
            }
        });

        drop(results_slots);
        let queue = queue.into_inner();
        if let Some(task) = queue.failed {
            return Err(GraspError::WorkerFailed {
                task,
                attempts: max_attempts,
            });
        }
        let mut output: Vec<R> = Vec::with_capacity(n);
        for (idx, slot) in results.into_iter().enumerate() {
            match slot {
                Some(r) => output.push(r),
                None => {
                    // Defensive: no recorded failure but a slot is empty —
                    // report it as a worker failure rather than panicking.
                    return Err(GraspError::WorkerFailed {
                        task: idx,
                        attempts: max_attempts,
                    });
                }
            }
        }
        let stats = FarmStats {
            workers: self.workers,
            tasks_per_worker: stats
                .iter()
                .map(|s| s.count.load(Ordering::Relaxed))
                .collect(),
            mean_task_time_per_worker: stats.iter().map(|s| s.mean_s().unwrap_or(0.0)).collect(),
            calibration: *calibration_done.lock(),
            total: started.elapsed(),
            initial_chunk: initial_chunk.load(Ordering::Relaxed),
            panics: stats.iter().map(|s| s.panics.load(Ordering::Relaxed)).sum(),
            retried: retried_total.load(Ordering::Relaxed),
            workers_lost: workers_lost.load(Ordering::Relaxed),
            workers_demoted: workers_demoted.load(Ordering::Relaxed),
            steals_attempted: steals_attempted.load(Ordering::Relaxed),
            steals_completed: steals_completed.load(Ordering::Relaxed),
            units_stolen: units_stolen.load(Ordering::Relaxed),
            speculated_units: speculated_units.load(Ordering::Relaxed),
            speculation_wins: speculation_wins.load(Ordering::Relaxed),
        };
        Ok((output, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::spin as spin_work;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_preserve_input_order() {
        let farm = ThreadFarm::new(4);
        let items: Vec<u64> = (0..200).collect();
        let (out, stats) = farm.run(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 200);
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.retried, 0);
        assert_eq!(stats.workers_lost, 0);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let farm = ThreadFarm::new(2);
        let (out, stats) = farm.run(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 0);
    }

    #[test]
    fn single_worker_still_completes() {
        let farm = ThreadFarm::new(1).with_policy(SchedulePolicy::SelfScheduling);
        let items: Vec<u64> = (0..50).collect();
        let (out, stats) = farm.run(&items, |&x| x + 1);
        assert_eq!(out.len(), 50);
        assert_eq!(stats.tasks_per_worker, vec![50]);
        assert_eq!(stats.imbalance(), 50.0_f64.max(1.0) / 50.0);
    }

    #[test]
    fn every_policy_completes_the_workload() {
        let items: Vec<u64> = (0..300).collect();
        for policy in [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduling,
            SchedulePolicy::FixedChunk { chunk: 7 },
            SchedulePolicy::Guided { min_chunk: 2 },
            SchedulePolicy::Factoring { factor: 0.5 },
            SchedulePolicy::AdaptiveWeighted { min_chunk: 1 },
            SchedulePolicy::WorkStealing { min_chunk: 1 },
        ] {
            let farm = ThreadFarm::new(3).with_policy(policy);
            let (out, _) = farm.run(&items, |&x| spin_work(x % 64) ^ x);
            assert_eq!(out.len(), 300, "{policy:?}");
        }
    }

    #[test]
    fn work_stealing_completes_and_preserves_order() {
        let farm = ThreadFarm::new(4).with_policy(SchedulePolicy::WorkStealing { min_chunk: 1 });
        let items: Vec<u64> = (0..500).collect();
        let (out, stats) = farm.run(&items, |&x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 500);
        assert!(stats.steals_completed <= stats.steals_attempted);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn stealing_rebalances_an_asymmetric_farm() {
        // Worker 0 is ~50× slower per task: under one-shot partitioning it
        // would hold a quarter of the range hostage, so thieves must visibly
        // move units out of its deque.
        let farm = ThreadFarm::new(4)
            .with_policy(SchedulePolicy::WorkStealing { min_chunk: 1 })
            .with_calibration_samples(1);
        let items: Vec<u64> = (0..400).collect();
        let (out, stats) = farm.run(&items, |&x| {
            let w = if x < 100 { 60_000 } else { 1_200 };
            spin_work(w) ^ x
        });
        assert_eq!(out.len(), 400);
        assert!(
            stats.steals_completed >= 1,
            "no steals on an asymmetric farm: {stats:?}"
        );
        assert!(stats.units_stolen >= 1);
        // The slow range's owner must have been relieved of part of its seed
        // partition (100 tasks) by the fast workers.
        assert!(
            stats.tasks_per_worker.iter().sum::<usize>() == 400,
            "conservation: {:?}",
            stats.tasks_per_worker
        );
    }

    #[test]
    fn demoted_stealing_worker_drains_its_deque_back_into_circulation() {
        let gate = Arc::new(WorkerGate::new(4));
        gate.demote(0);
        let farm = ThreadFarm::new(4)
            .with_policy(SchedulePolicy::WorkStealing { min_chunk: 1 })
            .with_calibration_samples(1)
            .with_gate(Arc::clone(&gate));
        let items: Vec<u64> = (0..200).collect();
        let (out, stats) = farm.run(&items, |&x| x + 1);
        assert_eq!(out.len(), 200, "demotion drain must not lose work");
        assert_eq!(stats.workers_demoted, 1);
        assert_eq!(stats.workers_lost, 0);
        // The demoted worker executed at most its calibration probe; its
        // seed partition (50 tasks) was drained or stolen, not stranded.
        assert!(
            stats.tasks_per_worker[0] <= 1,
            "demoted worker kept pulling: {:?}",
            stats.tasks_per_worker
        );
    }

    #[test]
    fn panicking_stealing_worker_retires_and_its_deque_is_reclaimed() {
        // Worker-targeted transient faults: whoever executes the poisoned
        // indices panics, and when a worker exhausts its budget and retires
        // with seed tasks still in its deque, the drain must put them back
        // into circulation.
        let transient_faults = AtomicUsize::new(5);
        let farm = ThreadFarm::new(4)
            .with_policy(SchedulePolicy::WorkStealing { min_chunk: 1 })
            .with_worker_panic_budget(1)
            .with_max_task_attempts(10);
        let items: Vec<u64> = (0..200).collect();
        let (out, stats) = farm
            .try_run(&items, |&x| {
                if x % 4 == 0
                    && transient_faults
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected fault burst");
                }
                spin_work(x % 32) ^ x
            })
            .expect("fault burst must be survivable under stealing");
        assert_eq!(out.len(), 200);
        assert_eq!(stats.panics, 5);
        assert!(stats.retried >= 1);
        assert!(stats.workers_lost < 4);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 200);
    }

    #[test]
    fn work_stealing_persistent_panic_still_yields_a_typed_error() {
        let farm = ThreadFarm::new(3)
            .with_policy(SchedulePolicy::WorkStealing { min_chunk: 1 })
            .with_max_task_attempts(2);
        let items: Vec<u64> = (0..60).collect();
        let err = farm
            .try_run(&items, |&x| {
                if x == 31 {
                    panic!("permanently broken task");
                }
                x
            })
            .expect_err("a task failing every attempt must error");
        match err {
            GraspError::WorkerFailed { task, attempts } => {
                assert_eq!(task, 31);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// Test policy: always allow, count the reports.
    struct AlwaysSpeculate {
        launched: AtomicUsize,
        wins: AtomicUsize,
    }

    impl AlwaysSpeculate {
        fn new() -> Arc<Self> {
            Arc::new(AlwaysSpeculate {
                launched: AtomicUsize::new(0),
                wins: AtomicUsize::new(0),
            })
        }
    }

    impl SpeculationPolicy for AlwaysSpeculate {
        fn allow(&self, _in_flight: usize, _total: usize) -> bool {
            true
        }
        fn note_launched(&self, _unit: usize, _worker: usize) {
            self.launched.fetch_add(1, Ordering::Relaxed);
        }
        fn note_win(&self, _unit: usize, _worker: usize) {
            self.wins.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn idle_worker_duplicates_the_tail_straggler_and_first_result_wins() {
        // Whoever executes item 2 first sleeps; the duplicate (or the
        // straggler, if the duplicate lost the start race) returns at once.
        // Either way the run must finish long before the sleeper wakes only
        // if the duplicate's result is accepted.
        let policy = AlwaysSpeculate::new();
        let farm = ThreadFarm::new(2)
            .with_policy(SchedulePolicy::SelfScheduling)
            .with_calibration_samples(0)
            .with_speculation(Arc::clone(&policy) as Arc<dyn SpeculationPolicy>);
        let slow_exec_taken = AtomicUsize::new(0);
        let items: Vec<u64> = vec![10, 20, 30];
        let (out, stats) = farm.run(&items, |&x| {
            if x == 30 && slow_exec_taken.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(200));
            }
            x * 2
        });
        assert_eq!(out, vec![20, 40, 60]);
        // Exactly one worker recorded each unit, duplicates included.
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 3);
        assert!(
            stats.speculated_units >= 1,
            "the idle worker never speculated: {stats:?}"
        );
        assert!(stats.speculation_wins <= stats.speculated_units);
        assert_eq!(
            policy.launched.load(Ordering::Relaxed),
            stats.speculated_units,
            "every launch must be reported to the policy"
        );
        assert_eq!(policy.wins.load(Ordering::Relaxed), stats.speculation_wins);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn speculation_under_panics_still_counts_every_unit_exactly_once() {
        // Transient panics + a slow straggler + always-on speculation: the
        // result set and the per-worker task accounting must both stay
        // exact (no unit double-counted by a winner and its loser).
        let policy = AlwaysSpeculate::new();
        let farm = ThreadFarm::new(3)
            .with_policy(SchedulePolicy::SelfScheduling)
            .with_calibration_samples(0)
            .with_max_task_attempts(10)
            .with_speculation(Arc::clone(&policy) as Arc<dyn SpeculationPolicy>);
        let transient_faults = AtomicUsize::new(4);
        let slow_exec_taken = AtomicUsize::new(0);
        let items: Vec<u64> = (0..24).collect();
        let (out, stats) = farm
            .try_run(&items, |&x| {
                if x % 6 == 0
                    && transient_faults
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected transient fault");
                }
                if x == 23 && slow_exec_taken.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(100));
                }
                x + 1
            })
            .expect("speculation must not break fault recovery");
        assert_eq!(out, (1..=24).collect::<Vec<u64>>());
        assert_eq!(
            stats.tasks_per_worker.iter().sum::<usize>(),
            24,
            "winner/loser races double- or under-counted units: {stats:?}"
        );
        assert_eq!(
            policy.launched.load(Ordering::Relaxed),
            stats.speculated_units
        );
    }

    #[test]
    fn without_a_policy_the_farm_never_speculates() {
        let farm = ThreadFarm::new(4).with_policy(SchedulePolicy::SelfScheduling);
        let items: Vec<u64> = (0..50).collect();
        let (_, stats) = farm.run(&items, |&x| spin_work(x % 16) ^ x);
        assert_eq!(stats.speculated_units, 0);
        assert_eq!(stats.speculation_wins, 0);
    }

    #[test]
    fn rank_table_publishes_and_filters() {
        let t = RankTable::new(3);
        assert_eq!(t.workers(), 3);
        assert_eq!(t.get(0), None, "unranked until first set");
        t.set(0, 2.5e-3);
        t.set(1, f64::NAN);
        t.set(2, -1.0);
        t.set(9, 1.0);
        assert_eq!(t.get(0), Some(2.5e-3));
        assert_eq!(t.get(1), None, "non-finite ranks are ignored");
        assert_eq!(t.get(2), None, "non-positive ranks are ignored");
        assert_eq!(t.get(9), None);
    }

    #[test]
    fn rank_table_steers_victim_selection_toward_the_slow_worker() {
        // Publish ranks marking worker 0 as the slowest before the run: the
        // thieves should relieve it even though the farm-local stats start
        // empty.
        let ranks = Arc::new(RankTable::new(4));
        ranks.set(0, 50e-3);
        for w in 1..4 {
            ranks.set(w, 1e-3);
        }
        let farm = ThreadFarm::new(4)
            .with_policy(SchedulePolicy::WorkStealing { min_chunk: 1 })
            .with_calibration_samples(0)
            .with_rank_table(Arc::clone(&ranks));
        let items: Vec<u64> = (0..400).collect();
        let (out, stats) = farm.run(&items, |&x| {
            let w = if x < 100 { 50_000 } else { 1_000 };
            spin_work(w) ^ x
        });
        assert_eq!(out.len(), 400);
        assert!(
            stats.steals_completed >= 1,
            "ranked slow worker was never relieved: {stats:?}"
        );
    }

    #[test]
    fn calibration_can_be_disabled() {
        let farm = ThreadFarm::new(2).with_calibration_samples(0);
        let items: Vec<u64> = (0..20).collect();
        let (out, stats) = farm.run(&items, |&x| x);
        assert_eq!(out.len(), 20);
        assert_eq!(stats.calibration, Duration::ZERO);
    }

    #[test]
    fn irregular_work_is_shared_among_workers() {
        // Irregular per-item cost: demand-driven scheduling should keep every
        // worker busy (no worker should end up with almost nothing).  Items
        // are heavy enough that the workload outlives thread start-up.
        let farm = ThreadFarm::new(4).with_policy(SchedulePolicy::SelfScheduling);
        let items: Vec<u64> = (0..200).map(|i| (i % 37) * 20_000 + 5_000).collect();
        let (out, stats) = farm.run(&items, |&x| spin_work(x));
        assert_eq!(out.len(), 200);
        assert!(stats.tasks_per_worker.iter().all(|&c| c > 0));
        assert!(stats.mean_task_time_per_worker.iter().all(|&t| t >= 0.0));
        assert!(stats.total >= stats.calibration);
    }

    #[test]
    fn transient_panic_is_retried_and_the_run_completes() {
        // One task panics on its first attempt only (a transient fault): the
        // farm must catch the panic, requeue the task, and finish with every
        // slot filled and the retry reported.
        let fail_once = AtomicUsize::new(1);
        let farm = ThreadFarm::new(3);
        let items: Vec<u64> = (0..120).collect();
        let (out, stats) = farm
            .try_run(&items, |&x| {
                if x == 60
                    && fail_once
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected transient fault");
                }
                x * 2
            })
            .expect("transient fault must be survivable");
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.retried, 1);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 120);
    }

    #[test]
    fn persistent_panic_yields_a_typed_error() {
        let farm = ThreadFarm::new(2).with_max_task_attempts(2);
        let items: Vec<u64> = (0..40).collect();
        let err = farm
            .try_run(&items, |&x| {
                if x == 7 {
                    panic!("permanently broken task");
                }
                x
            })
            .expect_err("a task failing every attempt must error");
        match err {
            GraspError::WorkerFailed { task, attempts } => {
                assert_eq!(task, 7);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn panicking_worker_retires_but_the_pool_survives() {
        // Every task on the "poisoned" range panics once per attempt until
        // the counter drains; the pool must absorb more panics than one
        // worker's budget, retire nobody fatally needed, and still finish.
        let transient_faults = AtomicUsize::new(6);
        let farm = ThreadFarm::new(4)
            .with_worker_panic_budget(1)
            .with_max_task_attempts(10);
        let items: Vec<u64> = (0..200).collect();
        let (out, stats) = farm
            .try_run(&items, |&x| {
                if x % 3 == 0
                    && transient_faults
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected fault burst");
                }
                spin_work(x % 32) ^ x
            })
            .expect("fault burst must be survivable");
        assert_eq!(out.len(), 200);
        assert_eq!(stats.panics, 6);
        assert!(stats.retried >= 1);
        // Whatever retired, the results are complete and exactly-once.
        assert!(stats.workers_lost < 4);
    }

    #[test]
    fn default_uses_available_parallelism() {
        let farm = ThreadFarm::default();
        assert!(farm.workers() >= 1);
    }

    #[test]
    fn demoted_worker_stops_pulling_but_the_job_completes() {
        let gate = Arc::new(WorkerGate::new(4));
        assert!(gate.demote(0), "first demotion sets the flag");
        assert!(!gate.demote(0), "repeat demotions are idempotent");
        assert!(gate.is_demoted(0));
        assert_eq!(gate.demoted_count(), 1);
        let farm = ThreadFarm::new(4)
            .with_policy(SchedulePolicy::SelfScheduling)
            .with_calibration_samples(1)
            .with_gate(Arc::clone(&gate));
        let items: Vec<u64> = (0..200).collect();
        let (out, stats) = farm.run(&items, |&x| x + 1);
        assert_eq!(out.len(), 200, "demotion must not lose work");
        assert_eq!(stats.workers_demoted, 1);
        assert_eq!(stats.workers_lost, 0, "demotion is not a fault");
        // The demoted worker executed at most its calibration probe.
        assert!(
            stats.tasks_per_worker[0] <= 1,
            "demoted worker kept pulling: {:?}",
            stats.tasks_per_worker
        );
    }

    #[test]
    fn last_active_worker_ignores_demotion() {
        let gate = Arc::new(WorkerGate::new(1));
        gate.demote(0);
        let farm = ThreadFarm::new(1)
            .with_calibration_samples(0)
            .with_gate(Arc::clone(&gate));
        let items: Vec<u64> = (0..30).collect();
        let (out, stats) = farm.run(&items, |&x| x * 2);
        assert_eq!(out.len(), 30, "the last worker must soldier on");
        assert_eq!(stats.workers_demoted, 0);
    }
}
