//! A real-thread pipeline.
//!
//! Each stage runs on its own thread; items flow through bounded channels and
//! are re-assembled in submission order at the sink.  Per-stage service times
//! are measured while the stream runs, and the resulting statistics identify
//! the bottleneck stage — the shared-memory analogue of the information the
//! grid pipeline uses to decide remapping.  An optional adaptation replicates
//! the bottleneck stage across `replicas` worker threads when its measured
//! service time exceeds `replication_threshold` times the mean stage time.
//!
//! Stage execution is **fault-isolated**: a panic inside a stage closure is
//! caught with `catch_unwind` and the item is retried in place, bounded by
//! the configured attempt budget (the worker clones the item before an
//! attempt only while a further retry is still permitted — the final attempt
//! moves it).  An item that fails every attempt turns the run into a typed
//! [`GraspError::WorkerFailed`] instead of tearing down the process.
//!
//! With [`ThreadPipeline::with_adaptation`] the pipeline additionally runs
//! the shared calibrate→monitor→act loop of
//! [`grasp_core::engine::AdaptationEngine`]: the probe prefix calibrates a
//! per-stage threshold *Zₛ*, stage workers feed wall-clock service times to
//! the engine, and a mid-run breach **activates a standby replica** of the
//! degraded stage — the shared-memory realisation of the pipeline's
//! stage-remap adaptation (a thread cannot migrate to a better node, but
//! the stage can be served by one more worker).  An idle standby holds no
//! channel endpoints (it receives them through its activation message), so
//! it can never keep the pipeline alive: when the last real worker of its
//! stage exits, the activation channel closes and the standby exits too.

use crossbeam::channel::{bounded, Receiver, Sender};
use grasp_core::adaptation::AdaptationLog;
use grasp_core::config::ExecutionConfig;
use grasp_core::engine::{AdaptationDirective, AdaptationEngine, WallClock};
use grasp_core::error::GraspError;
use grasp_core::wire::{ByteReader, ByteWriter};
use gridsim::NodeId;
use gridstats::mean;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A boxed stage function.
pub type StageFn<T> = Box<dyn Fn(T) -> T + Send + Sync>;

/// Serializes one queued item into a checkpoint buffer (wire payload
/// format) during a live stage migration.
pub type EncodeItemFn<T> = dyn Fn(&T, &mut ByteWriter) + Send + Sync;

/// Rebuilds one queued item from a checkpoint buffer on the stage's new
/// home.
pub type DecodeItemFn<T> = dyn Fn(&mut ByteReader<'_>) -> Result<T, GraspError> + Send + Sync;

/// The encode/decode pair installed by [`ThreadPipeline::with_migration`].
pub type MigrationCodec<T> = (Arc<EncodeItemFn<T>>, Arc<DecodeItemFn<T>>);

/// Per-run statistics reported by [`ThreadPipeline::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Mean service time per stage (seconds per item).
    pub mean_stage_service: Vec<f64>,
    /// Items processed per stage (equals the stream length for every stage).
    pub items_per_stage: Vec<usize>,
    /// Index of the slowest stage.
    pub bottleneck_stage: usize,
    /// Worker threads used per stage (1 unless the stage was replicated).
    pub replicas_per_stage: Vec<usize>,
    /// Wall-clock duration of the whole run.
    pub total: Duration,
    /// Stage panics caught and isolated during the run.
    pub panics: usize,
    /// Items re-executed after a panicked attempt that ultimately completed.
    pub retried: usize,
    /// Audit trail of the engine-driven adaptation loop (empty unless
    /// [`ThreadPipeline::with_adaptation`] enabled it): stage replications
    /// and the threshold context they fired under, in wall-clock seconds
    /// since run start.
    pub adaptation: AdaptationLog,
}

impl PipelineStats {
    /// Throughput in items per second over the whole run.
    pub fn throughput(&self, items: usize) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            items as f64 / secs
        }
    }
}

/// A shared-memory pipeline over stages of type `T -> T`.
pub struct ThreadPipeline<T> {
    stages: Vec<Arc<StageFn<T>>>,
    /// Explicit per-stage worker counts (1 = plain stage).  The skeleton
    /// layer uses this to realise a pipeline-of-farms: a farmed stage gets
    /// its replica count of worker threads.
    stage_replicas: Vec<usize>,
    channel_capacity: usize,
    /// Replicate a stage when its mean service exceeds this multiple of the
    /// mean over all stages (`None` disables replication).
    replication_threshold: Option<f64>,
    /// How many worker threads a replicated stage receives.
    replicas: usize,
    /// How many times one item may be attempted at one stage before the run
    /// is declared failed.
    max_task_attempts: usize,
    /// Engine-driven mid-run adaptation (see
    /// [`ThreadPipeline::with_adaptation`]); `None` disables it.
    adaptation: Option<ExecutionConfig>,
    /// Checkpoint codec for live stage migration (see
    /// [`ThreadPipeline::with_migration`]); `None` keeps the
    /// replicate-on-breach behaviour even when the execution config asks
    /// for migration (items that cannot be serialized cannot move homes).
    migration: Option<MigrationCodec<T>>,
}

impl<T: Send + 'static> ThreadPipeline<T> {
    /// A pipeline with no stages (add them with [`ThreadPipeline::stage`]).
    pub fn new() -> Self {
        ThreadPipeline {
            stages: Vec::new(),
            stage_replicas: Vec::new(),
            channel_capacity: 16,
            replication_threshold: None,
            replicas: 2,
            max_task_attempts: 3,
            adaptation: None,
            migration: None,
        }
    }

    /// Enable **live stage migration**: when the adaptation engine flags a
    /// sustained stage breach *and* the execution config sets
    /// `migrate_stages`, the breaching worker checkpoints the stage's
    /// queued items — serialized through the wire payload machinery
    /// ([`ByteWriter`]/[`ByteReader`], the same format the process and
    /// network backends frame tasks with) — hands queue and checkpoint to
    /// the stage's standby worker, and **stops serving the stage**.  The
    /// stage is re-homed (logged as `StageMigrated`), not replicated: the
    /// worker count stays the same.  Without a codec (or without
    /// `migrate_stages`) a breach falls back to activating the standby as
    /// an extra replica.
    pub fn with_migration(
        mut self,
        encode: impl Fn(&T, &mut ByteWriter) + Send + Sync + 'static,
        decode: impl Fn(&mut ByteReader<'_>) -> Result<T, GraspError> + Send + Sync + 'static,
    ) -> Self {
        self.migration = Some((Arc::new(encode), Arc::new(decode)));
        self
    }

    /// Run the shared Algorithm-2 loop ([`AdaptationEngine`]) over this
    /// pipeline: the probe prefix calibrates a per-stage threshold *Zₛ*
    /// from `exec.threshold`, stage workers report wall-clock service times
    /// to the engine, and a stage whose recent mean (over
    /// `exec.monitor_window` items) breaches *Zₛ* is **replicated** by
    /// activating a standby worker — the shared-memory stage remap.
    /// Breaches are spaced at least `exec.monitor_interval_s` apart on the
    /// wall clock, so scheduler jitter on a shared machine cannot thrash;
    /// runs shorter than one interval never adapt.  A no-op when
    /// `exec.adaptive` is false.
    pub fn with_adaptation(mut self, exec: ExecutionConfig) -> Self {
        self.adaptation = Some(exec);
        self
    }

    /// Append a stage.
    pub fn stage(mut self, f: impl Fn(T) -> T + Send + Sync + 'static) -> Self {
        self.stages.push(Arc::new(Box::new(f)));
        self.stage_replicas.push(1);
        self
    }

    /// Append a stage farmed across `replicas` worker threads (clamped to
    /// ≥ 1) — the shared-memory realisation of a nested farm stage inside a
    /// pipeline.  Result order is still preserved by the reordering sink.
    pub fn stage_replicated(
        mut self,
        f: impl Fn(T) -> T + Send + Sync + 'static,
        replicas: usize,
    ) -> Self {
        self.stages.push(Arc::new(Box::new(f)));
        self.stage_replicas.push(replicas.max(1));
        self
    }

    /// Override the bounded-channel capacity between stages.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Enable bottleneck replication: a stage whose mean service time exceeds
    /// `threshold ×` the all-stage mean is given `replicas` worker threads.
    /// The decision is made from a short probe prefix of the stream.
    pub fn with_replication(mut self, threshold: f64, replicas: usize) -> Self {
        self.replication_threshold = Some(threshold.max(1.0));
        self.replicas = replicas.max(2);
        self
    }

    /// Override how many times one item may be attempted at one stage before
    /// the run fails (clamped to ≥ 1; the default is 3).
    pub fn with_max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Run the stream through the pipeline, returning the transformed items
    /// in submission order plus statistics.  An empty stage list returns the
    /// input unchanged.
    ///
    /// Panics (with the [`GraspError`] message) if an item fails a stage on
    /// every allowed attempt; use [`ThreadPipeline::try_run`] for the
    /// fallible path.
    pub fn run(&self, items: Vec<T>) -> (Vec<T>, PipelineStats)
    where
        T: Clone,
    {
        self.try_run(items)
            .unwrap_or_else(|e| panic!("ThreadPipeline::run failed: {e}"))
    }

    /// Run the stream through the pipeline, returning the transformed items
    /// in submission order plus statistics, or a typed error when an item
    /// exhausts its per-stage retry budget.  An empty stage list returns the
    /// input unchanged.
    pub fn try_run(&self, items: Vec<T>) -> Result<(Vec<T>, PipelineStats), GraspError>
    where
        T: Clone,
    {
        let started = Instant::now();
        let n_stages = self.stages.len();
        let n_items = items.len();
        if n_stages == 0 || n_items == 0 {
            return Ok((
                items,
                PipelineStats {
                    mean_stage_service: vec![0.0; n_stages],
                    items_per_stage: vec![0; n_stages],
                    bottleneck_stage: 0,
                    replicas_per_stage: vec![1; n_stages],
                    total: started.elapsed(),
                    panics: 0,
                    retried: 0,
                    adaptation: AdaptationLog::new(),
                },
            ));
        }

        let mut replicas_per_stage = vec![1usize; n_stages];
        let service_times: Vec<Mutex<Vec<f64>>> =
            (0..n_stages).map(|_| Mutex::new(Vec::new())).collect();
        let max_attempts = self.max_task_attempts;
        let panics = AtomicUsize::new(0);
        let retried = AtomicUsize::new(0);
        // Sequence numbers of items that failed a stage on every attempt.
        let failed: Mutex<Vec<usize>> = Mutex::new(Vec::new());

        // Execute one stage over one item with panic isolation and bounded
        // in-place retries.  The item is cloned before an attempt only while
        // a further retry is still permitted (a panicking attempt consumes
        // its input); the final attempt moves the item, so a pipeline with
        // `max_task_attempts == 1` never clones at all.  Returns `None` when
        // every attempt panicked.
        let apply_stage = |stage: &StageFn<T>, item: T, times: &Mutex<Vec<f64>>| -> Option<T> {
            let mut slot = Some(item);
            for attempt in 0..max_attempts {
                let last = attempt + 1 == max_attempts;
                let input = if last {
                    slot.take()
                        .expect("slot holds the item until the last attempt")
                } else {
                    slot.as_ref()
                        .expect("slot holds the item until the last attempt")
                        .clone()
                };
                let t0 = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| stage(input))) {
                    Ok(out) => {
                        times.lock().push(t0.elapsed().as_secs_f64());
                        if attempt > 0 {
                            retried.fetch_add(1, Ordering::Relaxed);
                        }
                        return Some(out);
                    }
                    Err(_) => {
                        panics.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            None
        };

        // ------------------------------ probe -------------------------------
        // Decide replication from a short probe prefix of the stream, run
        // sequentially through each stage (cheap relative to the stream): a
        // stage whose probe-mean service exceeds `threshold ×` the all-stage
        // probe mean is the bottleneck and receives `self.replicas` workers.
        // The probe doubles as the engine's calibration phase: per-stage
        // thresholds Zₛ derive from the probe's measured service times.
        let adapt_cfg = self.adaptation.filter(|e| e.adaptive);
        // Live migration needs both the config's consent and a codec; with
        // either missing, a breach falls back to replication.
        let migration = if adapt_cfg.is_some_and(|e| e.migrate_stages) {
            self.migration.clone()
        } else {
            None
        };
        let mut items = items;
        let mut probe_results: Vec<(usize, T)> = Vec::new();
        let mut probe_offset = 0usize;
        if self.replication_threshold.is_some() || adapt_cfg.is_some() {
            let probe_n = items.len().min(4);
            let mut probe_means = vec![0.0f64; n_stages];
            let rest = items.split_off(probe_n);
            'probe: for (seq, item) in items.into_iter().enumerate() {
                probe_offset += 1;
                let mut current = item;
                for (i, stage) in self.stages.iter().enumerate() {
                    let t0 = Instant::now();
                    match apply_stage(stage, current, &service_times[i]) {
                        Some(out) => current = out,
                        None => {
                            failed.lock().push(seq);
                            continue 'probe;
                        }
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    probe_means[i] += dt / probe_n as f64;
                }
                probe_results.push((seq, current));
            }
            items = rest;
            let overall = probe_means.iter().sum::<f64>() / n_stages as f64;
            let threshold = self.replication_threshold.unwrap_or(f64::INFINITY);
            for (i, &m) in probe_means.iter().enumerate() {
                if overall > 0.0 && m > threshold * overall {
                    replicas_per_stage[i] = self.replicas;
                }
            }
        }

        // --------------------- engine calibration ---------------------
        // The probe's measured service times are the calibration sample:
        // Zₛ = policy over the observed per-stage services.  Breaches are
        // spaced by the monitor interval on the wall clock (the simulated
        // pipeline needs no such gate — its virtual times are noise-free).
        //
        // One single-stage engine **per stage**, not one shared engine:
        // stage windows are independent, so a shared engine would put one
        // global mutex on every stage's per-item hot path and serialise the
        // very parallelism the pipeline provides.  Per-stage engines keep
        // the contention scope identical to the per-stage `service_times`
        // locks the pipeline already takes.  (Consequence: the
        // recalibration budget and the action-spacing gate become
        // per-stage — immaterial here, since a stage activates its standby
        // at most once.)  The per-stage logs are merged time-ordered at the
        // end.
        let engines: Option<Vec<Mutex<AdaptationEngine>>> = adapt_cfg.map(|exec| {
            // Every engine carries the full Zₛ vector (so stage indices in
            // directives, thresholds and log entries line up), but engine i
            // only ever observes stage i.
            let thresholds: Vec<f64> = service_times
                .iter()
                .map(|m| exec.threshold.compute(&m.lock()))
                .collect();
            (0..n_stages)
                .map(|_| {
                    Mutex::new(
                        AdaptationEngine::for_stages(&exec, thresholds.clone())
                            .with_stage_action_interval(exec.monitor_interval_s),
                    )
                })
                .collect()
        });
        let clock = WallClock::start();
        let activated: Vec<AtomicBool> = (0..n_stages).map(|_| AtomicBool::new(false)).collect();
        let extra_replicas: Vec<AtomicUsize> = (0..n_stages).map(|_| AtomicUsize::new(0)).collect();

        // ----------------------------- plumbing -----------------------------
        // stage i reads from rx[i] and writes to tx[i+1]; the sink collects
        // (seq, item) pairs and reorders.
        let mut senders: Vec<Sender<(usize, T)>> = Vec::with_capacity(n_stages + 1);
        let mut receivers: Vec<Receiver<(usize, T)>> = Vec::with_capacity(n_stages + 1);
        for _ in 0..=n_stages {
            let (tx, rx) = bounded::<(usize, T)>(self.channel_capacity);
            senders.push(tx);
            receivers.push(rx);
        }
        // One standby worker per stage when the engine is on.  Activation
        // hands the standby its stage's channel endpoints *through* the
        // activation message, so an idle standby holds no endpoints and can
        // never keep the pipeline from draining: when the last real worker
        // of its stage exits, the activation channel closes and the standby
        // exits with it.  The third slot is a migration checkpoint: `None`
        // activates the standby as an extra replica, `Some(buf)` re-homes
        // the stage (the sender stops serving it) with `buf` holding the
        // drained queue in wire payload format.
        type Activation<T> = (Receiver<(usize, T)>, Sender<(usize, T)>, Option<Vec<u8>>);
        let mut act_txs: Vec<Sender<Activation<T>>> = Vec::new();
        let mut act_rxs: Vec<Receiver<Activation<T>>> = Vec::new();
        if engines.is_some() {
            for _ in 0..n_stages {
                let (tx, rx) = bounded::<Activation<T>>(1);
                act_txs.push(tx);
                act_rxs.push(rx);
            }
        }

        let collected: Mutex<BTreeMap<usize, T>> = Mutex::new(BTreeMap::new());
        for (seq, item) in probe_results {
            collected.lock().insert(seq, item);
        }

        std::thread::scope(|scope| {
            // Source: feed the remaining items with sequence numbers.
            let source_tx = senders[0].clone();
            scope.spawn(move || {
                for (seq, item) in items.into_iter().enumerate() {
                    if source_tx.send((probe_offset + seq, item)).is_err() {
                        break;
                    }
                }
            });

            // Stages.  A stage's worker count is its explicit replica count
            // (stage_replicated), raised to the probe-decided count when
            // bottleneck replication (with_replication) flagged the stage.
            let engines_ref = engines.as_ref();
            let clock_ref = &clock;
            for (i, stage) in self.stages.iter().enumerate() {
                let explicit = self.stage_replicas.get(i).copied().unwrap_or(1).max(1);
                let worker_count = explicit.max(replicas_per_stage[i]);
                replicas_per_stage[i] = worker_count;
                for _ in 0..worker_count {
                    let rx = receivers[i].clone();
                    let tx = senders[i + 1].clone();
                    let stage = Arc::clone(stage);
                    let times = &service_times[i];
                    let apply = &apply_stage;
                    let failed = &failed;
                    let act_tx = act_txs.get(i).cloned();
                    let activated = &activated;
                    let extra_replicas = &extra_replicas;
                    let codec = migration.as_ref();
                    scope.spawn(move || {
                        while let Ok((seq, item)) = rx.recv() {
                            let t0 = Instant::now();
                            match apply(&stage, item, times) {
                                Some(out) => {
                                    // Feed this stage's engine its observed
                                    // service time; a breach directive is
                                    // applied by activating the stage's
                                    // standby — as an extra replica, or
                                    // (with a migration codec) as the
                                    // stage's new home — once, first breach
                                    // wins.  An activated stage skips its
                                    // engine entirely: no further action is
                                    // possible for it, so observing on
                                    // would be pure lock traffic.
                                    let mut migrated_away = false;
                                    if !activated[i].load(Ordering::Relaxed) {
                                        if let Some(engines) = engines_ref {
                                            let service = t0.elapsed().as_secs_f64();
                                            let now = clock_ref.now();
                                            let mut eng = engines[i].lock();
                                            if let Some(AdaptationDirective::RemapStage {
                                                recent_mean,
                                                ..
                                            }) = eng.observe_stage(now, i, service)
                                            {
                                                if !activated[i].swap(true, Ordering::Relaxed) {
                                                    eng.try_consume_recalibration();
                                                    let checkpoint = codec.map(|(encode, _)| {
                                                        // Live migration:
                                                        // checkpoint the queued
                                                        // items through the wire
                                                        // payload format.  The
                                                        // drain frees channel
                                                        // slots, so the source
                                                        // never blocks on a
                                                        // stopped stage.
                                                        let mut drained = Vec::new();
                                                        while let Ok(q) = rx.try_recv() {
                                                            drained.push(q);
                                                        }
                                                        let mut w = ByteWriter::new();
                                                        w.put_u64(drained.len() as u64);
                                                        for (s, it) in &drained {
                                                            w.put_u64(*s as u64);
                                                            encode(it, &mut w);
                                                        }
                                                        (drained.len(), w.into_vec())
                                                    });
                                                    match checkpoint {
                                                        Some((count, buf)) => {
                                                            // The standby's home
                                                            // is named after its
                                                            // slot beyond the
                                                            // primary stage ids.
                                                            eng.note_stage_migrated(
                                                                now,
                                                                i,
                                                                NodeId(i),
                                                                NodeId(n_stages + i),
                                                                count,
                                                                recent_mean,
                                                            );
                                                            drop(eng);
                                                            if let Some(act_tx) = &act_tx {
                                                                let _ = act_tx.send((
                                                                    rx.clone(),
                                                                    tx.clone(),
                                                                    Some(buf),
                                                                ));
                                                            }
                                                            migrated_away = true;
                                                        }
                                                        None => {
                                                            extra_replicas[i]
                                                                .fetch_add(1, Ordering::Relaxed);
                                                            eng.note_stage_replicated(
                                                                now,
                                                                i,
                                                                worker_count + 1,
                                                                recent_mean,
                                                            );
                                                            drop(eng);
                                                            if let Some(act_tx) = &act_tx {
                                                                let _ = act_tx.send((
                                                                    rx.clone(),
                                                                    tx.clone(),
                                                                    None,
                                                                ));
                                                            }
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                    if tx.send((seq, out)).is_err() {
                                        break;
                                    }
                                    if migrated_away {
                                        // Re-homed, not replicated: the old
                                        // worker stops serving the stage.
                                        break;
                                    }
                                }
                                // Exhausted attempts: the item is dropped and
                                // the run reports a typed failure; the stream
                                // keeps flowing so other items finish.
                                None => failed.lock().push(seq),
                            }
                        }
                    });
                }
            }

            // Standby replicas: parked on their activation channel, holding
            // no stage endpoints until (unless) a breach hands them some.
            // A migration activation additionally ships the checkpointed
            // queue, replayed from the wire payload before the live queue.
            for (i, act_rx) in act_rxs.into_iter().enumerate() {
                let stage = Arc::clone(&self.stages[i]);
                let times = &service_times[i];
                let apply = &apply_stage;
                let failed = &failed;
                let codec = migration.as_ref();
                scope.spawn(move || {
                    if let Ok((rx, tx, checkpoint)) = act_rx.recv() {
                        if let Some(buf) = checkpoint {
                            let (_, decode) =
                                codec.expect("a checkpoint only ships when a codec is configured");
                            let mut r = ByteReader::new(&buf);
                            let count = r.take_u64().unwrap_or(0);
                            for _ in 0..count {
                                let Ok(seq) = r.take_u64() else { break };
                                let seq = seq as usize;
                                match decode(&mut r) {
                                    Ok(item) => match apply(&stage, item, times) {
                                        Some(out) => {
                                            if tx.send((seq, out)).is_err() {
                                                return;
                                            }
                                        }
                                        None => failed.lock().push(seq),
                                    },
                                    // A checkpoint that cannot be decoded
                                    // loses its remaining items: report
                                    // them failed rather than hang the
                                    // reorder sink.
                                    Err(_) => {
                                        failed.lock().push(seq);
                                        break;
                                    }
                                }
                            }
                        }
                        while let Ok((seq, item)) = rx.recv() {
                            match apply(&stage, item, times) {
                                Some(out) => {
                                    if tx.send((seq, out)).is_err() {
                                        break;
                                    }
                                }
                                None => failed.lock().push(seq),
                            }
                        }
                    }
                });
            }

            // Sink.
            let sink_rx = receivers[n_stages].clone();
            let collected = &collected;
            scope.spawn(move || {
                while let Ok((seq, item)) = sink_rx.recv() {
                    collected.lock().insert(seq, item);
                }
            });

            // Drop the original channel endpoints held by this thread so the
            // pipeline drains and every stage thread terminates.  The
            // activation senders go with them: once a stage's real workers
            // exit, its (unactivated) standby sees the closed channel and
            // exits too.
            drop(senders);
            drop(receivers);
            drop(act_txs);
        });

        let ordered: Vec<T> = {
            let mut map = collected.into_inner();
            let mut out = Vec::with_capacity(n_items);
            let mut keys: Vec<usize> = map.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                if let Some(v) = map.remove(&k) {
                    out.push(v);
                }
            }
            out
        };

        let mean_stage_service: Vec<f64> = service_times
            .iter()
            .map(|m| mean(&m.lock()).unwrap_or(0.0))
            .collect();
        let items_per_stage: Vec<usize> = service_times.iter().map(|m| m.lock().len()).collect();
        let bottleneck_stage = mean_stage_service
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);

        let failed = failed.into_inner();
        if let Some(&seq) = failed.iter().min() {
            return Err(GraspError::WorkerFailed {
                task: seq,
                attempts: max_attempts,
            });
        }

        // Mid-run activations raise the reported worker counts.
        for (r, extra) in replicas_per_stage.iter_mut().zip(&extra_replicas) {
            *r += extra.load(Ordering::Relaxed);
        }
        // Merge the per-stage engine logs back into one chronological trail.
        let adaptation = match engines {
            Some(engines) => {
                let mut events: Vec<_> = engines
                    .into_iter()
                    .flat_map(|m| m.into_inner().into_log().events().to_vec())
                    .collect();
                events.sort_by(|a, b| {
                    a.time
                        .partial_cmp(&b.time)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut log = AdaptationLog::new();
                for e in events {
                    log.record(e.time, e.action, e.threshold, e.trigger_value);
                }
                log
            }
            None => AdaptationLog::new(),
        };
        Ok((
            ordered,
            PipelineStats {
                mean_stage_service,
                items_per_stage,
                bottleneck_stage,
                replicas_per_stage,
                total: started.elapsed(),
                panics: panics.into_inner(),
                retried: retried.into_inner(),
                adaptation,
            },
        ))
    }
}

impl<T: Send + 'static> Default for ThreadPipeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::spin;

    #[test]
    fn items_flow_through_all_stages_in_order() {
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage(|x: u64| x * 2)
            .stage(|x: u64| x - 3);
        let items: Vec<u64> = (10..110).collect();
        let (out, stats) = pipeline.run(items.clone());
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 2 - 3).collect();
        assert_eq!(out, expected);
        assert_eq!(stats.items_per_stage, vec![100, 100, 100]);
        assert_eq!(stats.replicas_per_stage, vec![1, 1, 1]);
        assert!(stats.throughput(100) > 0.0);
    }

    #[test]
    fn empty_stream_and_empty_pipeline_are_noops() {
        let pipeline: ThreadPipeline<u64> = ThreadPipeline::new().stage(|x| x);
        let (out, _) = pipeline.run(Vec::new());
        assert!(out.is_empty());

        let empty: ThreadPipeline<u64> = ThreadPipeline::new();
        let (out, stats) = empty.run(vec![1, 2, 3]);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.bottleneck_stage, 0);
    }

    #[test]
    fn bottleneck_stage_is_identified() {
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage(|x: u64| spin(20_000) ^ x) // deliberately heavy
            .stage(|x: u64| x | 1);
        let items: Vec<u64> = (0..60).collect();
        let (_, stats) = pipeline.run(items);
        assert_eq!(stats.bottleneck_stage, 1);
        assert!(stats.mean_stage_service[1] >= stats.mean_stage_service[0]);
    }

    #[test]
    fn replication_keeps_results_ordered_and_helps_the_bottleneck() {
        let make = |replicated: bool| {
            let p = ThreadPipeline::new()
                .stage(|x: u64| x + 1)
                .stage(|x: u64| {
                    std::hint::black_box(spin(40_000));
                    x * 2
                })
                .stage(|x: u64| x + 5)
                .with_channel_capacity(8);
            if replicated {
                p.with_replication(1.5, 3)
            } else {
                p
            }
        };
        let items: Vec<u64> = (0..120).collect();
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 2 + 5).collect();

        let (out_plain, stats_plain) = make(false).run(items.clone());
        let (out_repl, stats_repl) = make(true).run(items);
        assert_eq!(out_plain, expected);
        assert_eq!(out_repl, expected, "replication must preserve order");
        assert!(stats_repl.replicas_per_stage.iter().any(|&r| r > 1));
        assert_eq!(stats_plain.replicas_per_stage, vec![1, 1, 1]);
    }

    #[test]
    fn per_stage_replication_preserves_order_and_reports_workers() {
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage_replicated(
                |x: u64| {
                    std::hint::black_box(spin(10_000));
                    x * 3
                },
                3,
            )
            .stage(|x: u64| x - 2);
        let items: Vec<u64> = (0..80).collect();
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 3 - 2).collect();
        let (out, stats) = pipeline.run(items);
        assert_eq!(out, expected, "farmed stage must preserve stream order");
        assert_eq!(stats.replicas_per_stage, vec![1, 3, 1]);
        assert_eq!(stats.items_per_stage, vec![80, 80, 80]);
    }

    #[test]
    fn stage_count_reports_stages() {
        let p: ThreadPipeline<u64> = ThreadPipeline::new().stage(|x| x).stage(|x| x);
        assert_eq!(p.stage_count(), 2);
    }

    #[test]
    fn engine_breach_activates_the_standby_replica_mid_run() {
        use grasp_core::ThresholdPolicy;
        use std::sync::atomic::AtomicUsize;
        // Stage 1 is healthy while the probe calibrates Zₛ, then degrades
        // 40x from item 30 on — the wall-clock analogue of the grid
        // pipeline's mid-run load spike.  The engine must notice the breach
        // and replicate the stage by activating its standby worker.
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        let hook = done.clone();
        let exec = ExecutionConfig {
            threshold: ThresholdPolicy::Factor { factor: 3.0 },
            monitor_interval_s: 1e-4, // wall seconds: evaluate immediately
            ..ExecutionConfig::default()
        };
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| {
                spin(2_000);
                x + 1
            })
            .stage(move |x: u64| {
                let n = hook.fetch_add(1, Ordering::Relaxed);
                spin(if n >= 30 { 80_000 } else { 2_000 });
                x * 2
            })
            .with_adaptation(exec);
        let items: Vec<u64> = (0..150).collect();
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 2).collect();
        let (out, stats) = pipeline
            .try_run(items)
            .expect("adaptation must not fail the run");
        assert_eq!(out, expected, "replication preserves order and results");
        assert_eq!(stats.items_per_stage, vec![150, 150]);
        // The degraded stage must have been replicated; a noisy shared
        // machine may additionally replicate the other stage spuriously,
        // which is legal adaptation, so only stage 1 is asserted exactly.
        assert!(
            stats.adaptation.stage_replications() >= 1,
            "{}",
            stats.adaptation.summary()
        );
        assert_eq!(
            stats.replicas_per_stage[1], 2,
            "the degraded stage gained its standby: {:?}",
            stats.replicas_per_stage
        );
    }

    #[test]
    fn engine_breach_migrates_the_stage_when_a_codec_is_configured() {
        use grasp_core::ThresholdPolicy;
        use std::sync::atomic::AtomicUsize;
        // Same breach as the replication test, but the config asks for
        // migration and the pipeline has a checkpoint codec: the degraded
        // stage must be re-homed on its standby (queued items round-tripped
        // through the wire payload), not replicated — the worker count
        // stays 1 and the log says StageMigrated.
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        let hook = done.clone();
        let exec = ExecutionConfig {
            threshold: ThresholdPolicy::Factor { factor: 3.0 },
            monitor_interval_s: 1e-4,
            migrate_stages: true,
            ..ExecutionConfig::default()
        };
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| {
                crate::backend::spin(2_000);
                x + 1
            })
            .stage(move |x: u64| {
                let n = hook.fetch_add(1, Ordering::Relaxed);
                crate::backend::spin(if n >= 30 { 80_000 } else { 2_000 });
                x * 2
            })
            .with_adaptation(exec)
            .with_migration(|x, w| w.put_u64(*x), |r| r.take_u64());
        let items: Vec<u64> = (0..150).collect();
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 2).collect();
        let (out, stats) = pipeline
            .try_run(items)
            .expect("migration must not fail the run");
        assert_eq!(out, expected, "migration preserves order and results");
        assert_eq!(stats.items_per_stage, vec![150, 150]);
        assert!(
            stats.adaptation.stage_migrations() >= 1,
            "{}",
            stats.adaptation.summary()
        );
        assert_eq!(
            stats.adaptation.stage_replications(),
            0,
            "migration replaces replication: {}",
            stats.adaptation.summary()
        );
        assert_eq!(
            stats.replicas_per_stage,
            vec![1, 1],
            "a re-homed stage gains no workers"
        );
    }

    #[test]
    fn migration_config_without_a_codec_falls_back_to_replication() {
        use grasp_core::ThresholdPolicy;
        use std::sync::atomic::AtomicUsize;
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        let hook = done.clone();
        let exec = ExecutionConfig {
            threshold: ThresholdPolicy::Factor { factor: 3.0 },
            monitor_interval_s: 1e-4,
            migrate_stages: true,
            ..ExecutionConfig::default()
        };
        let pipeline = ThreadPipeline::new()
            .stage(move |x: u64| {
                let n = hook.fetch_add(1, Ordering::Relaxed);
                crate::backend::spin(if n >= 30 { 80_000 } else { 2_000 });
                x * 2
            })
            .with_adaptation(exec);
        let items: Vec<u64> = (0..120).collect();
        let (out, stats) = pipeline.try_run(items).expect("fallback must not fail");
        assert_eq!(out.len(), 120);
        assert_eq!(
            stats.adaptation.stage_migrations(),
            0,
            "no codec, no checkpoint, no migration: {}",
            stats.adaptation.summary()
        );
    }

    #[test]
    fn disabled_adaptation_keeps_the_log_empty_and_spawns_no_replicas() {
        let exec = ExecutionConfig {
            adaptive: false,
            monitor_interval_s: 1e-4,
            ..ExecutionConfig::default()
        };
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| {
                spin(20_000);
                x + 1
            })
            .with_adaptation(exec);
        let (out, stats) = pipeline.run((0..40).collect());
        assert_eq!(out.len(), 40);
        assert!(stats.adaptation.is_empty());
        assert_eq!(stats.replicas_per_stage, vec![1]);
    }

    #[test]
    fn transient_stage_panic_is_retried_in_place() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fail_once = std::sync::Arc::new(AtomicUsize::new(1));
        let hook = fail_once.clone();
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage(move |x: u64| {
                if x == 31
                    && hook
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected transient stage fault");
                }
                x * 2
            });
        let items: Vec<u64> = (0..80).collect();
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 2).collect();
        let (out, stats) = pipeline
            .try_run(items)
            .expect("transient stage fault must be survivable");
        assert_eq!(out, expected, "order and completeness survive the retry");
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.retried, 1);
    }

    #[test]
    fn persistent_stage_panic_yields_a_typed_error() {
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| {
                if x == 5 {
                    panic!("permanently broken item");
                }
                x
            })
            .with_max_task_attempts(2);
        let err = pipeline
            .try_run((0..20).collect())
            .expect_err("an item failing every attempt must error");
        match err {
            grasp_core::error::GraspError::WorkerFailed { task, attempts } => {
                assert_eq!(task, 5);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
