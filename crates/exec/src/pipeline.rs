//! A real-thread pipeline.
//!
//! Each stage runs on its own thread; items flow through bounded channels and
//! are re-assembled in submission order at the sink.  Per-stage service times
//! are measured while the stream runs, and the resulting statistics identify
//! the bottleneck stage — the shared-memory analogue of the information the
//! grid pipeline uses to decide remapping.  An optional adaptation replicates
//! the bottleneck stage across `replicas` worker threads when its measured
//! service time exceeds `replication_threshold` times the mean stage time.
//!
//! Stage execution is **fault-isolated**: a panic inside a stage closure is
//! caught with `catch_unwind` and the item is retried in place, bounded by
//! the configured attempt budget (the worker clones the item before an
//! attempt only while a further retry is still permitted — the final attempt
//! moves it).  An item that fails every attempt turns the run into a typed
//! [`GraspError::WorkerFailed`] instead of tearing down the process.

use crossbeam::channel::{bounded, Receiver, Sender};
use grasp_core::error::GraspError;
use gridstats::mean;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A boxed stage function.
pub type StageFn<T> = Box<dyn Fn(T) -> T + Send + Sync>;

/// Per-run statistics reported by [`ThreadPipeline::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStats {
    /// Mean service time per stage (seconds per item).
    pub mean_stage_service: Vec<f64>,
    /// Items processed per stage (equals the stream length for every stage).
    pub items_per_stage: Vec<usize>,
    /// Index of the slowest stage.
    pub bottleneck_stage: usize,
    /// Worker threads used per stage (1 unless the stage was replicated).
    pub replicas_per_stage: Vec<usize>,
    /// Wall-clock duration of the whole run.
    pub total: Duration,
    /// Stage panics caught and isolated during the run.
    pub panics: usize,
    /// Items re-executed after a panicked attempt that ultimately completed.
    pub retried: usize,
}

impl PipelineStats {
    /// Throughput in items per second over the whole run.
    pub fn throughput(&self, items: usize) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            items as f64 / secs
        }
    }
}

/// A shared-memory pipeline over stages of type `T -> T`.
pub struct ThreadPipeline<T> {
    stages: Vec<Arc<StageFn<T>>>,
    /// Explicit per-stage worker counts (1 = plain stage).  The skeleton
    /// layer uses this to realise a pipeline-of-farms: a farmed stage gets
    /// its replica count of worker threads.
    stage_replicas: Vec<usize>,
    channel_capacity: usize,
    /// Replicate a stage when its mean service exceeds this multiple of the
    /// mean over all stages (`None` disables replication).
    replication_threshold: Option<f64>,
    /// How many worker threads a replicated stage receives.
    replicas: usize,
    /// How many times one item may be attempted at one stage before the run
    /// is declared failed.
    max_task_attempts: usize,
}

impl<T: Send + 'static> ThreadPipeline<T> {
    /// A pipeline with no stages (add them with [`ThreadPipeline::stage`]).
    pub fn new() -> Self {
        ThreadPipeline {
            stages: Vec::new(),
            stage_replicas: Vec::new(),
            channel_capacity: 16,
            replication_threshold: None,
            replicas: 2,
            max_task_attempts: 3,
        }
    }

    /// Append a stage.
    pub fn stage(mut self, f: impl Fn(T) -> T + Send + Sync + 'static) -> Self {
        self.stages.push(Arc::new(Box::new(f)));
        self.stage_replicas.push(1);
        self
    }

    /// Append a stage farmed across `replicas` worker threads (clamped to
    /// ≥ 1) — the shared-memory realisation of a nested farm stage inside a
    /// pipeline.  Result order is still preserved by the reordering sink.
    pub fn stage_replicated(
        mut self,
        f: impl Fn(T) -> T + Send + Sync + 'static,
        replicas: usize,
    ) -> Self {
        self.stages.push(Arc::new(Box::new(f)));
        self.stage_replicas.push(replicas.max(1));
        self
    }

    /// Override the bounded-channel capacity between stages.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Enable bottleneck replication: a stage whose mean service time exceeds
    /// `threshold ×` the all-stage mean is given `replicas` worker threads.
    /// The decision is made from a short probe prefix of the stream.
    pub fn with_replication(mut self, threshold: f64, replicas: usize) -> Self {
        self.replication_threshold = Some(threshold.max(1.0));
        self.replicas = replicas.max(2);
        self
    }

    /// Override how many times one item may be attempted at one stage before
    /// the run fails (clamped to ≥ 1; the default is 3).
    pub fn with_max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Run the stream through the pipeline, returning the transformed items
    /// in submission order plus statistics.  An empty stage list returns the
    /// input unchanged.
    ///
    /// Panics (with the [`GraspError`] message) if an item fails a stage on
    /// every allowed attempt; use [`ThreadPipeline::try_run`] for the
    /// fallible path.
    pub fn run(&self, items: Vec<T>) -> (Vec<T>, PipelineStats)
    where
        T: Clone,
    {
        self.try_run(items)
            .unwrap_or_else(|e| panic!("ThreadPipeline::run failed: {e}"))
    }

    /// Run the stream through the pipeline, returning the transformed items
    /// in submission order plus statistics, or a typed error when an item
    /// exhausts its per-stage retry budget.  An empty stage list returns the
    /// input unchanged.
    pub fn try_run(&self, items: Vec<T>) -> Result<(Vec<T>, PipelineStats), GraspError>
    where
        T: Clone,
    {
        let started = Instant::now();
        let n_stages = self.stages.len();
        let n_items = items.len();
        if n_stages == 0 || n_items == 0 {
            return Ok((
                items,
                PipelineStats {
                    mean_stage_service: vec![0.0; n_stages],
                    items_per_stage: vec![0; n_stages],
                    bottleneck_stage: 0,
                    replicas_per_stage: vec![1; n_stages],
                    total: started.elapsed(),
                    panics: 0,
                    retried: 0,
                },
            ));
        }

        let mut replicas_per_stage = vec![1usize; n_stages];
        let service_times: Vec<Mutex<Vec<f64>>> =
            (0..n_stages).map(|_| Mutex::new(Vec::new())).collect();
        let max_attempts = self.max_task_attempts;
        let panics = AtomicUsize::new(0);
        let retried = AtomicUsize::new(0);
        // Sequence numbers of items that failed a stage on every attempt.
        let failed: Mutex<Vec<usize>> = Mutex::new(Vec::new());

        // Execute one stage over one item with panic isolation and bounded
        // in-place retries.  The item is cloned before an attempt only while
        // a further retry is still permitted (a panicking attempt consumes
        // its input); the final attempt moves the item, so a pipeline with
        // `max_task_attempts == 1` never clones at all.  Returns `None` when
        // every attempt panicked.
        let apply_stage = |stage: &StageFn<T>, item: T, times: &Mutex<Vec<f64>>| -> Option<T> {
            let mut slot = Some(item);
            for attempt in 0..max_attempts {
                let last = attempt + 1 == max_attempts;
                let input = if last {
                    slot.take()
                        .expect("slot holds the item until the last attempt")
                } else {
                    slot.as_ref()
                        .expect("slot holds the item until the last attempt")
                        .clone()
                };
                let t0 = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| stage(input))) {
                    Ok(out) => {
                        times.lock().push(t0.elapsed().as_secs_f64());
                        if attempt > 0 {
                            retried.fetch_add(1, Ordering::Relaxed);
                        }
                        return Some(out);
                    }
                    Err(_) => {
                        panics.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            None
        };

        // ------------------------------ probe -------------------------------
        // Decide replication from a short probe prefix of the stream, run
        // sequentially through each stage (cheap relative to the stream): a
        // stage whose probe-mean service exceeds `threshold ×` the all-stage
        // probe mean is the bottleneck and receives `self.replicas` workers.
        let mut items = items;
        let mut probe_results: Vec<(usize, T)> = Vec::new();
        let mut probe_offset = 0usize;
        if self.replication_threshold.is_some() {
            let probe_n = items.len().min(4);
            let mut probe_means = vec![0.0f64; n_stages];
            let rest = items.split_off(probe_n);
            'probe: for (seq, item) in items.into_iter().enumerate() {
                probe_offset += 1;
                let mut current = item;
                for (i, stage) in self.stages.iter().enumerate() {
                    let t0 = Instant::now();
                    match apply_stage(stage, current, &service_times[i]) {
                        Some(out) => current = out,
                        None => {
                            failed.lock().push(seq);
                            continue 'probe;
                        }
                    }
                    let dt = t0.elapsed().as_secs_f64();
                    probe_means[i] += dt / probe_n as f64;
                }
                probe_results.push((seq, current));
            }
            items = rest;
            let overall = probe_means.iter().sum::<f64>() / n_stages as f64;
            let threshold = self.replication_threshold.unwrap_or(f64::INFINITY);
            for (i, &m) in probe_means.iter().enumerate() {
                if overall > 0.0 && m > threshold * overall {
                    replicas_per_stage[i] = self.replicas;
                }
            }
        }

        // ----------------------------- plumbing -----------------------------
        // stage i reads from rx[i] and writes to tx[i+1]; the sink collects
        // (seq, item) pairs and reorders.
        let mut senders: Vec<Sender<(usize, T)>> = Vec::with_capacity(n_stages + 1);
        let mut receivers: Vec<Receiver<(usize, T)>> = Vec::with_capacity(n_stages + 1);
        for _ in 0..=n_stages {
            let (tx, rx) = bounded::<(usize, T)>(self.channel_capacity);
            senders.push(tx);
            receivers.push(rx);
        }

        let collected: Mutex<BTreeMap<usize, T>> = Mutex::new(BTreeMap::new());
        for (seq, item) in probe_results {
            collected.lock().insert(seq, item);
        }

        std::thread::scope(|scope| {
            // Source: feed the remaining items with sequence numbers.
            let source_tx = senders[0].clone();
            scope.spawn(move || {
                for (seq, item) in items.into_iter().enumerate() {
                    if source_tx.send((probe_offset + seq, item)).is_err() {
                        break;
                    }
                }
            });

            // Stages.  A stage's worker count is its explicit replica count
            // (stage_replicated), raised to the probe-decided count when
            // bottleneck replication (with_replication) flagged the stage.
            for (i, stage) in self.stages.iter().enumerate() {
                let explicit = self.stage_replicas.get(i).copied().unwrap_or(1).max(1);
                let worker_count = explicit.max(replicas_per_stage[i]);
                replicas_per_stage[i] = worker_count;
                for _ in 0..worker_count {
                    let rx = receivers[i].clone();
                    let tx = senders[i + 1].clone();
                    let stage = Arc::clone(stage);
                    let times = &service_times[i];
                    let apply = &apply_stage;
                    let failed = &failed;
                    scope.spawn(move || {
                        while let Ok((seq, item)) = rx.recv() {
                            match apply(&stage, item, times) {
                                Some(out) => {
                                    if tx.send((seq, out)).is_err() {
                                        break;
                                    }
                                }
                                // Exhausted attempts: the item is dropped and
                                // the run reports a typed failure; the stream
                                // keeps flowing so other items finish.
                                None => failed.lock().push(seq),
                            }
                        }
                    });
                }
            }

            // Sink.
            let sink_rx = receivers[n_stages].clone();
            let collected = &collected;
            scope.spawn(move || {
                while let Ok((seq, item)) = sink_rx.recv() {
                    collected.lock().insert(seq, item);
                }
            });

            // Drop the original channel endpoints held by this thread so the
            // pipeline drains and every stage thread terminates.
            drop(senders);
            drop(receivers);
        });

        let ordered: Vec<T> = {
            let mut map = collected.into_inner();
            let mut out = Vec::with_capacity(n_items);
            let mut keys: Vec<usize> = map.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                if let Some(v) = map.remove(&k) {
                    out.push(v);
                }
            }
            out
        };

        let mean_stage_service: Vec<f64> = service_times
            .iter()
            .map(|m| mean(&m.lock()).unwrap_or(0.0))
            .collect();
        let items_per_stage: Vec<usize> = service_times.iter().map(|m| m.lock().len()).collect();
        let bottleneck_stage = mean_stage_service
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);

        let failed = failed.into_inner();
        if let Some(&seq) = failed.iter().min() {
            return Err(GraspError::WorkerFailed {
                task: seq,
                attempts: max_attempts,
            });
        }

        Ok((
            ordered,
            PipelineStats {
                mean_stage_service,
                items_per_stage,
                bottleneck_stage,
                replicas_per_stage,
                total: started.elapsed(),
                panics: panics.into_inner(),
                retried: retried.into_inner(),
            },
        ))
    }
}

impl<T: Send + 'static> Default for ThreadPipeline<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::spin;

    #[test]
    fn items_flow_through_all_stages_in_order() {
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage(|x: u64| x * 2)
            .stage(|x: u64| x - 3);
        let items: Vec<u64> = (10..110).collect();
        let (out, stats) = pipeline.run(items.clone());
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 2 - 3).collect();
        assert_eq!(out, expected);
        assert_eq!(stats.items_per_stage, vec![100, 100, 100]);
        assert_eq!(stats.replicas_per_stage, vec![1, 1, 1]);
        assert!(stats.throughput(100) > 0.0);
    }

    #[test]
    fn empty_stream_and_empty_pipeline_are_noops() {
        let pipeline: ThreadPipeline<u64> = ThreadPipeline::new().stage(|x| x);
        let (out, _) = pipeline.run(Vec::new());
        assert!(out.is_empty());

        let empty: ThreadPipeline<u64> = ThreadPipeline::new();
        let (out, stats) = empty.run(vec![1, 2, 3]);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.bottleneck_stage, 0);
    }

    #[test]
    fn bottleneck_stage_is_identified() {
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage(|x: u64| spin(20_000) ^ x) // deliberately heavy
            .stage(|x: u64| x | 1);
        let items: Vec<u64> = (0..60).collect();
        let (_, stats) = pipeline.run(items);
        assert_eq!(stats.bottleneck_stage, 1);
        assert!(stats.mean_stage_service[1] >= stats.mean_stage_service[0]);
    }

    #[test]
    fn replication_keeps_results_ordered_and_helps_the_bottleneck() {
        let make = |replicated: bool| {
            let p = ThreadPipeline::new()
                .stage(|x: u64| x + 1)
                .stage(|x: u64| {
                    std::hint::black_box(spin(40_000));
                    x * 2
                })
                .stage(|x: u64| x + 5)
                .with_channel_capacity(8);
            if replicated {
                p.with_replication(1.5, 3)
            } else {
                p
            }
        };
        let items: Vec<u64> = (0..120).collect();
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 2 + 5).collect();

        let (out_plain, stats_plain) = make(false).run(items.clone());
        let (out_repl, stats_repl) = make(true).run(items);
        assert_eq!(out_plain, expected);
        assert_eq!(out_repl, expected, "replication must preserve order");
        assert!(stats_repl.replicas_per_stage.iter().any(|&r| r > 1));
        assert_eq!(stats_plain.replicas_per_stage, vec![1, 1, 1]);
    }

    #[test]
    fn per_stage_replication_preserves_order_and_reports_workers() {
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage_replicated(
                |x: u64| {
                    std::hint::black_box(spin(10_000));
                    x * 3
                },
                3,
            )
            .stage(|x: u64| x - 2);
        let items: Vec<u64> = (0..80).collect();
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 3 - 2).collect();
        let (out, stats) = pipeline.run(items);
        assert_eq!(out, expected, "farmed stage must preserve stream order");
        assert_eq!(stats.replicas_per_stage, vec![1, 3, 1]);
        assert_eq!(stats.items_per_stage, vec![80, 80, 80]);
    }

    #[test]
    fn stage_count_reports_stages() {
        let p: ThreadPipeline<u64> = ThreadPipeline::new().stage(|x| x).stage(|x| x);
        assert_eq!(p.stage_count(), 2);
    }

    #[test]
    fn transient_stage_panic_is_retried_in_place() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let fail_once = std::sync::Arc::new(AtomicUsize::new(1));
        let hook = fail_once.clone();
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| x + 1)
            .stage(move |x: u64| {
                if x == 31
                    && hook
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
                        .is_ok()
                {
                    panic!("injected transient stage fault");
                }
                x * 2
            });
        let items: Vec<u64> = (0..80).collect();
        let expected: Vec<u64> = items.iter().map(|x| (x + 1) * 2).collect();
        let (out, stats) = pipeline
            .try_run(items)
            .expect("transient stage fault must be survivable");
        assert_eq!(out, expected, "order and completeness survive the retry");
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.retried, 1);
    }

    #[test]
    fn persistent_stage_panic_yields_a_typed_error() {
        let pipeline = ThreadPipeline::new()
            .stage(|x: u64| {
                if x == 5 {
                    panic!("permanently broken item");
                }
                x
            })
            .with_max_task_attempts(2);
        let err = pipeline
            .try_run((0..20).collect())
            .expect_err("an item failing every attempt must error");
        match err {
            grasp_core::error::GraspError::WorkerFailed { task, attempts } => {
                assert_eq!(task, 5);
                assert_eq!(attempts, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
