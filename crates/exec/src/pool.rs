//! A resident worker pool, leased per dispatch round.
//!
//! [`crate::farm::ThreadFarm`] owns its workers for exactly one run: every
//! `Grasp::run` spawns a fresh scoped pool, pays the thread start-up cost,
//! and tears everything down at the end.  That is the right shape for a
//! one-shot job, and the wrong shape for a *service* that executes many
//! small jobs back to back — there the pool must outlive any single job.
//!
//! [`WorkerPool`] provides that residency: `workers` threads are spawned
//! once and then serve an arbitrary number of **dispatch rounds**.  A round
//! is obtained by taking a [`PoolLease`] (exclusive — one round at a time,
//! mirroring the one-master discipline of the other backends) and calling
//! [`PoolLease::run`] with a task list.  Workers pull tasks demand-driven
//! off a shared cursor, exactly like the farm's chunk loop, and the lease
//! returns when every task has completed.
//!
//! Fault isolation follows the farm's rules at round granularity: a handler
//! panic is caught, the task is retried on the next attempt pass (panicked
//! tasks of one pass become the task list of the next), and a task that
//! fails every bounded attempt surfaces as [`GraspError::WorkerFailed`].
//! Workers can be taken out of rotation with [`WorkerPool::set_active`]
//! (the demotion hook for an adaptation engine driving the pool); the last
//! active worker can never be deactivated, so a leased round always drains.

use grasp_core::error::GraspError;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One in-flight dispatch round: the shared cursor the workers pull from
/// and the slots they deliver into.
struct Round<T, R> {
    /// `(original index, task)` pairs for this attempt pass.
    tasks: Vec<(usize, T)>,
    cursor: AtomicUsize,
    /// Delivered results, `(original index, result)`.
    results: Mutex<Vec<(usize, R)>>,
    /// Original indices whose handler panicked in this pass.
    panicked: Mutex<Vec<usize>>,
    /// Units completed per worker in this pass.
    per_worker: Vec<AtomicUsize>,
    /// Workers that have drained the cursor; the lease waits for all.
    finished: Mutex<usize>,
    finished_cv: Condvar,
}

/// The per-unit handler a pool runs: `(worker index, task) -> result`.
type Handler<T, R> = Box<dyn Fn(usize, &T) -> R + Send + Sync>;

/// The versioned current round: sleeping workers detect a new one by the
/// counter; `None` between rounds.
type RoundState<T, R> = Mutex<(u64, Option<Arc<Round<T, R>>>)>;

/// State shared between the pool handle and its resident threads.
struct Shared<T, R> {
    handler: Handler<T, R>,
    state: RoundState<T, R>,
    wake: Condvar,
    /// Per-worker rotation flags (`false` = demoted: stops pulling).
    active: Vec<AtomicBool>,
    shutdown: AtomicBool,
    rounds: AtomicU64,
}

/// A resident pool of `workers` threads executing demand-driven dispatch
/// rounds (see the module docs).  Dropping the pool shuts the threads down.
pub struct WorkerPool<T: Send + Sync + 'static, R: Send + 'static> {
    shared: Arc<Shared<T, R>>,
    lease_gate: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

/// Exclusive access to the pool for dispatch rounds; obtained from
/// [`WorkerPool::lease`] and released on drop.
pub struct PoolLease<'p, T: Send + Sync + 'static, R: Send + 'static> {
    pool: &'p WorkerPool<T, R>,
    _guard: MutexGuard<'p, ()>,
}

/// What one completed dispatch round delivered.
#[derive(Debug)]
pub struct RoundOutcome<R> {
    /// One result per submitted task, in submission order.
    pub results: Vec<R>,
    /// Handler panics absorbed across all attempt passes.
    pub panics: usize,
    /// Tasks that completed only after at least one failed attempt.
    pub retried: usize,
    /// Execution attempts per task, in submission order (1 = completed
    /// cleanly on the first pull).
    pub attempts: Vec<usize>,
    /// Tasks completed per worker (successful attempts only).
    pub completed_per_worker: Vec<usize>,
}

impl<T: Send + Sync + 'static, R: Send + 'static> WorkerPool<T, R> {
    /// Spawn `workers` resident threads executing `handler(worker, &task)`
    /// for every task of every future round.
    pub fn start<F>(workers: usize, handler: F) -> Self
    where
        F: Fn(usize, &T) -> R + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            handler: Box::new(handler),
            state: Mutex::new((0, None)),
            wake: Condvar::new(),
            active: (0..workers).map(|_| AtomicBool::new(true)).collect(),
            shutdown: AtomicBool::new(false),
            rounds: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("grasp-pool-{wid}"))
                    .spawn(move || worker_loop(wid, shared))
                    .expect("spawning a pool worker thread failed")
            })
            .collect();
        WorkerPool {
            shared,
            lease_gate: Mutex::new(()),
            handles,
        }
    }

    /// Number of resident worker threads (fixed for the pool's lifetime).
    pub fn workers(&self) -> usize {
        self.shared.active.len()
    }

    /// Workers currently in rotation.
    pub fn active_workers(&self) -> usize {
        self.shared
            .active
            .iter()
            .filter(|a| a.load(Ordering::Relaxed))
            .count()
    }

    /// Whether `worker` is currently in rotation.
    pub fn is_active(&self, worker: usize) -> bool {
        self.shared
            .active
            .get(worker)
            .map(|a| a.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Put `worker` in or out of rotation; returns whether the flag changed.
    /// Deactivating is refused when it would leave no active worker (a
    /// leased round must always be able to drain).
    pub fn set_active(&self, worker: usize, active: bool) -> bool {
        let Some(flag) = self.shared.active.get(worker) else {
            return false;
        };
        if !active && self.active_workers() <= 1 && flag.load(Ordering::Relaxed) {
            return false;
        }
        flag.swap(active, Ordering::Relaxed) != active
    }

    /// Dispatch rounds completed so far (attempt passes count once).
    pub fn rounds(&self) -> u64 {
        self.shared.rounds.load(Ordering::Relaxed)
    }

    /// Take the pool for a sequence of dispatch rounds; blocks while
    /// another lease is alive.
    pub fn lease(&self) -> PoolLease<'_, T, R> {
        PoolLease {
            pool: self,
            _guard: self.lease_gate.lock(),
        }
    }
}

impl<T: Send + Sync + 'static, R: Send + 'static> Drop for WorkerPool<T, R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<T: Send + Sync + 'static, R: Send + 'static> PoolLease<'_, T, R> {
    /// Execute `tasks` on the resident pool, retrying panicked tasks up to
    /// `max_attempts` times each, and return the collected results in
    /// submission order.
    ///
    /// Errors with [`GraspError::WorkerFailed`] when one task panicked on
    /// every attempt.
    pub fn run(&self, tasks: Vec<T>, max_attempts: usize) -> Result<RoundOutcome<R>, GraspError>
    where
        T: Clone,
    {
        let shared = &self.pool.shared;
        let workers = self.pool.workers();
        let n = tasks.len();
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut per_worker = vec![0usize; workers];
        let mut attempts_per_task = vec![0usize; n];
        let mut panics = 0usize;
        let mut retried = 0usize;
        let max_attempts = max_attempts.max(1);
        let mut pass: Vec<(usize, T)> = tasks.into_iter().enumerate().collect();
        let mut attempt = 0usize;
        while !pass.is_empty() {
            attempt += 1;
            let round = Arc::new(Round {
                tasks: pass,
                cursor: AtomicUsize::new(0),
                results: Mutex::new(Vec::new()),
                panicked: Mutex::new(Vec::new()),
                per_worker: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
                finished: Mutex::new(0),
                finished_cv: Condvar::new(),
            });
            {
                let mut state = shared.state.lock();
                state.0 += 1;
                state.1 = Some(Arc::clone(&round));
            }
            shared.wake.notify_all();
            {
                let mut finished = round.finished.lock();
                while *finished < workers {
                    round.finished_cv.wait(&mut finished);
                }
            }
            shared.state.lock().1 = None;
            // Harvest the pass: delivered results fill their slots, panicked
            // tasks form the next pass.
            for (idx, _) in &round.tasks {
                attempts_per_task[*idx] += 1;
            }
            for (idx, r) in round.results.lock().drain(..) {
                if attempt > 1 {
                    retried += 1;
                }
                slots[idx] = Some(r);
            }
            for (w, c) in round.per_worker.iter().enumerate() {
                per_worker[w] += c.load(Ordering::Relaxed);
            }
            let failed: Vec<usize> = round.panicked.lock().drain(..).collect();
            panics += failed.len();
            if let Some(&task) = failed.first() {
                if attempt >= max_attempts {
                    return Err(GraspError::WorkerFailed {
                        task,
                        attempts: attempt,
                    });
                }
            }
            // Clone only the panicked payloads for the retry pass (workers
            // may still hold their reference to the round briefly, so the
            // task vector cannot be moved out of the Arc).
            pass = round
                .tasks
                .iter()
                .filter(|(idx, _)| failed.contains(idx))
                .cloned()
                .collect();
        }
        shared.rounds.fetch_add(1, Ordering::Relaxed);
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.ok_or(GraspError::TaskLost { task: i }))
            .collect::<Result<Vec<R>, GraspError>>()?;
        Ok(RoundOutcome {
            results,
            panics,
            retried,
            attempts: attempts_per_task,
            completed_per_worker: per_worker,
        })
    }
}

/// The resident thread body: sleep until a new round is published, drain
/// the shared cursor (skipping pulls while demoted), report in, repeat.
fn worker_loop<T: Send + Sync, R: Send>(wid: usize, shared: Arc<Shared<T, R>>) {
    let mut seen = 0u64;
    loop {
        let round = {
            let mut state = shared.state.lock();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if state.0 != seen {
                    if let Some(r) = &state.1 {
                        seen = state.0;
                        break Arc::clone(r);
                    }
                    // A harvested round: remember we saw its version.
                    seen = state.0;
                }
                shared.wake.wait(&mut state);
            }
        };
        loop {
            if !shared.active[wid].load(Ordering::Relaxed) {
                break;
            }
            let i = round.cursor.fetch_add(1, Ordering::Relaxed);
            let Some((idx, task)) = round.tasks.get(i) else {
                break;
            };
            match catch_unwind(AssertUnwindSafe(|| (shared.handler)(wid, task))) {
                Ok(r) => {
                    round.results.lock().push((*idx, r));
                    round.per_worker[wid].fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => round.panicked.lock().push(*idx),
            }
        }
        let mut finished = round.finished.lock();
        *finished += 1;
        round.finished_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    #[test]
    fn rounds_reuse_the_resident_threads() {
        let ids: Arc<Mutex<HashSet<ThreadId>>> = Arc::new(Mutex::new(HashSet::new()));
        let seen = Arc::clone(&ids);
        let pool: WorkerPool<u64, u64> = WorkerPool::start(3, move |_w, &t| {
            seen.lock().insert(std::thread::current().id());
            t * 2
        });
        for _ in 0..4 {
            let out = pool.lease().run((0..50).collect(), 3).unwrap();
            assert_eq!(out.results, (0..50).map(|t| t * 2).collect::<Vec<_>>());
            assert_eq!(out.panics, 0);
            assert_eq!(out.completed_per_worker.iter().sum::<usize>(), 50);
        }
        assert_eq!(pool.rounds(), 4);
        assert!(
            ids.lock().len() <= 3,
            "four rounds must run on the same three resident threads"
        );
    }

    #[test]
    fn panicked_tasks_are_retried_and_accounted() {
        let first = AtomicBool::new(true);
        let pool: WorkerPool<usize, usize> = WorkerPool::start(2, move |_w, &t| {
            if t == 7 && first.swap(false, Ordering::SeqCst) {
                panic!("injected");
            }
            t
        });
        let out = pool.lease().run((0..20).collect(), 3).unwrap();
        assert_eq!(out.results, (0..20).collect::<Vec<_>>());
        assert_eq!(out.panics, 1);
        assert_eq!(out.retried, 1);
        assert_eq!(out.attempts[7], 2);
        assert!(out
            .attempts
            .iter()
            .enumerate()
            .all(|(t, &a)| a == 1 || t == 7));
    }

    #[test]
    fn exhausted_attempts_surface_as_worker_failed() {
        let pool: WorkerPool<usize, usize> = WorkerPool::start(2, |_w, &t| {
            if t == 3 {
                panic!("always");
            }
            t
        });
        let err = pool.lease().run((0..8).collect(), 2).unwrap_err();
        assert!(
            matches!(
                err,
                GraspError::WorkerFailed {
                    task: 3,
                    attempts: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn demoted_workers_stop_pulling_and_the_last_one_is_protected() {
        let pool: WorkerPool<usize, usize> = WorkerPool::start(3, |w, &t| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            let _ = t;
            w
        });
        assert!(pool.set_active(1, false));
        assert!(pool.set_active(2, false));
        assert!(!pool.set_active(0, false), "the last active worker stays");
        assert_eq!(pool.active_workers(), 1);
        let out = pool.lease().run((0..12).collect(), 3).unwrap();
        assert_eq!(out.results.len(), 12);
        assert_eq!(out.completed_per_worker[1], 0);
        assert_eq!(out.completed_per_worker[2], 0);
        assert_eq!(out.completed_per_worker[0], 12);
        assert!(pool.set_active(1, true));
        assert_eq!(pool.active_workers(), 2);
    }

    #[test]
    fn empty_rounds_complete_immediately() {
        let pool: WorkerPool<usize, usize> = WorkerPool::start(2, |_w, &t| t);
        let out = pool.lease().run(Vec::new(), 3).unwrap();
        assert!(out.results.is_empty());
    }
}
