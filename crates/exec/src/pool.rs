//! A resident worker pool, leased per dispatch round.
//!
//! [`crate::farm::ThreadFarm`] owns its workers for exactly one run: every
//! `Grasp::run` spawns a fresh scoped pool, pays the thread start-up cost,
//! and tears everything down at the end.  That is the right shape for a
//! one-shot job, and the wrong shape for a *service* that executes many
//! small jobs back to back — there the pool must outlive any single job.
//!
//! [`WorkerPool`] provides that residency: `workers` threads are spawned
//! once and then serve an arbitrary number of **dispatch rounds**.  A round
//! is obtained by taking a [`PoolLease`] (exclusive — one round at a time,
//! mirroring the one-master discipline of the other backends) and calling
//! [`PoolLease::run`] with a task list.  Workers pull tasks demand-driven
//! off a shared cursor, exactly like the farm's chunk loop, and the lease
//! returns when every task has completed.
//!
//! Fault isolation follows the farm's rules at round granularity: a handler
//! panic is caught, the task is retried on the next attempt pass (panicked
//! tasks of one pass become the task list of the next), and a task that
//! fails every bounded attempt surfaces as [`GraspError::WorkerFailed`].
//! Workers can be taken out of rotation with [`WorkerPool::set_active`]
//! (the demotion hook for an adaptation engine driving the pool); the last
//! active worker can never be deactivated, so a leased round always drains.

use crate::deque::{StealDeque, MAX_RANGE};
use grasp_core::error::GraspError;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Work-stealing state of one round (present only for stealing rounds):
/// per-worker deques over the pass's task positions, plus the reclaimed
/// ranges of workers that left rotation mid-pass.
struct StealState {
    deques: Vec<StealDeque>,
    /// Ranges drained from deactivated workers' deques, awaiting pickup.
    reclaimed: Mutex<Vec<(usize, usize)>>,
    /// Raised *before* a deque drains into `reclaimed`, so an idle worker's
    /// termination scan (which reads the deques first) can never miss an
    /// in-flight drain and strand its tasks.
    reclaimed_pending: AtomicUsize,
    steals_attempted: AtomicUsize,
    steals_completed: AtomicUsize,
    units_stolen: AtomicUsize,
}

/// One in-flight dispatch round: the shared cursor the workers pull from
/// and the slots they deliver into.
struct Round<T, R> {
    /// `(original index, task)` pairs for this attempt pass.
    tasks: Vec<(usize, T)>,
    cursor: AtomicUsize,
    /// Work-stealing dispatch state; `None` = shared-cursor demand-driven.
    steal: Option<StealState>,
    /// Delivered results, `(original index, result)`.
    results: Mutex<Vec<(usize, R)>>,
    /// Original indices whose handler panicked in this pass.
    panicked: Mutex<Vec<usize>>,
    /// Units completed per worker in this pass.
    per_worker: Vec<AtomicUsize>,
    /// Workers that have drained the cursor; the lease waits for all.
    finished: Mutex<usize>,
    finished_cv: Condvar,
}

/// The per-unit handler a pool runs: `(worker index, task) -> result`.
type Handler<T, R> = Box<dyn Fn(usize, &T) -> R + Send + Sync>;

/// The versioned current round: sleeping workers detect a new one by the
/// counter; `None` between rounds.
type RoundState<T, R> = Mutex<(u64, Option<Arc<Round<T, R>>>)>;

/// State shared between the pool handle and its resident threads.
struct Shared<T, R> {
    handler: Handler<T, R>,
    state: RoundState<T, R>,
    wake: Condvar,
    /// Per-worker rotation flags (`false` = demoted: stops pulling).
    active: Vec<AtomicBool>,
    shutdown: AtomicBool,
    rounds: AtomicU64,
}

/// A resident pool of `workers` threads executing demand-driven dispatch
/// rounds (see the module docs).  Dropping the pool shuts the threads down.
pub struct WorkerPool<T: Send + Sync + 'static, R: Send + 'static> {
    shared: Arc<Shared<T, R>>,
    lease_gate: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
}

/// Exclusive access to the pool for dispatch rounds; obtained from
/// [`WorkerPool::lease`] and released on drop.
pub struct PoolLease<'p, T: Send + Sync + 'static, R: Send + 'static> {
    pool: &'p WorkerPool<T, R>,
    _guard: MutexGuard<'p, ()>,
}

/// What one completed dispatch round delivered.
#[derive(Debug)]
pub struct RoundOutcome<R> {
    /// One result per submitted task, in submission order.
    pub results: Vec<R>,
    /// Handler panics absorbed across all attempt passes.
    pub panics: usize,
    /// Tasks that completed only after at least one failed attempt.
    pub retried: usize,
    /// Execution attempts per task, in submission order (1 = completed
    /// cleanly on the first pull).
    pub attempts: Vec<usize>,
    /// Tasks completed per worker (successful attempts only).
    pub completed_per_worker: Vec<usize>,
    /// Steal attempts across all passes (stealing rounds only; zero under
    /// shared-cursor dispatch).
    pub steals_attempted: usize,
    /// Steal attempts that moved a non-empty range between deques.
    pub steals_completed: usize,
    /// Task units moved between workers by completed steals.
    pub units_stolen: usize,
}

impl<T: Send + Sync + 'static, R: Send + 'static> WorkerPool<T, R> {
    /// Spawn `workers` resident threads executing `handler(worker, &task)`
    /// for every task of every future round.
    pub fn start<F>(workers: usize, handler: F) -> Self
    where
        F: Fn(usize, &T) -> R + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            handler: Box::new(handler),
            state: Mutex::new((0, None)),
            wake: Condvar::new(),
            active: (0..workers).map(|_| AtomicBool::new(true)).collect(),
            shutdown: AtomicBool::new(false),
            rounds: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|wid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("grasp-pool-{wid}"))
                    .spawn(move || worker_loop(wid, shared))
                    .expect("spawning a pool worker thread failed")
            })
            .collect();
        WorkerPool {
            shared,
            lease_gate: Mutex::new(()),
            handles,
        }
    }

    /// Number of resident worker threads (fixed for the pool's lifetime).
    pub fn workers(&self) -> usize {
        self.shared.active.len()
    }

    /// Workers currently in rotation.
    pub fn active_workers(&self) -> usize {
        self.shared
            .active
            .iter()
            .filter(|a| a.load(Ordering::Relaxed))
            .count()
    }

    /// Whether `worker` is currently in rotation.
    pub fn is_active(&self, worker: usize) -> bool {
        self.shared
            .active
            .get(worker)
            .map(|a| a.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Put `worker` in or out of rotation; returns whether the flag changed.
    /// Deactivating is refused when it would leave no active worker (a
    /// leased round must always be able to drain).
    pub fn set_active(&self, worker: usize, active: bool) -> bool {
        let Some(flag) = self.shared.active.get(worker) else {
            return false;
        };
        if !active && self.active_workers() <= 1 && flag.load(Ordering::Relaxed) {
            return false;
        }
        flag.swap(active, Ordering::Relaxed) != active
    }

    /// Dispatch rounds completed so far (attempt passes count once).
    pub fn rounds(&self) -> u64 {
        self.shared.rounds.load(Ordering::Relaxed)
    }

    /// Take the pool for a sequence of dispatch rounds; blocks while
    /// another lease is alive.
    pub fn lease(&self) -> PoolLease<'_, T, R> {
        PoolLease {
            pool: self,
            _guard: self.lease_gate.lock(),
        }
    }
}

impl<T: Send + Sync + 'static, R: Send + 'static> Drop for WorkerPool<T, R> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<T: Send + Sync + 'static, R: Send + 'static> PoolLease<'_, T, R> {
    /// Execute `tasks` on the resident pool, retrying panicked tasks up to
    /// `max_attempts` times each, and return the collected results in
    /// submission order.
    ///
    /// Errors with [`GraspError::WorkerFailed`] when one task panicked on
    /// every attempt.
    pub fn run(&self, tasks: Vec<T>, max_attempts: usize) -> Result<RoundOutcome<R>, GraspError>
    where
        T: Clone,
    {
        self.run_with(tasks, max_attempts, false)
    }

    /// [`PoolLease::run`] with work-stealing dispatch: each pass seeds one
    /// deque per worker from a one-shot partition of the task positions,
    /// workers pop from their own bottom, and an idle worker steals the top
    /// half of the longest deque.  A worker taken out of rotation
    /// mid-pass drains its deque back into circulation, so a round always
    /// conserves its tasks.
    pub fn run_stealing(
        &self,
        tasks: Vec<T>,
        max_attempts: usize,
    ) -> Result<RoundOutcome<R>, GraspError>
    where
        T: Clone,
    {
        self.run_with(tasks, max_attempts, true)
    }

    fn run_with(
        &self,
        tasks: Vec<T>,
        max_attempts: usize,
        steal: bool,
    ) -> Result<RoundOutcome<R>, GraspError>
    where
        T: Clone,
    {
        let shared = &self.pool.shared;
        let workers = self.pool.workers();
        let n = tasks.len();
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut per_worker = vec![0usize; workers];
        let mut attempts_per_task = vec![0usize; n];
        let mut panics = 0usize;
        let mut retried = 0usize;
        let mut steals_attempted = 0usize;
        let mut steals_completed = 0usize;
        let mut units_stolen = 0usize;
        let max_attempts = max_attempts.max(1);
        let mut pass: Vec<(usize, T)> = tasks.into_iter().enumerate().collect();
        let mut attempt = 0usize;
        while !pass.is_empty() {
            attempt += 1;
            let pass_len = pass.len();
            let round = Arc::new(Round {
                tasks: pass,
                cursor: AtomicUsize::new(0),
                steal: (steal && pass_len <= MAX_RANGE).then(|| StealState {
                    deques: (0..workers)
                        .map(|w| {
                            StealDeque::new(w * pass_len / workers, (w + 1) * pass_len / workers)
                        })
                        .collect(),
                    reclaimed: Mutex::new(Vec::new()),
                    reclaimed_pending: AtomicUsize::new(0),
                    steals_attempted: AtomicUsize::new(0),
                    steals_completed: AtomicUsize::new(0),
                    units_stolen: AtomicUsize::new(0),
                }),
                results: Mutex::new(Vec::new()),
                panicked: Mutex::new(Vec::new()),
                per_worker: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
                finished: Mutex::new(0),
                finished_cv: Condvar::new(),
            });
            {
                let mut state = shared.state.lock();
                state.0 += 1;
                state.1 = Some(Arc::clone(&round));
            }
            shared.wake.notify_all();
            {
                let mut finished = round.finished.lock();
                while *finished < workers {
                    round.finished_cv.wait(&mut finished);
                }
            }
            shared.state.lock().1 = None;
            // Harvest the pass: delivered results fill their slots, panicked
            // tasks form the next pass.
            for (idx, _) in &round.tasks {
                attempts_per_task[*idx] += 1;
            }
            for (idx, r) in round.results.lock().drain(..) {
                if attempt > 1 {
                    retried += 1;
                }
                slots[idx] = Some(r);
            }
            for (w, c) in round.per_worker.iter().enumerate() {
                per_worker[w] += c.load(Ordering::Relaxed);
            }
            if let Some(st) = &round.steal {
                steals_attempted += st.steals_attempted.load(Ordering::Relaxed);
                steals_completed += st.steals_completed.load(Ordering::Relaxed);
                units_stolen += st.units_stolen.load(Ordering::Relaxed);
            }
            let failed: Vec<usize> = round.panicked.lock().drain(..).collect();
            panics += failed.len();
            if let Some(&task) = failed.first() {
                if attempt >= max_attempts {
                    return Err(GraspError::WorkerFailed {
                        task,
                        attempts: attempt,
                    });
                }
            }
            // Clone only the panicked payloads for the retry pass (workers
            // may still hold their reference to the round briefly, so the
            // task vector cannot be moved out of the Arc).
            pass = round
                .tasks
                .iter()
                .filter(|(idx, _)| failed.contains(idx))
                .cloned()
                .collect();
        }
        shared.rounds.fetch_add(1, Ordering::Relaxed);
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.ok_or(GraspError::TaskLost { task: i }))
            .collect::<Result<Vec<R>, GraspError>>()?;
        Ok(RoundOutcome {
            results,
            panics,
            retried,
            attempts: attempts_per_task,
            completed_per_worker: per_worker,
            steals_attempted,
            steals_completed,
            units_stolen,
        })
    }
}

/// The resident thread body: sleep until a new round is published, drain
/// the shared cursor (skipping pulls while demoted), report in, repeat.
fn worker_loop<T: Send + Sync, R: Send>(wid: usize, shared: Arc<Shared<T, R>>) {
    let mut seen = 0u64;
    loop {
        let round = {
            let mut state = shared.state.lock();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if state.0 != seen {
                    if let Some(r) = &state.1 {
                        seen = state.0;
                        break Arc::clone(r);
                    }
                    // A harvested round: remember we saw its version.
                    seen = state.0;
                }
                shared.wake.wait(&mut state);
            }
        };
        if let Some(st) = &round.steal {
            let exec = |i: usize| {
                let (idx, task) = &round.tasks[i];
                match catch_unwind(AssertUnwindSafe(|| (shared.handler)(wid, task))) {
                    Ok(r) => {
                        round.results.lock().push((*idx, r));
                        round.per_worker[wid].fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => round.panicked.lock().push(*idx),
                }
            };
            loop {
                if !shared.active[wid].load(Ordering::Relaxed) {
                    // Raise the pending flag *before* draining so an idle
                    // peer's termination scan (deques first, then the flag)
                    // can never miss the in-flight hand-back.
                    st.reclaimed_pending.fetch_add(1, Ordering::SeqCst);
                    match st.deques[wid].drain_all() {
                        Some((start, count)) => st.reclaimed.lock().push((start, count)),
                        None => {
                            st.reclaimed_pending.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    break;
                }
                // Ranges handed back by deactivated workers come first.
                let range = st.reclaimed.lock().pop();
                if let Some((start, count)) = range {
                    st.reclaimed_pending.fetch_sub(1, Ordering::SeqCst);
                    for i in start..start + count {
                        exec(i);
                    }
                    continue;
                }
                // Own-bottom fast path.
                let len = st.deques[wid].len();
                if len > 0 {
                    if let Some((start, count)) = st.deques[wid].take_bottom((len / 4).max(1)) {
                        for i in start..start + count {
                            exec(i);
                        }
                        continue;
                    }
                }
                // Steal the top half of the longest other deque.
                let victim = (0..st.deques.len())
                    .filter(|&v| v != wid)
                    .map(|v| (st.deques[v].len(), v))
                    .max();
                if let Some((vlen, v)) = victim {
                    if vlen >= 2 {
                        st.steals_attempted.fetch_add(1, Ordering::Relaxed);
                        if let Some((start, count)) = st.deques[v].steal_top_half() {
                            st.steals_completed.fetch_add(1, Ordering::Relaxed);
                            st.units_stolen.fetch_add(count, Ordering::Relaxed);
                            for i in start..start + count {
                                exec(i);
                            }
                        }
                        continue;
                    }
                }
                // Termination: every deque is completely empty (a demoted
                // owner drains even a lone last task, so `len <= 1` is not
                // enough) and no drained range awaits pickup.
                if st.deques[wid].is_empty()
                    && st.reclaimed_pending.load(Ordering::SeqCst) == 0
                    && st.deques.iter().all(|d| d.is_empty())
                {
                    break;
                }
                std::thread::yield_now();
            }
        } else {
            loop {
                if !shared.active[wid].load(Ordering::Relaxed) {
                    break;
                }
                let i = round.cursor.fetch_add(1, Ordering::Relaxed);
                let Some((idx, task)) = round.tasks.get(i) else {
                    break;
                };
                match catch_unwind(AssertUnwindSafe(|| (shared.handler)(wid, task))) {
                    Ok(r) => {
                        round.results.lock().push((*idx, r));
                        round.per_worker[wid].fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => round.panicked.lock().push(*idx),
                }
            }
        }
        let mut finished = round.finished.lock();
        *finished += 1;
        round.finished_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread::ThreadId;

    #[test]
    fn rounds_reuse_the_resident_threads() {
        let ids: Arc<Mutex<HashSet<ThreadId>>> = Arc::new(Mutex::new(HashSet::new()));
        let seen = Arc::clone(&ids);
        let pool: WorkerPool<u64, u64> = WorkerPool::start(3, move |_w, &t| {
            seen.lock().insert(std::thread::current().id());
            t * 2
        });
        for _ in 0..4 {
            let out = pool.lease().run((0..50).collect(), 3).unwrap();
            assert_eq!(out.results, (0..50).map(|t| t * 2).collect::<Vec<_>>());
            assert_eq!(out.panics, 0);
            assert_eq!(out.completed_per_worker.iter().sum::<usize>(), 50);
        }
        assert_eq!(pool.rounds(), 4);
        assert!(
            ids.lock().len() <= 3,
            "four rounds must run on the same three resident threads"
        );
    }

    #[test]
    fn panicked_tasks_are_retried_and_accounted() {
        let first = AtomicBool::new(true);
        let pool: WorkerPool<usize, usize> = WorkerPool::start(2, move |_w, &t| {
            if t == 7 && first.swap(false, Ordering::SeqCst) {
                panic!("injected");
            }
            t
        });
        let out = pool.lease().run((0..20).collect(), 3).unwrap();
        assert_eq!(out.results, (0..20).collect::<Vec<_>>());
        assert_eq!(out.panics, 1);
        assert_eq!(out.retried, 1);
        assert_eq!(out.attempts[7], 2);
        assert!(out
            .attempts
            .iter()
            .enumerate()
            .all(|(t, &a)| a == 1 || t == 7));
    }

    #[test]
    fn exhausted_attempts_surface_as_worker_failed() {
        let pool: WorkerPool<usize, usize> = WorkerPool::start(2, |_w, &t| {
            if t == 3 {
                panic!("always");
            }
            t
        });
        let err = pool.lease().run((0..8).collect(), 2).unwrap_err();
        assert!(
            matches!(
                err,
                GraspError::WorkerFailed {
                    task: 3,
                    attempts: 2
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn demoted_workers_stop_pulling_and_the_last_one_is_protected() {
        let pool: WorkerPool<usize, usize> = WorkerPool::start(3, |w, &t| {
            std::thread::sleep(std::time::Duration::from_micros(50));
            let _ = t;
            w
        });
        assert!(pool.set_active(1, false));
        assert!(pool.set_active(2, false));
        assert!(!pool.set_active(0, false), "the last active worker stays");
        assert_eq!(pool.active_workers(), 1);
        let out = pool.lease().run((0..12).collect(), 3).unwrap();
        assert_eq!(out.results.len(), 12);
        assert_eq!(out.completed_per_worker[1], 0);
        assert_eq!(out.completed_per_worker[2], 0);
        assert_eq!(out.completed_per_worker[0], 12);
        assert!(pool.set_active(1, true));
        assert_eq!(pool.active_workers(), 2);
    }

    #[test]
    fn empty_rounds_complete_immediately() {
        let pool: WorkerPool<usize, usize> = WorkerPool::start(2, |_w, &t| t);
        let out = pool.lease().run(Vec::new(), 3).unwrap();
        assert!(out.results.is_empty());
    }

    #[test]
    fn stealing_rounds_complete_and_conserve_the_tasks() {
        let pool: WorkerPool<u64, u64> = WorkerPool::start(4, |_w, &t| t * 2);
        for _ in 0..3 {
            let out = pool.lease().run_stealing((0..200).collect(), 3).unwrap();
            assert_eq!(out.results, (0..200).map(|t| t * 2).collect::<Vec<_>>());
            assert_eq!(out.completed_per_worker.iter().sum::<usize>(), 200);
        }
    }

    #[test]
    fn idle_workers_steal_from_a_loaded_deque() {
        // Tasks in the first quarter (worker 0's seeded range) are far
        // heavier, so the other workers drain their own deques and must
        // steal to keep busy.
        let pool: WorkerPool<usize, usize> = WorkerPool::start(4, |_w, &t| {
            let spin = if t < 100 { 200_000u64 } else { 200 };
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ acc.rotate_left(7));
            }
            std::hint::black_box(acc);
            t
        });
        let out = pool.lease().run_stealing((0..400).collect(), 3).unwrap();
        assert_eq!(out.results, (0..400).collect::<Vec<_>>());
        assert!(out.steals_attempted >= out.steals_completed);
        assert!(
            out.steals_completed >= 1,
            "no steals on an asymmetric round"
        );
        assert!(out.units_stolen >= 1);
    }

    #[test]
    fn deactivated_worker_hands_its_deque_back_into_circulation() {
        let pool: WorkerPool<usize, usize> = WorkerPool::start(4, |_w, &t| {
            std::thread::sleep(std::time::Duration::from_micros(20));
            t
        });
        assert!(pool.set_active(3, false));
        let out = pool.lease().run_stealing((0..120).collect(), 3).unwrap();
        assert_eq!(out.results, (0..120).collect::<Vec<_>>());
        assert_eq!(out.completed_per_worker[3], 0, "demoted worker pulled");
        assert_eq!(out.completed_per_worker.iter().sum::<usize>(), 120);
    }

    #[test]
    fn stealing_rounds_retry_panicked_tasks_across_passes() {
        let first = AtomicBool::new(true);
        let pool: WorkerPool<usize, usize> = WorkerPool::start(3, move |_w, &t| {
            if t == 11 && first.swap(false, Ordering::SeqCst) {
                panic!("injected");
            }
            t
        });
        let out = pool.lease().run_stealing((0..60).collect(), 3).unwrap();
        assert_eq!(out.results, (0..60).collect::<Vec<_>>());
        assert_eq!(out.panics, 1);
        assert_eq!(out.retried, 1);
        assert_eq!(out.attempts[11], 2);
    }

    #[test]
    fn demand_rounds_report_zero_steal_counters() {
        let pool: WorkerPool<usize, usize> = WorkerPool::start(3, |_w, &t| t);
        let out = pool.lease().run((0..30).collect(), 3).unwrap();
        assert_eq!(out.steals_attempted, 0);
        assert_eq!(out.steals_completed, 0);
        assert_eq!(out.units_stolen, 0);
    }
}
