//! # grasp-net — socket execution backend with dynamic pool membership
//!
//! The process backend put workers behind a real serialization boundary;
//! this crate puts them behind a real *network* boundary and, more
//! importantly, makes the pool **dynamic** — the closest this reproduction
//! gets to the paper's computational grid, where nodes come and go
//! underneath a running computation:
//!
//! * the master ([`NetBackend`]) listens on a socket; workers **connect**
//!   and pass a registration handshake (a [`grasp_core::wire::WireMsg::Join`]
//!   carrying pid, wire version and a capability mask, answered by
//!   `Welcome` — or refused with `Shutdown`);
//! * a worker may **join mid-run**: it first executes a calibration prefix
//!   of probe units that feeds the shared
//!   [`grasp_core::engine::AdaptationEngine`], so the newcomer is ranked
//!   (and, if slow, demoted) before it receives real units;
//! * a worker may **leave gracefully** (`Goodbye`, drain, release) or by
//!   **dying** (EOF / heartbeat timeout → requeue + [`grasp_core::ResilienceReport`]);
//!   either way unit conservation holds;
//! * everything runs over the [`grasp_core::transport`] traits, so the
//!   same master drives TCP sockets in production and the deterministic
//!   in-memory [`loopback`] network — with scripted per-frame faults — in
//!   tests.
//!
//! ## The worker binary
//!
//! TCP workers are the `grasp-net-worker` binary of the workspace root
//! (`cargo build` produces it); it connects to the endpoint given as its
//! first argument.  The backend resolves the binary through, in order: an
//! explicit [`grasp_core::config::BackendConfig::worker_bin`] path (applied
//! via [`NetBackend::with_config`]), the [`WORKER_BIN_ENV`] environment
//! variable, and a search next to the current executable
//! ([`find_worker_bin`]).
//!
//! ```no_run
//! use grasp_core::{Grasp, GraspConfig, Skeleton, TaskSpec};
//! use grasp_net::NetBackend;
//!
//! let skeleton = Skeleton::farm(TaskSpec::uniform(64, 4.0, 1024, 1024));
//! let report = Grasp::new(GraspConfig::default())
//!     .run(&NetBackend::new(4), &skeleton)
//!     .expect("worker binary built and localhost reachable");
//! assert_eq!(report.outcome.completed, 64);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
pub mod loopback;
pub mod worker;

pub use backend::NetBackend;
pub use loopback::{FaultScript, FrameFault, LoopbackNet};

use std::path::PathBuf;

/// Environment variable overriding where the `grasp-net-worker` binary
/// lives (useful when embedding the backend in a foreign build system).
pub const WORKER_BIN_ENV: &str = "GRASP_NET_WORKER_BIN";

/// The file name of the worker binary.
pub const WORKER_BIN_NAME: &str = "grasp-net-worker";

/// Locate the worker binary: [`WORKER_BIN_ENV`] first, then a walk from the
/// current executable's directory upwards (covering `target/<profile>/deps`
/// test binaries, `target/<profile>/examples`, and plain
/// `target/<profile>` binaries).  `None` means the worker has not been
/// built yet — run `cargo build` (the workspace builds it by default) or
/// set the environment override.
pub fn find_worker_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var(WORKER_BIN_ENV) {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Some(p);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?.to_path_buf();
    for _ in 0..4 {
        let cand = dir.join(format!("{WORKER_BIN_NAME}{}", std::env::consts::EXE_SUFFIX));
        if cand.is_file() {
            return Some(cand);
        }
        if !dir.pop() {
            break;
        }
    }
    None
}
