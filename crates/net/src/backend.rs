//! The socket [`Backend`]: skeletons on a dynamically-membered worker pool.
//!
//! Where the process backend *spawns* its pool (membership is implied by
//! fork), the network master only ever *accepts* it: workers connect to an
//! endpoint, introduce themselves with a [`WireMsg::Join`] (pid, wire
//! version, capability mask), and are admitted — or refused — by a
//! registration handshake.  That one inversion is what makes membership
//! dynamic:
//!
//! * **join at any time** — a worker admitted after dispatch has begun is
//!   not trusted with real units immediately: the master first sends it a
//!   **calibration prefix** of probe units (spin tasks sized like the job's
//!   real units), feeding the shared [`AdaptationEngine`] and the
//!   [`gridmon::MonitorRegistry`] so the newcomer is ranked — and possibly
//!   demoted — before it can slow the job down;
//! * **leave gracefully** — a worker announces [`WireMsg::Goodbye`], stops
//!   receiving new units, finishes the window it already holds, and is
//!   released with a [`WireMsg::Shutdown`]: nothing is requeued, nothing is
//!   lost;
//! * **leave by dying** — a socket EOF, a truncated frame, or a heartbeat
//!   timeout requeues the worker's in-flight units to the survivors, counts
//!   the loss in the [`ResilienceReport`], and tells the engine — the same
//!   revocation path as every other backend, so unit conservation holds.
//!
//! The master loop itself is the process backend's, re-expressed over
//! [`grasp_core::transport`] traits: demand-driven windows, the
//! Algorithm-2 calibrate → monitor → demote/resample cycle, bounded
//! per-unit attempts, first-completion-wins dedup.  Pointing it at a
//! [`TcpAcceptor`] gives the production deployment; pointing it at the
//! in-memory loopback acceptor gives the deterministic fault-injection
//! tests — same code, byte-identical frames.

use grasp_core::adaptation::AdaptationLog;
use grasp_core::config::{BackendConfig, ExecutionConfig, FaultInjection};
use grasp_core::engine::{AdaptationDirective, AdaptationEngine, WallClock};
use grasp_core::error::GraspError;
use grasp_core::execution::MonitorVerdict;
use grasp_core::skeleton::{
    Backend, NetDeparture, NetMemberReport, OutcomeDetail, ResilienceReport, Skeleton,
    SkeletonOutcome, UnitSpan,
};
use grasp_core::transport::{
    spawn_frame_writer, Acceptor, FrameSink, FrameSource, OutMsg, TcpAcceptor, WireCounters,
};
use grasp_core::wire::{payload_capability, WireMsg, CAP_SPIN, WIRE_VERSION};
use grasp_core::GraspConfig;
use gridmon::{MonitorRegistry, NodeObservation};
use gridsim::NodeId;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Calibration probe units live above this id so they can never collide
/// with (or be mistaken for) a job unit.
const PROBE_UNIT_BASE: u64 = 1 << 63;

/// The socket execution backend with dynamic pool membership.
///
/// Two construction modes share all the machinery:
///
/// * [`NetBackend::new`] — production shape: bind a TCP listener
///   (127.0.0.1 by default), spawn `workers` local `grasp-net-worker`
///   processes pointed at it, and optionally spawn late joiners mid-run
///   ([`NetBackend::with_join_spawn`]);
/// * [`NetBackend::over`] — harness shape: run the same master over an
///   externally supplied [`Acceptor`] (the loopback test network), spawning
///   nothing; the test owns the workers.
pub struct NetBackend {
    /// Registrations required before dispatch begins.
    wait_for: usize,
    /// Local worker processes to spawn at launch (TCP mode only).
    spawn_workers: usize,
    /// Listener bind address (TCP mode; port 0 = OS-assigned).
    bind_addr: String,
    /// Externally supplied acceptor (harness mode); taken by each execute
    /// and put back at orderly shutdown, so consecutive jobs share one
    /// membership endpoint.
    acceptor: Mutex<Option<Box<dyn Acceptor>>>,
    /// Explicit worker binary (otherwise [`crate::find_worker_bin`]).
    worker_bin: Option<PathBuf>,
    /// Spin iterations per declared work unit for [`PAYLOAD_SPIN`] units.
    spin_per_work_unit: u64,
    /// Explicit override of the config's calibration sample count.
    calibration_samples: Option<usize>,
    /// Probe units a mid-run joiner must complete before real units
    /// (`None` → the calibration sample count).
    join_calibration_units: Option<usize>,
    /// How often workers report liveness (0 disables heartbeats: liveness
    /// is then EOF-only, which the deterministic tests rely on).
    heartbeat_interval_s: f64,
    /// Silence longer than this declares a worker dead.
    heartbeat_timeout_s: f64,
    /// Seconds to wait for the first `wait_for` registrations.
    join_timeout_s: f64,
    /// Units a worker may hold dispatched-but-unfinished (≥ 1).
    outstanding_per_worker: usize,
    /// Bounded dispatches per unit before the run fails.
    max_task_attempts: usize,
    /// Fault injection: SIGKILL member `.0`'s process after it has
    /// delivered `.1` results (TCP mode; loopback deaths are scripted).
    kill_injection: Option<(usize, usize)>,
    /// Spawn `.1` extra workers once `.0` units have completed (TCP mode's
    /// dynamic-join driver).
    join_spawn: Option<(usize, usize)>,
    /// Park connections beyond `wait_for` until this many units have
    /// completed — makes "joined mid-run" deterministic in tests.
    hold_joins_until: Option<usize>,
    /// Real-kernel payloads by unit id (absent units run the spin kernel).
    /// `Arc` so dispatch clones a pointer, not the bytes.
    payloads: HashMap<usize, (u32, Arc<[u8]>)>,
}

impl std::fmt::Debug for NetBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetBackend")
            .field("wait_for", &self.wait_for)
            .field("spawn_workers", &self.spawn_workers)
            .field("bind_addr", &self.bind_addr)
            .finish_non_exhaustive()
    }
}

impl NetBackend {
    fn base(wait_for: usize) -> Self {
        NetBackend {
            wait_for: wait_for.max(1),
            spawn_workers: 0,
            bind_addr: "127.0.0.1:0".to_string(),
            acceptor: Mutex::new(None),
            worker_bin: None,
            spin_per_work_unit: 500,
            calibration_samples: None,
            join_calibration_units: None,
            heartbeat_interval_s: 0.25,
            heartbeat_timeout_s: 5.0,
            join_timeout_s: 30.0,
            outstanding_per_worker: 2,
            max_task_attempts: 3,
            kill_injection: None,
            join_spawn: None,
            hold_joins_until: None,
            payloads: HashMap::new(),
        }
    }

    /// TCP mode: bind a listener, spawn `workers` local worker processes
    /// pointed at it, and start dispatching once all of them registered.
    pub fn new(workers: usize) -> Self {
        let mut b = NetBackend::base(workers);
        b.spawn_workers = b.wait_for;
        b
    }

    /// Harness mode: run the master over an external [`Acceptor`] (the
    /// loopback network), dispatching once `wait_for` workers registered.
    /// Spawns nothing; the caller owns the worker ends.  The acceptor is
    /// reused across executes (returned at each run's orderly shutdown), so
    /// the membership substrate outlives any single job.
    pub fn over(acceptor: Box<dyn Acceptor>, wait_for: usize) -> Self {
        let b = NetBackend::base(wait_for);
        *b.acceptor.lock().unwrap_or_else(|e| e.into_inner()) = Some(acceptor);
        b
    }

    /// Bind the listener to an explicit address (TCP mode; default
    /// `127.0.0.1:0`).
    pub fn with_bind_addr(mut self, addr: impl Into<String>) -> Self {
        self.bind_addr = addr.into();
        self
    }

    /// Apply a shared [`BackendConfig`]: the one builder every backend
    /// understands.  Unset fields keep this backend's defaults.  Heartbeat
    /// semantics are this backend's: `interval_s = 0` disables worker
    /// heartbeats *and* the timeout sweep (deaths are then detected by
    /// socket EOF / frame errors only).  The `worker_panic_budget` knob has
    /// no socket analogue — a worker process dies with its panic and the
    /// requeue path takes over — and is ignored.  The plan's
    /// [`FaultInjection`] is applied as by
    /// [`NetBackend::with_fault_injection`].
    pub fn with_config(mut self, cfg: BackendConfig) -> Self {
        if let Some(samples) = cfg.calibration_samples {
            self.calibration_samples = Some(samples);
        }
        if let Some(iters) = cfg.spin_per_work_unit {
            self.spin_per_work_unit = iters.max(1);
        }
        if let Some(attempts) = cfg.max_task_attempts {
            self.max_task_attempts = attempts.max(1);
        }
        if let Some((interval_s, timeout_s)) = cfg.heartbeat {
            if interval_s <= 0.0 {
                self.heartbeat_interval_s = 0.0;
                self.heartbeat_timeout_s = timeout_s.max(1e-3);
            } else {
                self.heartbeat_interval_s = interval_s;
                self.heartbeat_timeout_s = timeout_s.max(10.0 * interval_s);
            }
        }
        if let Some(path) = cfg.worker_bin {
            self.worker_bin = Some(path);
        }
        self.with_fault_injection(cfg.faults)
    }

    /// Apply a typed [`FaultInjection`] plan, replacing any previously
    /// configured injection outright.  Sockets realise `kill` as a mid-run
    /// SIGKILL of the member's process (TCP mode) and `join_spawn` as the
    /// dynamic-membership driver (spawn extra workers once `after_results`
    /// units completed); `panics` and `slowdown` have no socket-master
    /// analogue and are ignored.
    pub fn with_fault_injection(mut self, faults: FaultInjection) -> Self {
        self.kill_injection = faults.kill.map(|k| (k.worker, k.after_results));
        self.join_spawn = faults.join_spawn.map(|j| (j.after_results, j.extra.max(1)));
        self
    }

    /// Use an explicit worker binary instead of [`crate::find_worker_bin`].
    #[deprecated(note = "use with_config(BackendConfig::new().worker_bin(path))")]
    pub fn with_worker_bin(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_bin = Some(path.into());
        self
    }

    /// Override how many spin iterations one declared work unit costs on a
    /// worker (spin payloads and calibration probes; clamped to ≥ 1).
    #[deprecated(note = "use with_config(BackendConfig::new().spin_per_work_unit(iters))")]
    pub fn with_spin_per_work_unit(mut self, iters: u64) -> Self {
        self.spin_per_work_unit = iters.max(1);
        self
    }

    /// Override how many observations per waited-for worker form the
    /// Algorithm-1 calibration sample (0 disables the adaptation engine;
    /// otherwise `config.calibration.samples_per_node`).
    #[deprecated(note = "use with_config(BackendConfig::new().calibration_samples(n))")]
    pub fn with_calibration_samples(mut self, samples: usize) -> Self {
        self.calibration_samples = Some(samples);
        self
    }

    /// Override how many probe units a mid-run joiner must complete before
    /// it receives real units (default: the calibration sample count).
    pub fn with_join_calibration_units(mut self, units: usize) -> Self {
        self.join_calibration_units = Some(units);
        self
    }

    /// Override the liveness cadence.  `interval_s = 0` disables worker
    /// heartbeats *and* the timeout sweep: deaths are then detected by
    /// socket EOF / frame errors only, which keeps loopback frame indices
    /// deterministic for the fault-injection tests.
    #[deprecated(note = "use with_config(BackendConfig::new().heartbeat(interval_s, timeout_s))")]
    pub fn with_heartbeat(mut self, interval_s: f64, timeout_s: f64) -> Self {
        if interval_s <= 0.0 {
            self.heartbeat_interval_s = 0.0;
            self.heartbeat_timeout_s = timeout_s.max(1e-3);
        } else {
            self.heartbeat_interval_s = interval_s;
            self.heartbeat_timeout_s = timeout_s.max(10.0 * interval_s);
        }
        self
    }

    /// Override how long the master waits for the first `wait_for`
    /// registrations before failing the run.
    pub fn with_join_timeout(mut self, timeout_s: f64) -> Self {
        self.join_timeout_s = timeout_s.max(1e-3);
        self
    }

    /// Override how many times one unit may be dispatched before the run
    /// fails with [`GraspError::WorkerFailed`] (clamped to ≥ 1; default 3).
    #[deprecated(note = "use with_config(BackendConfig::new().max_task_attempts(n))")]
    pub fn with_max_task_attempts(mut self, attempts: usize) -> Self {
        self.max_task_attempts = attempts.max(1);
        self
    }

    /// Inject a **hard kill**: after member `worker` has delivered
    /// `results` completed units, SIGKILL its process mid-run (TCP mode;
    /// members without a spawned process are unaffected).
    #[deprecated(note = "use with_fault_injection(FaultInjection::none().kill(worker, results))")]
    pub fn with_kill_injection(mut self, worker: usize, results: usize) -> Self {
        self.kill_injection = Some((worker, results));
        self
    }

    /// Grow the pool mid-run (TCP mode): once `after_results` units have
    /// completed, spawn `extra` additional worker processes; each joins
    /// through the full handshake + calibration-prefix path.
    #[deprecated(
        note = "use with_fault_injection(FaultInjection::none().join_spawn(after_results, extra))"
    )]
    pub fn with_join_spawn(mut self, after_results: usize, extra: usize) -> Self {
        self.join_spawn = Some((after_results, extra.max(1)));
        self
    }

    /// Park connections beyond the first `wait_for` until `results` units
    /// have completed, then admit them — pins down "joined mid-run" for
    /// deterministic loopback tests (a parked joiner is admitted early if
    /// the pool would otherwise starve).
    pub fn with_hold_joins_until(mut self, results: usize) -> Self {
        self.hold_joins_until = Some(results);
        self
    }

    /// Attach serialized real-kernel payloads, `(unit id, payload kind,
    /// payload bytes)`; units without a payload run the spin kernel.
    pub fn with_payloads(mut self, payloads: Vec<(usize, u32, Vec<u8>)>) -> Self {
        for (id, kind, bytes) in payloads {
            self.payloads.insert(id, (kind, bytes.into()));
        }
        self
    }

    /// Registrations required before dispatch begins.
    pub fn wait_for(&self) -> usize {
        self.wait_for
    }
}

/// A skeleton bound to the socket backend, ready to execute.
#[derive(Debug, Clone)]
pub struct NetCompiled {
    /// Flat unit list `(global id, declared work)`.
    units: Vec<(usize, f64)>,
    /// Composition spans for rebuilding per-child outcomes.
    spans: Vec<UnitSpan>,
    kind: grasp_core::SkeletonKind,
    /// Resolved worker binary — present only when this run spawns workers.
    worker_bin: Option<PathBuf>,
    /// Capabilities a joiner must advertise to serve this job.
    required_caps: u32,
}

impl Backend for NetBackend {
    type Compiled = NetCompiled;

    fn name(&self) -> &'static str {
        "net"
    }

    fn compile(
        &self,
        config: &GraspConfig,
        skeleton: &Skeleton,
    ) -> Result<Self::Compiled, GraspError> {
        config.validate()?;
        skeleton.validate()?;
        let spawns_workers = self.spawn_workers > 0 || self.join_spawn.is_some();
        let worker_bin = if spawns_workers {
            Some(match &self.worker_bin {
                Some(p) if p.is_file() => p.clone(),
                Some(p) => {
                    return Err(GraspError::WorkerUnavailable {
                        detail: format!("worker binary {} does not exist", p.display()),
                    })
                }
                None => crate::find_worker_bin().ok_or_else(|| GraspError::WorkerUnavailable {
                    detail: format!(
                        "{} binary not found near the current executable; \
                         run `cargo build` first or set {}",
                        crate::WORKER_BIN_NAME,
                        crate::WORKER_BIN_ENV
                    ),
                })?,
            })
        } else {
            None
        };
        // Every job needs the spin capability (calibration probes are spin
        // units) plus whatever kernels its payloads reference.
        let required_caps = self
            .payloads
            .values()
            .fold(CAP_SPIN, |caps, (kind, _)| caps | payload_capability(*kind));
        let (tasks, spans) = skeleton.lower_to_farm();
        Ok(NetCompiled {
            units: tasks.iter().map(|t| (t.id, t.work)).collect(),
            spans,
            kind: skeleton.kind(),
            worker_bin,
            required_caps,
        })
    }

    fn execute(
        &self,
        config: &GraspConfig,
        compiled: &Self::Compiled,
    ) -> Result<SkeletonOutcome, GraspError> {
        let external = self
            .acceptor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let was_external = external.is_some();
        let acceptor: Box<dyn Acceptor> = match external {
            Some(a) => a,
            None if self.spawn_workers > 0 || self.join_spawn.is_some() => {
                Box::new(TcpAcceptor::bind(self.bind_addr.as_str())?)
            }
            None => {
                return Err(GraspError::WorkerUnavailable {
                    detail: "no acceptor available: a previous execute ended without \
                             returning the harness acceptor (failed run), and the \
                             backend spawns no workers of its own"
                        .to_string(),
                })
            }
        };
        // The acceptor comes back through this channel when the run's
        // orderly shutdown stops the acceptor thread, so the membership
        // substrate outlives the job: the next execute listens on the same
        // endpoint and fresh workers can join the next job's pool.
        let (recycle_tx, recycle_rx) = mpsc::channel();
        let outcome = NetMaster::launch(self, config, compiled, acceptor, recycle_tx)?.run();
        if was_external && outcome.is_ok() {
            if let Ok(recycled) = recycle_rx.recv_timeout(Duration::from_secs(5)) {
                *self.acceptor.lock().unwrap_or_else(|e| e.into_inner()) = Some(recycled);
            }
        }
        outcome
    }
}

// ---------------------------------------------------------------------------
// master-side machinery
// ---------------------------------------------------------------------------

/// What the acceptor/greeter/reader threads forward to the master loop.
enum Event {
    /// A connection passed the registration handshake.
    Join {
        peer: String,
        pid: u64,
        sink: Box<dyn FrameSink>,
        source: Box<dyn FrameSource>,
    },
    /// A connection was refused (bad version, missing capabilities, or no
    /// valid Join frame).
    Rejected,
    /// A frame from admitted member `0`.
    Msg(usize, WireMsg),
    /// Member `0`'s connection closed (clean EOF or frame error).
    Closed(usize),
}

/// One admitted pool member, master side.
struct Member {
    peer: String,
    pid: u64,
    /// The spawned process behind this member, when the master spawned it
    /// (matched by pid at admission).  Loopback members have none.
    child: Option<Child>,
    /// `None` once the outbound channel is closed (demotion, departure, or
    /// death).
    tx: Option<mpsc::Sender<OutMsg>>,
    alive: bool,
    demoted: bool,
    /// Goodbye received — drain the window, then release.
    departing: bool,
    joined_s: f64,
    joined_mid_run: bool,
    /// Calibration probes this member must complete before real units.
    probes_target: usize,
    probes_done: usize,
    probe_in_flight: usize,
    /// Indices (into the unit list) currently dispatched to this member.
    in_flight: Vec<usize>,
    /// Real units completed.
    completed: usize,
    left: Option<NetDeparture>,
}

impl Member {
    /// Alive, not demoted, not departing, with an open channel — eligible
    /// for new dispatches.
    fn can_dispatch(&self) -> bool {
        self.alive && !self.demoted && !self.departing && self.tx.is_some()
    }
}

impl Drop for Member {
    fn drop(&mut self) {
        self.tx = None; // close the socket first: a live worker exits cleanly
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Master-side driver of the shared adaptation engine (executor mode);
/// mirrors the process backend's discipline: a calibration prefix of
/// normalized observations arms the engine, later observations feed it.
struct NetAdaptation {
    engine: AdaptationEngine,
    calib: Vec<f64>,
    calib_target: usize,
    armed: bool,
    baseline: f64,
    calibration_done_s: f64,
    min_active: usize,
    last_verdict: Option<MonitorVerdict>,
}

impl NetAdaptation {
    fn new(exec: &ExecutionConfig, calib_target: usize) -> Self {
        NetAdaptation {
            engine: AdaptationEngine::for_executors(exec, &[], gridsim::SimTime::ZERO),
            calib: Vec::with_capacity(calib_target),
            calib_target: calib_target.max(1),
            armed: false,
            baseline: f64::INFINITY,
            calibration_done_s: 0.0,
            min_active: exec.min_active_nodes.max(1),
            last_verdict: None,
        }
    }

    /// Feed one completed unit (real or probe); returns directives to
    /// apply, if an evaluation was due.
    fn on_done(
        &mut self,
        registry: &mut MonitorRegistry,
        worker: usize,
        work: f64,
        elapsed_s: f64,
        now: gridsim::SimTime,
        job_has_work: bool,
    ) -> Vec<AdaptationDirective> {
        if work <= 0.0 && job_has_work {
            return Vec::new();
        }
        let t_norm = if work > 0.0 {
            elapsed_s / work
        } else {
            elapsed_s
        };
        if !self.armed {
            self.calib.push(t_norm);
            if self.calib.len() >= self.calib_target {
                self.engine.calibrate(&self.calib, now);
                self.baseline = self.calib.iter().copied().fold(f64::INFINITY, f64::min);
                self.armed = true;
                self.calibration_done_s = now.as_secs();
            }
            return Vec::new();
        }
        self.engine.observe(NodeId(worker), t_norm);
        registry.record(NodeObservation::from_wall_times(
            NodeId(worker),
            now,
            self.baseline,
            t_norm,
        ));
        match self.engine.poll(now) {
            Some(poll) => {
                self.last_verdict = Some(poll.verdict);
                poll.directives
            }
            None => Vec::new(),
        }
    }
}

/// A connection parked by `hold_joins_until`: peer label, claimed pid, and
/// the two framed directions, held until admission.
type HeldJoin = (String, u64, Box<dyn FrameSink>, Box<dyn FrameSource>);

struct NetMaster<'a> {
    backend: &'a NetBackend,
    units: &'a [(usize, f64)],
    spans: &'a [UnitSpan],
    kind: grasp_core::SkeletonKind,
    job_has_work: bool,
    members: Vec<Member>,
    /// Connections held back by `hold_joins_until`, admitted later.
    held: Vec<HeldJoin>,
    rx: mpsc::Receiver<Event>,
    /// Cloned into each admitted member's reader thread.
    tx: mpsc::Sender<Event>,
    stop_accept: Arc<AtomicBool>,
    clock: WallClock,
    registry: MonitorRegistry,
    adaptation: Option<NetAdaptation>,
    /// Probe units a mid-run joiner owes before real units.
    join_probe_units: usize,
    /// Declared work of one probe unit (the job's mean positive unit work).
    probe_work: f64,
    probe_counter: u64,
    /// `true` once the initial quorum registered and dispatch began.
    started: bool,
    endpoint: String,
    /// unit id → index into `units`.
    id_to_idx: HashMap<usize, usize>,
    pending: VecDeque<usize>,
    attempts: Vec<usize>,
    completions: BTreeMap<usize, f64>,
    digests: BTreeMap<usize, u64>,
    requeued_open: std::collections::BTreeSet<usize>,
    requeued_tasks: usize,
    retried_tasks: usize,
    nodes_lost: usize,
    rejected_joins: usize,
    counters: WireCounters,
    bytes_received: Arc<AtomicU64>,
    kill_injection: Option<(usize, usize)>,
    join_spawn: Option<(usize, usize)>,
    worker_bin: Option<PathBuf>,
    /// Spawned processes that have not yet completed the handshake
    /// (claimed by pid at admission).
    unclaimed_children: Vec<Child>,
}

impl<'a> NetMaster<'a> {
    fn launch(
        backend: &'a NetBackend,
        config: &GraspConfig,
        compiled: &'a NetCompiled,
        acceptor: Box<dyn Acceptor>,
        recycle: mpsc::Sender<Box<dyn Acceptor>>,
    ) -> Result<Self, GraspError> {
        let samples = backend
            .calibration_samples
            .unwrap_or(config.calibration.samples_per_node);
        let adaptation = (config.execution.adaptive && samples > 0)
            .then(|| NetAdaptation::new(&config.execution, backend.wait_for * samples));
        let join_probe_units = backend.join_calibration_units.unwrap_or(samples);
        let endpoint = acceptor.endpoint();
        let (tx, rx) = mpsc::channel();
        let stop_accept = Arc::new(AtomicBool::new(false));
        spawn_acceptor_thread(
            acceptor,
            tx.clone(),
            Arc::clone(&stop_accept),
            compiled.required_caps,
            recycle,
        );
        let positive: Vec<f64> = compiled
            .units
            .iter()
            .map(|&(_, w)| w)
            .filter(|&w| w > 0.0)
            .collect();
        let probe_work = if positive.is_empty() {
            1.0
        } else {
            positive.iter().sum::<f64>() / positive.len() as f64
        };
        let mut master = NetMaster {
            backend,
            units: &compiled.units,
            spans: &compiled.spans,
            kind: compiled.kind,
            job_has_work: compiled.units.iter().any(|&(_, w)| w > 0.0),
            members: Vec::new(),
            held: Vec::new(),
            rx,
            tx,
            stop_accept,
            clock: WallClock::start(),
            registry: MonitorRegistry::new(NodeId(0), 64),
            adaptation,
            join_probe_units,
            probe_work,
            probe_counter: 0,
            started: false,
            endpoint,
            id_to_idx: compiled
                .units
                .iter()
                .enumerate()
                .map(|(i, &(id, _))| (id, i))
                .collect(),
            pending: (0..compiled.units.len()).collect(),
            attempts: vec![0; compiled.units.len()],
            completions: BTreeMap::new(),
            digests: BTreeMap::new(),
            requeued_open: std::collections::BTreeSet::new(),
            requeued_tasks: 0,
            retried_tasks: 0,
            nodes_lost: 0,
            rejected_joins: 0,
            counters: WireCounters::new(),
            bytes_received: Arc::new(AtomicU64::new(0)),
            kill_injection: backend.kill_injection,
            join_spawn: backend.join_spawn,
            worker_bin: compiled.worker_bin.clone(),
            unclaimed_children: Vec::new(),
        };
        for _ in 0..backend.spawn_workers {
            master.spawn_tcp_worker()?;
        }
        Ok(master)
    }

    /// Spawn one local worker process pointed at the master's endpoint; it
    /// becomes a member only once its Join passes the handshake.
    fn spawn_tcp_worker(&mut self) -> Result<(), GraspError> {
        let bin = self
            .worker_bin
            .as_ref()
            .ok_or_else(|| GraspError::WorkerUnavailable {
                detail: "no worker binary resolved (harness-mode backends spawn nothing)"
                    .to_string(),
            })?;
        let child = Command::new(bin)
            .arg(&self.endpoint)
            .stdin(Stdio::null())
            .stdout(Stdio::inherit())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| GraspError::WorkerUnavailable {
                detail: format!("could not spawn {}: {e}", bin.display()),
            })?;
        self.unclaimed_children.push(child);
        Ok(())
    }

    /// Members that can accept new dispatches right now.
    fn dispatchable(&self) -> usize {
        self.members.iter().filter(|m| m.can_dispatch()).count()
    }

    fn total_in_flight(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.in_flight.len() + m.probe_in_flight)
            .sum()
    }

    fn send_to(&mut self, w: usize, msg: OutMsg) -> bool {
        let Some(out) = self.members[w].tx.as_ref() else {
            return false;
        };
        out.send(msg).is_ok()
    }

    /// A handshaken connection arrived: admit it, or park it when the test
    /// harness pinned down the mid-run join point.
    fn on_join(
        &mut self,
        peer: String,
        pid: u64,
        sink: Box<dyn FrameSink>,
        source: Box<dyn FrameSource>,
    ) {
        let hold = match self.backend.hold_joins_until {
            Some(k) => self.members.len() >= self.backend.wait_for && self.completions.len() < k,
            None => false,
        };
        if hold {
            self.held.push((peer, pid, sink, source));
        } else {
            self.admit(peer, pid, sink, source);
        }
    }

    /// Admit a worker into the pool: assign the next slot (never reused),
    /// start its reader and writer threads, send the Welcome, and — when
    /// the run is already underway — schedule its calibration prefix.
    fn admit(
        &mut self,
        peer: String,
        pid: u64,
        sink: Box<dyn FrameSink>,
        mut source: Box<dyn FrameSource>,
    ) {
        let w = self.members.len();
        let now = self.clock.now();
        source.set_byte_counter(Arc::clone(&self.bytes_received));
        let events = self.tx.clone();
        std::thread::spawn(move || loop {
            match source.recv() {
                Ok(Some(msg)) => {
                    if events.send(Event::Msg(w, msg)).is_err() {
                        return; // master gone
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = events.send(Event::Closed(w));
                    return;
                }
            }
        });
        let out = spawn_frame_writer(sink, self.counters.clone());
        let write_ok = out
            .send(
                WireMsg::Welcome {
                    worker_id: w as u64,
                    heartbeat_interval_s: self.backend.heartbeat_interval_s,
                    spin_per_work_unit: self.backend.spin_per_work_unit,
                }
                .into(),
            )
            .is_ok();
        // Liveness starts fresh at admission.  The forget-then-note pair is
        // the re-registration contract: even if some prior record exists
        // for this slot, the new member must not inherit a stale clock.
        self.registry.forget_heartbeat(NodeId(w));
        self.registry.note_heartbeat(NodeId(w), now);
        let mid_run = self.started;
        // A founding member's calibration rides on the job's own leading
        // units; a mid-run joiner owes a probe prefix before real units
        // (pointless when the adaptation engine is off).
        let probes_target = if mid_run && self.adaptation.is_some() {
            self.join_probe_units
        } else {
            0
        };
        if mid_run {
            if let Some(ad) = &mut self.adaptation {
                ad.engine.note_node_joined(now, NodeId(w));
            }
        }
        let child = self.claim_child(pid);
        self.members.push(Member {
            peer,
            pid,
            child,
            tx: write_ok.then_some(out),
            alive: true,
            demoted: false,
            departing: false,
            joined_s: now.as_secs(),
            joined_mid_run: mid_run,
            probes_target,
            probes_done: 0,
            probe_in_flight: 0,
            in_flight: Vec::new(),
            completed: 0,
            left: None,
        });
    }

    /// Match a registering pid against the processes this master spawned,
    /// so the member owns its child (kill injection, cleanup).
    fn claim_child(&mut self, pid: u64) -> Option<Child> {
        let at = self
            .unclaimed_children
            .iter()
            .position(|c| u64::from(c.id()) == pid)?;
        Some(self.unclaimed_children.swap_remove(at))
    }

    /// Admit everything parked in `held` (threshold reached, or the pool
    /// would starve without them).
    fn release_held(&mut self) {
        for (peer, pid, sink, source) in std::mem::take(&mut self.held) {
            self.admit(peer, pid, sink, source);
        }
    }

    /// Fill every eligible member's outstanding window: calibration probes
    /// first (a joiner mid-prefix gets no real units), then pending units.
    fn dispatch_all(&mut self) -> Result<(), GraspError> {
        if !self.started {
            let ready = self
                .members
                .iter()
                .filter(|m| m.alive && m.tx.is_some())
                .count();
            if ready < self.backend.wait_for {
                return Ok(());
            }
            self.started = true;
        }
        for w in 0..self.members.len() {
            // Calibration prefix: probe units sized like the job's own.
            loop {
                let m = &self.members[w];
                if !m.can_dispatch()
                    || m.probes_done + m.probe_in_flight >= m.probes_target
                    || m.probe_in_flight + m.in_flight.len() >= self.backend.outstanding_per_worker
                {
                    break;
                }
                let probe_id = PROBE_UNIT_BASE + self.probe_counter;
                self.probe_counter += 1;
                let msg = OutMsg::spin_task(probe_id, self.probe_work);
                if self.send_to(w, msg) {
                    self.members[w].probe_in_flight += 1;
                } else {
                    self.members[w].tx = None;
                }
            }
            // Real units, once the prefix (if any) is behind it.
            loop {
                let m = &self.members[w];
                if !m.can_dispatch()
                    || m.probes_done < m.probes_target
                    || m.in_flight.len() >= self.backend.outstanding_per_worker
                {
                    break;
                }
                let Some(idx) = self.pending.pop_front() else {
                    break;
                };
                self.attempts[idx] += 1;
                if self.attempts[idx] > self.backend.max_task_attempts {
                    return Err(GraspError::WorkerFailed {
                        task: self.units[idx].0,
                        attempts: self.attempts[idx],
                    });
                }
                let (id, work) = self.units[idx];
                // Real-kernel payloads ride as `Arc<[u8]>`: dispatch clones a
                // pointer, never the payload bytes.
                let msg = match self.backend.payloads.get(&id) {
                    Some((kind, bytes)) => OutMsg::Task {
                        unit_id: id as u64,
                        work,
                        kind: *kind,
                        payload: Arc::clone(bytes),
                    },
                    None => OutMsg::spin_task(id as u64, work),
                };
                if self.send_to(w, msg) {
                    self.members[w].in_flight.push(idx);
                } else {
                    self.pending.push_front(idx);
                    self.attempts[idx] -= 1;
                    self.members[w].tx = None;
                    break;
                }
            }
        }
        Ok(())
    }

    /// A member's link is gone (EOF, frame error, or heartbeat timeout).
    /// Members already released (graceful drain, demotion drain) were
    /// settled when their channel closed; anything else is a death: requeue
    /// the stranded units, count the loss, tell the engine.
    fn on_member_gone(&mut self, w: usize) {
        if !self.members[w].alive {
            return;
        }
        let now = self.clock.now();
        self.members[w].alive = false;
        self.members[w].tx = None;
        if let Some(child) = &mut self.members[w].child {
            let _ = child.kill();
            let _ = child.wait();
        }
        let stranded: Vec<usize> = std::mem::take(&mut self.members[w].in_flight);
        self.members[w].probe_in_flight = 0;
        let was_demoted = self.members[w].demoted;
        self.registry.forget_heartbeat(NodeId(w));
        for idx in stranded.iter().rev() {
            self.pending.push_front(*idx);
            self.requeued_open.insert(*idx);
        }
        self.requeued_tasks += stranded.len();
        if was_demoted {
            // A demoted member draining out is a planned departure.
            self.members[w].left = Some(NetDeparture::Graceful);
        } else {
            self.members[w].left = Some(NetDeparture::Death);
            self.nodes_lost += 1;
            if let Some(ad) = &mut self.adaptation {
                ad.engine.note_node_lost(now, NodeId(w), stranded.len());
            }
        }
    }

    /// A departing member whose window has fully drained is released:
    /// Shutdown frame, channel closed, membership recorded as graceful.
    fn maybe_finish_departing(&mut self, w: usize) {
        let m = &self.members[w];
        if !(m.alive && m.departing && m.in_flight.is_empty() && m.probe_in_flight == 0) {
            return;
        }
        let _ = self.send_to(w, WireMsg::Shutdown.into());
        let m = &mut self.members[w];
        m.tx = None;
        m.alive = false;
        m.left = Some(NetDeparture::Graceful);
        self.registry.forget_heartbeat(NodeId(w));
    }

    /// Apply engine directives under the master's pool-floor gating.
    fn apply_directives(&mut self, directives: Vec<AdaptationDirective>) {
        let now = self.clock.now();
        for directive in directives {
            match directive {
                AdaptationDirective::DemoteExecutor {
                    executor,
                    recent_mean,
                } => {
                    let w = executor.index();
                    let Some(min_active) = self.adaptation.as_ref().map(|a| a.min_active) else {
                        continue;
                    };
                    if w < self.members.len()
                        && self.members[w].alive
                        && !self.members[w].demoted
                        && self.dispatchable() > min_active
                    {
                        // Demotion over a socket: close the member's
                        // channel.  It finishes its window, reads EOF and
                        // exits; remaining results still flow back.
                        self.members[w].demoted = true;
                        self.members[w].tx = None;
                        if let Some(ad) = &mut self.adaptation {
                            if let Some(verdict) = ad.last_verdict.clone() {
                                ad.engine.note_demoted(now, executor, recent_mean, &verdict);
                            }
                        }
                    }
                }
                AdaptationDirective::Recalibrate => {
                    let chosen: Vec<NodeId> = self
                        .members
                        .iter()
                        .enumerate()
                        .filter(|(_, m)| m.alive && !m.demoted && !m.departing)
                        .map(|(i, _)| NodeId(i))
                        .collect();
                    if let Some(ad) = &mut self.adaptation {
                        if let Some(verdict) = ad.last_verdict.clone() {
                            ad.engine.begin_resample(now, chosen, &verdict);
                        }
                    }
                }
                AdaptationDirective::RemapStage { .. } => {}
                // This backend does not speculate: duplicating a straggler
                // over the wire would spend scarce cross-node bandwidth on
                // work that is already paid for, and the timeout-requeue
                // path covers genuine losses.  The directive is
                // acknowledged and dropped.
                AdaptationDirective::Speculate { .. } => {}
            }
        }
    }

    /// A probe unit came back: advance the member's calibration prefix and
    /// feed the observation to the engine (a slow newcomer can be demoted
    /// before it ever touches a real unit).
    fn on_probe_done(&mut self, w: usize, elapsed_s: f64) {
        let now = self.clock.now();
        let m = &mut self.members[w];
        m.probe_in_flight = m.probe_in_flight.saturating_sub(1);
        m.probes_done += 1;
        let work = self.probe_work;
        let directives = match &mut self.adaptation {
            Some(ad) => ad.on_done(&mut self.registry, w, work, elapsed_s, now, true),
            None => Vec::new(),
        };
        if !directives.is_empty() {
            self.apply_directives(directives);
        }
        self.maybe_finish_departing(w);
    }

    fn on_msg(&mut self, w: usize, msg: WireMsg) -> Result<(), GraspError> {
        // Frames from a member already settled (dead, drained, released)
        // are dropped: acting on them — in particular re-inserting the
        // heartbeat — would make the liveness sweep re-report a stale slot
        // forever (see the registry's re-registration test).
        if !self.members[w].alive {
            return Ok(());
        }
        let now = self.clock.now();
        match msg {
            WireMsg::Heartbeat => {
                self.registry.note_heartbeat(NodeId(w), now);
            }
            WireMsg::Done {
                unit_id,
                elapsed_s,
                digest,
            } => {
                self.registry.note_heartbeat(NodeId(w), now);
                if unit_id >= PROBE_UNIT_BASE {
                    self.on_probe_done(w, elapsed_s);
                    return Ok(());
                }
                let Some(&idx) = self.id_to_idx.get(&(unit_id as usize)) else {
                    return Err(GraspError::WireProtocol {
                        detail: format!("worker {w} reported unknown unit {unit_id}"),
                    });
                };
                self.members[w].in_flight.retain(|&i| i != idx);
                self.members[w].completed += 1;
                let id = self.units[idx].0;
                // First completion wins: a requeued unit finished twice
                // keeps conservation intact.
                if let std::collections::btree_map::Entry::Vacant(slot) = self.completions.entry(id)
                {
                    slot.insert(now.as_secs());
                    self.digests.insert(id, digest);
                    if self.requeued_open.remove(&idx) {
                        self.retried_tasks += 1;
                    }
                }
                let directives = match &mut self.adaptation {
                    Some(ad) => ad.on_done(
                        &mut self.registry,
                        w,
                        self.units[idx].1,
                        elapsed_s,
                        now,
                        self.job_has_work,
                    ),
                    None => Vec::new(),
                };
                if !directives.is_empty() {
                    self.apply_directives(directives);
                }
                self.maybe_finish_departing(w);
                // Hard-kill injection: refill the victim's window so units
                // are genuinely in flight, then SIGKILL it mid-run.
                if let Some((kw, after)) = self.kill_injection {
                    if kw == w && self.members[w].completed >= after {
                        self.kill_injection = None;
                        self.dispatch_all()?;
                        if let Some(child) = &mut self.members[w].child {
                            let _ = child.kill();
                            // Detection is the real path: socket EOF /
                            // heartbeat timeout → the Closed event.
                        }
                    }
                }
            }
            WireMsg::Failed { unit_id, detail } => {
                self.registry.note_heartbeat(NodeId(w), now);
                if unit_id >= PROBE_UNIT_BASE {
                    // A failed probe still advances the prefix; it just
                    // contributes no observation.
                    let m = &mut self.members[w];
                    m.probe_in_flight = m.probe_in_flight.saturating_sub(1);
                    m.probes_done += 1;
                    return Ok(());
                }
                let Some(&idx) = self.id_to_idx.get(&(unit_id as usize)) else {
                    return Err(GraspError::WireProtocol {
                        detail: format!("worker {w} failed unknown unit {unit_id}: {detail}"),
                    });
                };
                self.members[w].in_flight.retain(|&i| i != idx);
                if self.attempts[idx] >= self.backend.max_task_attempts {
                    return Err(GraspError::WorkerFailed {
                        task: unit_id as usize,
                        attempts: self.attempts[idx],
                    });
                }
                self.pending.push_back(idx);
                self.requeued_open.insert(idx);
                self.requeued_tasks += 1;
                self.maybe_finish_departing(w);
            }
            WireMsg::Goodbye { .. } => {
                // The member stops receiving new dispatches; its window
                // drains, then `maybe_finish_departing` releases it.
                self.members[w].departing = true;
                self.maybe_finish_departing(w);
            }
            WireMsg::Join { .. } => {
                return Err(GraspError::WireProtocol {
                    detail: format!(
                        "worker {w} ({}) sent a second Join after admission",
                        self.members[w].peer
                    ),
                });
            }
            WireMsg::Hello { .. }
            | WireMsg::Init { .. }
            | WireMsg::Task { .. }
            | WireMsg::Welcome { .. }
            | WireMsg::Shutdown => {
                return Err(GraspError::WireProtocol {
                    detail: format!(
                        "worker {w} ({}) sent a master-side frame",
                        self.members[w].peer
                    ),
                });
            }
        }
        Ok(())
    }

    /// Fail fast when the run can no longer make progress; a parked joiner
    /// is admitted early rather than letting the pool starve.
    fn check_progress(&mut self, total: usize) -> Result<(), GraspError> {
        if !self.started {
            if self.clock.now().as_secs() > self.backend.join_timeout_s {
                let ready = self.members.iter().filter(|m| m.alive).count();
                return Err(GraspError::WorkerUnavailable {
                    detail: format!(
                        "only {ready} of {} workers registered at {} within {:.1}s",
                        self.backend.wait_for, self.endpoint, self.backend.join_timeout_s
                    ),
                });
            }
            return Ok(());
        }
        if self.completions.len() < total
            && self.dispatchable() == 0
            && (!self.pending.is_empty() || self.total_in_flight() == 0)
        {
            if !self.held.is_empty() {
                self.release_held();
                return Ok(());
            }
            return Err(GraspError::WorkerUnavailable {
                detail: format!(
                    "all {} admitted workers gone with {} of {} units unfinished",
                    self.members.len(),
                    total - self.completions.len(),
                    total
                ),
            });
        }
        Ok(())
    }

    fn run(mut self) -> Result<SkeletonOutcome, GraspError> {
        let total = self.units.len();
        let tick =
            Duration::from_secs_f64((self.backend.heartbeat_timeout_s / 8.0).clamp(0.02, 0.25));
        while self.completions.len() < total {
            match self.rx.recv_timeout(tick) {
                Ok(Event::Join {
                    peer,
                    pid,
                    sink,
                    source,
                }) => self.on_join(peer, pid, sink, source),
                Ok(Event::Rejected) => self.rejected_joins += 1,
                Ok(Event::Msg(w, msg)) => self.on_msg(w, msg)?,
                Ok(Event::Closed(w)) => self.on_member_gone(w),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {}
            }
            // Admit parked joiners once the scripted join point passed.
            if let Some(k) = self.backend.hold_joins_until {
                if !self.held.is_empty() && self.started && self.completions.len() >= k {
                    self.release_held();
                }
            }
            // Grow the pool mid-run when configured.
            if let Some((after, extra)) = self.join_spawn {
                if self.started && self.completions.len() >= after {
                    self.join_spawn = None;
                    for _ in 0..extra {
                        self.spawn_tcp_worker()?;
                    }
                }
            }
            // Liveness sweep — only when heartbeats are on; with them off
            // (deterministic tests) EOF is the sole death signal.
            if self.backend.heartbeat_interval_s > 0.0 {
                let now = self.clock.now();
                for node in self
                    .registry
                    .stale_nodes(now, self.backend.heartbeat_timeout_s)
                {
                    self.on_member_gone(node.index());
                }
            }
            self.dispatch_all()?;
            self.check_progress(total)?;
        }
        // Orderly shutdown: stop accepting, release every live member
        // (Shutdown frame, then EOF), drop parked connections.
        self.stop_accept.store(true, Ordering::SeqCst);
        for w in 0..self.members.len() {
            if self.members[w].alive {
                let _ = self.send_to(w, WireMsg::Shutdown.into());
                self.members[w].tx = None;
            }
        }
        self.held.clear(); // dropped sinks read as EOF on the worker side
        let makespan_s = self.clock.now().as_secs();
        let tasks_per_worker: Vec<usize> = self.members.iter().map(|m| m.completed).collect();
        let member_reports: Vec<NetMemberReport> = self
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| NetMemberReport {
                worker: i,
                pid: m.pid,
                joined_s: m.joined_s,
                joined_mid_run: m.joined_mid_run,
                calibration_probes: m.probes_done,
                units_completed: m.completed,
                left: m.left,
            })
            .collect();
        let workers = self.members.len();
        self.members.clear(); // drop = close, kill (no-op for clean exits), reap
        for mut child in self.unclaimed_children.drain(..) {
            let _ = child.kill();
            let _ = child.wait();
        }
        let bytes_received = self.bytes_received.load(Ordering::Relaxed);
        let (calibration_s, adaptation_log) = match self.adaptation {
            Some(ad) => (ad.calibration_done_s, ad.engine.into_log()),
            None => (0.0, AdaptationLog::new()),
        };
        let unit_ids: Vec<usize> = self.completions.keys().copied().collect();
        Ok(SkeletonOutcome {
            kind: self.kind,
            completed: unit_ids.len(),
            unit_ids,
            makespan_s,
            calibration_s,
            adaptation_log,
            resilience: ResilienceReport {
                requeued_tasks: self.requeued_tasks,
                retried_tasks: self.retried_tasks,
                migrated_stages: 0,
                nodes_lost: self.nodes_lost,
                // This backend never speculates (see `apply_directives`).
                speculated_units: 0,
                speculation_wins: 0,
            },
            children: self
                .spans
                .iter()
                .map(|s| s.outcome_from(&self.completions))
                .collect(),
            detail: OutcomeDetail::NetFarm {
                workers,
                tasks_per_worker,
                rejected_joins: self.rejected_joins,
                bytes_sent: self.counters.bytes.load(Ordering::Relaxed),
                bytes_received,
                wire_write_s: self.counters.write_seconds(),
                wire_encode_s: self.counters.encode_seconds(),
                bytes_copied: self.counters.copied.load(Ordering::Relaxed),
                unit_digests: self.digests.into_iter().collect(),
                members: member_reports,
            },
        })
    }
}

/// Poll the acceptor until the run ends; each fresh connection gets a
/// greeter thread so a peer that stalls mid-handshake cannot block
/// admission of the others.  When the run stops accepting, the acceptor is
/// handed back through `recycle` so the backend can listen on the same
/// endpoint for the next job (members — the membership substrate — outlive
/// any single run).
fn spawn_acceptor_thread(
    mut acceptor: Box<dyn Acceptor>,
    tx: mpsc::Sender<Event>,
    stop: Arc<AtomicBool>,
    required_caps: u32,
    recycle: mpsc::Sender<Box<dyn Acceptor>>,
) {
    std::thread::spawn(move || {
        while !stop.load(Ordering::SeqCst) {
            match acceptor.poll_accept() {
                Ok(Some(conn)) => {
                    let tx = tx.clone();
                    std::thread::spawn(move || greet(conn, required_caps, tx));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        let _ = recycle.send(acceptor);
    });
}

/// The registration handshake, connection side: the first frame must be a
/// Join with the master's wire version and the job's required capabilities;
/// anything else is answered with Shutdown and refused.
fn greet(
    conn: grasp_core::transport::FramedConnection,
    required_caps: u32,
    tx: mpsc::Sender<Event>,
) {
    let peer = conn.peer().to_string();
    let (mut sink, source) = conn.split();
    let mut source = source;
    let admitted = match source.recv() {
        Ok(Some(WireMsg::Join {
            pid,
            wire_version,
            capabilities,
        })) => {
            if wire_version == WIRE_VERSION as u32 && capabilities & required_caps == required_caps
            {
                Some(pid)
            } else {
                None
            }
        }
        _ => None,
    };
    match admitted {
        Some(pid) => {
            let _ = tx.send(Event::Join {
                peer,
                pid,
                sink,
                source,
            });
        }
        None => {
            let _ = sink.send(&WireMsg::Shutdown);
            let _ = tx.send(Event::Rejected);
        }
    }
}
