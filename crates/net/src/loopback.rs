//! In-memory loopback transport with scripted fault injection.
//!
//! The TCP transport is the production path, but sockets make fault timing
//! nondeterministic: a SIGKILL lands between *some* pair of frames, and
//! which pair differs per run.  The loopback transport replaces the socket
//! with a pair of in-memory byte channels and lets a test attach a
//! [`FaultScript`] to each direction of a connection: "drop the 3rd frame",
//! "truncate the 2nd frame after 9 bytes and kill the link", "deliver the
//! 4th frame twice".  Frame indices are counted per direction, so a test
//! that disables heartbeats (welcome interval 0) sees a fully deterministic
//! sequence — worker outbound frame 0 is always Join, frame 1 the first
//! Done, and so on.
//!
//! Faults act at the *sending* edge: the bytes that cross the channel are
//! exactly the bytes a broken network would have delivered, and the
//! receiving side runs the same framing code as TCP, so truncation is
//! detected by the real decoder, not simulated.

use grasp_core::error::GraspError;
use grasp_core::transport::{Acceptor, FrameSink, FrameSource, FramedConnection};
use grasp_core::wire::{FrameView, WireMsg, MAX_FRAME_PAYLOAD};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// What to do to a single outbound frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Deliver the frame untouched (the default for unscripted indices).
    Pass,
    /// Silently discard the frame; the connection stays up.
    Drop,
    /// Deliver the frame twice back-to-back (a retransmit gone wrong).
    Duplicate,
    /// Deliver only the first `n` bytes of the frame, then kill the
    /// connection — the receiver sees a mid-frame EOF (a crash mid-write).
    TruncateAt(usize),
    /// Sleep this long before delivering the frame (a congested link).
    Delay(Duration),
    /// Kill the connection instead of sending the frame — the receiver
    /// sees a clean EOF at a frame boundary (a crash between writes).
    CloseBefore,
}

/// A per-direction schedule mapping outbound frame index (0-based) to the
/// fault applied to that frame.  Unscripted frames pass through untouched.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    faults: BTreeMap<usize, FrameFault>,
}

impl FaultScript {
    /// A script that faults nothing.
    pub fn clean() -> Self {
        FaultScript::default()
    }

    /// Schedule `fault` for the `frame`-th outbound frame (builder-style).
    pub fn with(mut self, frame: usize, fault: FrameFault) -> Self {
        self.faults.insert(frame, fault);
        self
    }

    fn get(&self, frame: usize) -> FrameFault {
        self.faults.get(&frame).copied().unwrap_or(FrameFault::Pass)
    }
}

fn link_down(detail: &str) -> GraspError {
    GraspError::WireProtocol {
        detail: format!("loopback link down: {detail}"),
    }
}

/// Sending half of one loopback direction; applies the fault script.
struct LoopbackSink {
    tx: Option<mpsc::Sender<Vec<u8>>>,
    /// Shared with both directions: a hard close severs the whole
    /// connection, like a process death would.
    dead: Arc<AtomicBool>,
    script: FaultScript,
    next_frame: usize,
    /// Reused encode buffer for the owned-message [`FrameSink::send`] path.
    frame: Vec<u8>,
    copied: Option<Arc<AtomicU64>>,
}

impl LoopbackSink {
    fn push(&mut self, chunk: Vec<u8>) -> Result<(), GraspError> {
        match &self.tx {
            Some(tx) => tx
                .send(chunk)
                .map_err(|_| link_down("peer dropped its receive half")),
            None => Err(link_down("connection was hard-closed")),
        }
    }

    /// Copy encoded bytes into an owned chunk for the channel hand-off.
    /// This is the one copy the loopback transport cannot avoid (a channel
    /// needs owned data), and it is what the copy counter accounts.
    fn to_chunk(&self, frame: &[u8]) -> Vec<u8> {
        if let Some(c) = &self.copied {
            c.fetch_add(frame.len() as u64, Ordering::Relaxed);
        }
        frame.to_vec()
    }

    fn hard_close(&mut self) {
        self.dead.store(true, Ordering::SeqCst);
        self.tx = None;
    }
}

impl FrameSink for LoopbackSink {
    fn send(&mut self, msg: &WireMsg) -> Result<usize, GraspError> {
        let mut frame = std::mem::take(&mut self.frame);
        msg.encode_into(&mut frame);
        let sent = self.send_frame(&frame);
        self.frame = frame;
        sent
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<usize, GraspError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(link_down("connection was hard-closed"));
        }
        let idx = self.next_frame;
        self.next_frame += 1;
        let n = frame.len();
        match self.script.get(idx) {
            FrameFault::Pass => {
                let chunk = self.to_chunk(frame);
                self.push(chunk)?;
            }
            FrameFault::Drop => {}
            FrameFault::Duplicate => {
                let first = self.to_chunk(frame);
                self.push(first)?;
                let second = self.to_chunk(frame);
                self.push(second)?;
            }
            FrameFault::Delay(d) => {
                std::thread::sleep(d);
                let chunk = self.to_chunk(frame);
                self.push(chunk)?;
            }
            FrameFault::TruncateAt(cut) => {
                let cut = cut.min(frame.len());
                let chunk = self.to_chunk(&frame[..cut]);
                let _ = self.push(chunk);
                self.hard_close();
                return Err(link_down("scripted truncation killed the connection"));
            }
            FrameFault::CloseBefore => {
                self.hard_close();
                return Err(link_down("scripted close killed the connection"));
            }
        }
        Ok(n)
    }

    fn set_copy_counter(&mut self, counter: Arc<AtomicU64>) {
        self.copied = Some(counter);
    }
}

/// Receiving half of one loopback direction; runs the real frame decoder
/// over whatever byte chunks the faulty sender let through.
struct LoopbackSource {
    rx: mpsc::Receiver<Vec<u8>>,
    dead: Arc<AtomicBool>,
    disconnected: bool,
    buf: Vec<u8>,
    /// Bytes at the front of `buf` belonging to the frame returned by the
    /// previous `recv_view` call; drained lazily at the start of the next
    /// call so the returned view can borrow `buf`.
    consumed: usize,
    counter: Option<Arc<AtomicU64>>,
}

impl LoopbackSource {
    fn ingest(&mut self, chunk: Vec<u8>) {
        if let Some(c) = &self.counter {
            c.fetch_add(chunk.len() as u64, Ordering::Relaxed);
        }
        self.buf.extend_from_slice(&chunk);
    }

    /// Length of the complete frame at the front of the buffer, if one is
    /// fully buffered.
    fn buffered_frame_len(&self) -> Result<Option<usize>, GraspError> {
        // Frame layout: magic(4) + version(1) + tag(1) + len(4) + payload + checksum(4).
        if self.buf.len() < 10 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[6], self.buf[7], self.buf[8], self.buf[9]]) as usize;
        if len > MAX_FRAME_PAYLOAD {
            // Never wait for bytes that a corrupt length field promises but
            // the sender will not produce.
            return Err(GraspError::WireProtocol {
                detail: format!("frame payload length {len} exceeds limit {MAX_FRAME_PAYLOAD}"),
            });
        }
        let needed = 14 + len;
        if self.buf.len() < needed {
            return Ok(None);
        }
        Ok(Some(needed))
    }
}

impl FrameSource for LoopbackSource {
    fn recv_view(&mut self) -> Result<Option<FrameView<'_>>, GraspError> {
        // Drop the frame handed out by the previous call.
        self.buf.drain(..self.consumed);
        self.consumed = 0;
        loop {
            // Drain everything already queued so bytes sent before a hard
            // close are still delivered in order.
            loop {
                match self.rx.try_recv() {
                    Ok(chunk) => self.ingest(chunk),
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        self.disconnected = true;
                        break;
                    }
                }
            }
            if let Some(needed) = self.buffered_frame_len()? {
                self.consumed = needed;
                let (view, _) = FrameView::decode_slice(&self.buf[..needed])?;
                return Ok(Some(view));
            }
            if self.disconnected || self.dead.load(Ordering::SeqCst) {
                // The link is gone: a clean frame boundary is EOF, leftover
                // bytes are a truncated frame.
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(GraspError::WireProtocol {
                    detail: format!(
                        "connection died mid-frame with {} undecodable bytes buffered",
                        self.buf.len()
                    ),
                });
            }
            match self.rx.recv_timeout(Duration::from_millis(5)) {
                Ok(chunk) => self.ingest(chunk),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => self.disconnected = true,
            }
        }
    }

    fn set_byte_counter(&mut self, counter: Arc<AtomicU64>) {
        self.counter = Some(counter);
    }
}

/// The connecting side of an in-memory network; cloneable, so a test can
/// hand connection handles to as many worker threads as it likes.
#[derive(Clone)]
pub struct LoopbackNet {
    accept_tx: mpsc::Sender<FramedConnection>,
    next_conn: Arc<AtomicUsize>,
}

/// The accepting side of an in-memory network; plug it into the backend
/// via `NetBackend::over`.
pub struct LoopbackAcceptor {
    accept_rx: mpsc::Receiver<FramedConnection>,
    label: String,
}

impl LoopbackNet {
    /// Create a connected (connector, acceptor) pair.
    pub fn new() -> (LoopbackNet, LoopbackAcceptor) {
        let (accept_tx, accept_rx) = mpsc::channel();
        (
            LoopbackNet {
                accept_tx,
                next_conn: Arc::new(AtomicUsize::new(0)),
            },
            LoopbackAcceptor {
                accept_rx,
                label: "loopback".to_string(),
            },
        )
    }

    /// Open a fault-free connection; returns the worker-side endpoint.
    pub fn connect(&self) -> Result<FramedConnection, GraspError> {
        self.connect_faulty(FaultScript::clean(), FaultScript::clean())
    }

    /// Open a connection with scripted faults: `to_master` governs the
    /// worker's outbound frames, `to_worker` the master's.  Returns the
    /// worker-side endpoint; the master side lands in the acceptor queue.
    pub fn connect_faulty(
        &self,
        to_master: FaultScript,
        to_worker: FaultScript,
    ) -> Result<FramedConnection, GraspError> {
        let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let dead = Arc::new(AtomicBool::new(false));
        let (wtx, wrx) = mpsc::channel(); // worker -> master bytes
        let (mtx, mrx) = mpsc::channel(); // master -> worker bytes
        let worker_side = FramedConnection::new(
            format!("loopback:{id}:worker"),
            Box::new(LoopbackSink {
                tx: Some(wtx),
                dead: Arc::clone(&dead),
                script: to_master,
                next_frame: 0,
                frame: Vec::new(),
                copied: None,
            }),
            Box::new(LoopbackSource {
                rx: mrx,
                dead: Arc::clone(&dead),
                disconnected: false,
                buf: Vec::new(),
                consumed: 0,
                counter: None,
            }),
        );
        let master_side = FramedConnection::new(
            format!("loopback:{id}"),
            Box::new(LoopbackSink {
                tx: Some(mtx),
                dead: Arc::clone(&dead),
                script: to_worker,
                next_frame: 0,
                frame: Vec::new(),
                copied: None,
            }),
            Box::new(LoopbackSource {
                rx: wrx,
                dead,
                disconnected: false,
                buf: Vec::new(),
                consumed: 0,
                counter: None,
            }),
        );
        self.accept_tx
            .send(master_side)
            .map_err(|_| link_down("acceptor is gone"))?;
        Ok(worker_side)
    }
}

impl Acceptor for LoopbackAcceptor {
    fn poll_accept(&mut self) -> Result<Option<FramedConnection>, GraspError> {
        match self.accept_rx.try_recv() {
            Ok(conn) => Ok(Some(conn)),
            // A fully dropped connector side just means no more joiners.
            Err(mpsc::TryRecvError::Empty) | Err(mpsc::TryRecvError::Disconnected) => Ok(None),
        }
    }

    fn endpoint(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_core::transport::Acceptor;

    fn pair() -> (FramedConnection, FramedConnection, LoopbackNet) {
        let (net, mut acceptor) = LoopbackNet::new();
        let worker = net.connect().expect("connect");
        let master = acceptor
            .poll_accept()
            .expect("accept")
            .expect("connection queued");
        (worker, master, net)
    }

    fn faulty_pair(
        to_master: FaultScript,
        to_worker: FaultScript,
    ) -> (FramedConnection, FramedConnection) {
        let (net, mut acceptor) = LoopbackNet::new();
        let worker = net.connect_faulty(to_master, to_worker).expect("connect");
        let master = acceptor
            .poll_accept()
            .expect("accept")
            .expect("connection queued");
        (worker, master)
    }

    #[test]
    fn clean_connection_round_trips_both_directions() {
        let (mut worker, mut master, _net) = pair();
        worker.send(&WireMsg::Heartbeat).unwrap();
        assert_eq!(master.recv().unwrap(), Some(WireMsg::Heartbeat));
        master.send(&WireMsg::Shutdown).unwrap();
        assert_eq!(worker.recv().unwrap(), Some(WireMsg::Shutdown));
    }

    #[test]
    fn dropping_the_worker_side_is_a_clean_eof_for_the_master() {
        let (worker, mut master, _net) = pair();
        drop(worker);
        assert_eq!(master.recv().unwrap(), None);
    }

    #[test]
    fn a_dropped_frame_never_arrives_but_later_frames_do() {
        let script = FaultScript::clean().with(0, FrameFault::Drop);
        let (mut worker, mut master) = faulty_pair(script, FaultScript::clean());
        worker.send(&WireMsg::Heartbeat).unwrap();
        worker.send(&WireMsg::Shutdown).unwrap();
        // Frame 0 (Heartbeat) vanished; frame 1 (Shutdown) arrives first.
        assert_eq!(master.recv().unwrap(), Some(WireMsg::Shutdown));
    }

    #[test]
    fn a_duplicated_frame_arrives_twice() {
        let script = FaultScript::clean().with(0, FrameFault::Duplicate);
        let (mut worker, mut master) = faulty_pair(script, FaultScript::clean());
        worker.send(&WireMsg::Heartbeat).unwrap();
        assert_eq!(master.recv().unwrap(), Some(WireMsg::Heartbeat));
        assert_eq!(master.recv().unwrap(), Some(WireMsg::Heartbeat));
    }

    #[test]
    fn truncation_is_a_decode_error_not_a_clean_eof() {
        let script = FaultScript::clean().with(0, FrameFault::TruncateAt(9));
        let (mut worker, mut master) = faulty_pair(script, FaultScript::clean());
        assert!(worker.send(&WireMsg::Heartbeat).is_err());
        let err = master.recv().expect_err("partial frame must not decode");
        assert!(matches!(err, GraspError::WireProtocol { .. }), "{err}");
    }

    #[test]
    fn close_before_is_a_clean_eof_and_severs_both_directions() {
        let script = FaultScript::clean().with(1, FrameFault::CloseBefore);
        let (mut worker, mut master) = faulty_pair(script, FaultScript::clean());
        worker.send(&WireMsg::Heartbeat).unwrap();
        assert!(worker.send(&WireMsg::Heartbeat).is_err());
        // Frame 0 was queued before the close and still arrives.
        assert_eq!(master.recv().unwrap(), Some(WireMsg::Heartbeat));
        assert_eq!(master.recv().unwrap(), None);
        // The hard close also kills the master->worker direction.
        assert!(master.send(&WireMsg::Shutdown).is_err());
    }

    #[test]
    fn delayed_frames_still_arrive_intact() {
        let script = FaultScript::clean().with(0, FrameFault::Delay(Duration::from_millis(20)));
        let (mut worker, mut master) = faulty_pair(script, FaultScript::clean());
        worker.send(&WireMsg::Heartbeat).unwrap();
        assert_eq!(master.recv().unwrap(), Some(WireMsg::Heartbeat));
    }
}
