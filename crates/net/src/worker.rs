//! The worker side of the socket backend.
//!
//! A network worker is symmetric to the process backend's pipe worker — the
//! same [`grasp_proc::worker::execute_payload`] kernels behind the same
//! frame protocol — but its membership is *negotiated* rather than implied
//! by a spawn:
//!
//! 1. connect to the master's endpoint and send [`WireMsg::Join`] (pid,
//!    wire version, capability mask);
//! 2. receive [`WireMsg::Welcome`] (assigned worker id, heartbeat cadence,
//!    spin scale) — or [`WireMsg::Shutdown`] / EOF when the master rejects
//!    the registration;
//! 3. serve [`WireMsg::Task`] frames (the master may lead with calibration
//!    probes before real units when the worker joined mid-run);
//! 4. optionally announce [`WireMsg::Goodbye`] to leave gracefully: the
//!    master stops handing it new units, the worker finishes what is on its
//!    wire, and the master's [`WireMsg::Shutdown`] releases it;
//! 5. exit on [`WireMsg::Shutdown`] or a clean EOF.

use grasp_core::transport::{tcp_connect, FrameSink, FramedConnection};
use grasp_core::wire::{FrameView, WireMsg, CAP_ALL, WIRE_VERSION};
use grasp_proc::worker::execute_payload;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a worker presents itself and when (if ever) it leaves voluntarily.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Capability bitmask advertised in the Join frame ([`CAP_ALL`] for the
    /// stock worker; tests narrow it to exercise rejection).
    pub capabilities: u32,
    /// Wire version claimed in the Join frame (the real [`WIRE_VERSION`];
    /// tests bend it to exercise rejection).
    pub wire_version: u32,
    /// Leave gracefully after this many served tasks: the worker sends
    /// [`WireMsg::Goodbye`], keeps serving the tasks already on its wire,
    /// and exits when the master's drain completes.
    pub leave_after: Option<usize>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            capabilities: CAP_ALL,
            wire_version: WIRE_VERSION as u32,
            leave_after: None,
        }
    }
}

type SharedSink = Arc<Mutex<Box<dyn FrameSink>>>;

fn send(sink: &SharedSink, msg: &WireMsg) -> bool {
    let mut sink = sink.lock().unwrap_or_else(|e| e.into_inner());
    sink.send(msg).is_ok()
}

/// Run the worker protocol over an established connection until the master
/// releases it; returns the process exit code (0 = clean, 2 = protocol
/// breach).  Transport-agnostic: the TCP binary and the loopback tests both
/// land here.
pub fn run_connection(conn: FramedConnection, opts: WorkerOptions) -> i32 {
    let (sink, mut source) = conn.split();
    let sink: SharedSink = Arc::new(Mutex::new(sink));
    let stop = Arc::new(AtomicBool::new(false));
    // Make sure the heartbeat thread winds down on every exit path.
    struct StopOnExit(Arc<AtomicBool>);
    impl Drop for StopOnExit {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }
    let _stop_guard = StopOnExit(Arc::clone(&stop));

    if !send(
        &sink,
        &WireMsg::Join {
            pid: std::process::id() as u64,
            wire_version: opts.wire_version,
            capabilities: opts.capabilities,
        },
    ) {
        eprintln!("grasp-net-worker: could not reach the master");
        return 2;
    }
    let (heartbeat_interval_s, spin_per_work_unit) = match source.recv() {
        Ok(Some(WireMsg::Welcome {
            heartbeat_interval_s,
            spin_per_work_unit,
            ..
        })) => (heartbeat_interval_s, spin_per_work_unit),
        // A rejection (version/capability mismatch) is answered with
        // Shutdown or a plain close: not this worker's error.
        Ok(Some(WireMsg::Shutdown)) | Ok(None) => return 0,
        Ok(Some(other)) => {
            eprintln!("grasp-net-worker: expected Welcome, got {other:?}");
            return 2;
        }
        Err(e) => {
            eprintln!("grasp-net-worker: {e}");
            return 2;
        }
    };
    if heartbeat_interval_s > 0.0 {
        let out = Arc::clone(&sink);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_secs_f64(heartbeat_interval_s));
                if stop.load(Ordering::Relaxed) || !send(&out, &WireMsg::Heartbeat) {
                    break;
                }
            }
        });
    }
    let mut served = 0usize;
    let mut said_goodbye = false;
    loop {
        // Tasks come off the wire as borrowed views: payload bytes are
        // executed straight out of the source's reused read buffer.
        let reply = match source.recv_view() {
            Ok(Some(FrameView::Task {
                unit_id,
                work,
                kind,
                payload,
            })) => {
                let t0 = Instant::now();
                match execute_payload(kind, payload, work, spin_per_work_unit) {
                    Ok(digest) => WireMsg::Done {
                        unit_id,
                        elapsed_s: t0.elapsed().as_secs_f64(),
                        digest,
                    },
                    Err(e) => WireMsg::Failed {
                        unit_id,
                        detail: e.to_string(),
                    },
                }
            }
            Ok(Some(FrameView::Shutdown)) | Ok(None) => return 0,
            Ok(Some(other)) => {
                eprintln!("grasp-net-worker: unexpected frame {other:?}");
                return 2;
            }
            Err(e) => {
                eprintln!("grasp-net-worker: {e}");
                return 2;
            }
        };
        {
            if !send(&sink, &reply) {
                return 0; // master gone; nothing left to serve
            }
            served += 1;
            if let Some(after) = opts.leave_after {
                if !said_goodbye && served >= after {
                    said_goodbye = true;
                    // Announce the leave; the master drains this
                    // worker's window and answers with Shutdown.
                    if !send(
                        &sink,
                        &WireMsg::Goodbye {
                            reason: format!("leaving voluntarily after {served} tasks"),
                        },
                    ) {
                        return 0;
                    }
                }
            }
        }
    }
}

/// Connect to a master at `addr` (retrying briefly while it binds) and run
/// the worker protocol; the body of the `grasp-net-worker` binary.
pub fn run_tcp(addr: &str, opts: WorkerOptions) -> i32 {
    let mut last_err = None;
    for _ in 0..50 {
        match tcp_connect(addr) {
            Ok(conn) => return run_connection(conn, opts),
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    eprintln!(
        "grasp-net-worker: master at {addr} unreachable: {}",
        last_err.map(|e| e.to_string()).unwrap_or_default()
    );
    2
}
