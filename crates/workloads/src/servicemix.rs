//! A deterministic multi-job arrival stream for service-mode experiments.
//!
//! A resident service is exercised not by one big skeleton but by *many
//! small jobs of mixed shape arriving over time*.  This module generates
//! that stream reproducibly: Poisson arrivals (exponential inter-arrival
//! times from a seeded LCG — no global RNG, no wall clock) over a cycling
//! mix of skeleton shapes (plain farm, pipeline, farm-of-farms), so every
//! run of an experiment sees the exact same offered load.

use grasp_core::prelude::{Skeleton, StageSpec};
use grasp_core::TaskSpec;
use serde::{Deserialize, Serialize};

/// One job of the stream: when it arrives and what it asks for.
#[derive(Debug, Clone)]
pub struct ServiceArrival {
    /// Seconds from stream start to submission.
    pub arrival_s: f64,
    /// The skeleton to submit.
    pub skeleton: Skeleton,
    /// Shape label ("farm", "pipeline", "farm-of"), e.g. for payload kinds
    /// or per-shape reporting.
    pub shape: &'static str,
}

/// A reproducible mixed-shape Poisson job stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMixJob {
    /// Jobs in the stream.
    pub jobs: usize,
    /// Mean inter-arrival time in seconds (Poisson arrivals).
    pub mean_interarrival_s: f64,
    /// Work units per job (split across the job's shape).
    pub units_per_job: usize,
    /// Declared work per unit.
    pub work_per_unit: f64,
    /// LCG seed.
    pub seed: u64,
}

impl Default for ServiceMixJob {
    fn default() -> Self {
        ServiceMixJob {
            jobs: 60,
            mean_interarrival_s: 0.002,
            units_per_job: 24,
            work_per_unit: 1.0,
            seed: 42,
        }
    }
}

impl ServiceMixJob {
    /// A small stream suitable for unit tests and smoke runs.
    pub fn small() -> Self {
        ServiceMixJob {
            jobs: 12,
            units_per_job: 8,
            ..ServiceMixJob::default()
        }
    }

    /// The deterministic arrival schedule: `jobs` entries with strictly
    /// increasing arrival stamps and shapes cycling farm → pipeline →
    /// farm-of-farms.
    pub fn arrivals(&self) -> Vec<ServiceArrival> {
        let mut lcg = self.seed.wrapping_mul(2).wrapping_add(1);
        let mut uniform = move || {
            // Numerical Recipes LCG; top 53 bits → (0, 1].
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 11) as f64 + 1.0) / (1u64 << 53) as f64
        };
        let mut at = 0.0;
        (0..self.jobs)
            .map(|i| {
                at += -self.mean_interarrival_s * uniform().ln();
                let (skeleton, shape) = self.shape_for(i);
                ServiceArrival {
                    arrival_s: at,
                    skeleton,
                    shape,
                }
            })
            .collect()
    }

    /// The `i`-th job's skeleton: the shape mix cycles with `i`.
    fn shape_for(&self, i: usize) -> (Skeleton, &'static str) {
        let units = self.units_per_job.max(2);
        match i % 3 {
            0 => (
                Skeleton::farm(TaskSpec::uniform(units, self.work_per_unit, 0, 0)),
                "farm",
            ),
            1 => {
                // Two stages sharing each unit's work over `units` items.
                let stages = (0..2)
                    .map(|id| StageSpec::new(id, self.work_per_unit / 2.0, 0, 0))
                    .collect();
                (Skeleton::pipeline(stages, units), "pipeline")
            }
            _ => {
                let half = units / 2;
                (
                    Skeleton::farm_of(vec![
                        Skeleton::farm(TaskSpec::uniform(half, self.work_per_unit, 0, 0)),
                        Skeleton::farm(TaskSpec::uniform(units - half, self.work_per_unit, 0, 0)),
                    ]),
                    "farm-of",
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_increasing() {
        let job = ServiceMixJob::small();
        let a = job.arrivals();
        let b = job.arrivals();
        assert_eq!(a.len(), job.jobs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_s, y.arrival_s);
            assert_eq!(x.shape, y.shape);
        }
        assert!(
            a.windows(2).all(|w| w[0].arrival_s < w[1].arrival_s),
            "arrival stamps must strictly increase"
        );
    }

    #[test]
    fn the_mix_cycles_all_three_shapes_with_constant_units() {
        let job = ServiceMixJob::small();
        let arrivals = job.arrivals();
        let shapes: std::collections::BTreeSet<&str> = arrivals.iter().map(|a| a.shape).collect();
        assert_eq!(
            shapes.into_iter().collect::<Vec<_>>(),
            vec!["farm", "farm-of", "pipeline"]
        );
        for a in &arrivals {
            assert!(a.skeleton.validate().is_ok());
            assert_eq!(a.skeleton.work_units(), job.units_per_job);
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ServiceMixJob::small();
        let b = ServiceMixJob {
            seed: 7,
            ..ServiceMixJob::small()
        };
        assert_ne!(
            a.arrivals().last().unwrap().arrival_s,
            b.arrivals().last().unwrap().arrival_s
        );
    }
}
