//! Numerical integration panels with a tunable computation/communication
//! ratio.
//!
//! The integral of a configurable oscillatory function over `[a, b]` is split
//! into panels; each panel is one farm task evaluated by composite Simpson's
//! rule with a per-panel point count.  Because the point count is a free
//! parameter, this workload is the one used to sweep the
//! computation/communication ratio in the granularity experiments.

use grasp_core::TaskSpec;
use serde::{Deserialize, Serialize};

/// A quadrature job description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadratureJob {
    /// Lower integration bound.
    pub a: f64,
    /// Upper integration bound.
    pub b: f64,
    /// Number of panels (= farm tasks).
    pub panels: usize,
    /// Simpson sub-intervals per panel (must be even; odd values are bumped).
    pub points_per_panel: usize,
    /// Oscillation frequency of the integrand.
    pub frequency: f64,
}

impl Default for QuadratureJob {
    fn default() -> Self {
        QuadratureJob {
            a: 0.0,
            b: 10.0,
            panels: 256,
            points_per_panel: 10_000,
            frequency: 3.0,
        }
    }
}

impl QuadratureJob {
    /// A small job suitable for unit tests.
    pub fn small() -> Self {
        QuadratureJob {
            panels: 16,
            points_per_panel: 200,
            ..QuadratureJob::default()
        }
    }

    /// The integrand: `sin(f·x)·exp(-x/5) + x²/50`.
    pub fn integrand(&self, x: f64) -> f64 {
        (self.frequency * x).sin() * (-x / 5.0).exp() + x * x / 50.0
    }

    /// The analytically known reference value of the full integral, obtained
    /// by a very fine composite Simpson evaluation (used to validate panels).
    pub fn reference_value(&self) -> f64 {
        self.integrate_range(self.a, self.b, 400_000)
    }

    /// Composite Simpson's rule over `[lo, hi]` with `n` sub-intervals
    /// (bumped to the next even number).  This is the real kernel.
    pub fn integrate_range(&self, lo: f64, hi: f64, n: usize) -> f64 {
        let n = if n % 2 == 0 { n.max(2) } else { n + 1 };
        let h = (hi - lo) / n as f64;
        let mut acc = self.integrand(lo) + self.integrand(hi);
        for i in 1..n {
            let x = lo + i as f64 * h;
            acc += self.integrand(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
        }
        acc * h / 3.0
    }

    /// Bounds of panel `i`.
    pub fn panel_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.b - self.a) / self.panels.max(1) as f64;
        (self.a + i as f64 * width, self.a + (i + 1) as f64 * width)
    }

    /// Integrate a single panel (one farm task).
    pub fn integrate_panel(&self, i: usize) -> f64 {
        let (lo, hi) = self.panel_bounds(i);
        self.integrate_range(lo, hi, self.points_per_panel)
    }

    /// The job as abstract farm tasks.  Work is proportional to the number of
    /// integrand evaluations; each task ships only a tiny descriptor and a
    /// single `f64` result.
    pub fn as_tasks(&self, evals_per_work_unit: f64) -> Vec<TaskSpec> {
        let scale = evals_per_work_unit.max(1.0);
        let work = self.points_per_panel as f64 / scale;
        (0..self.panels)
            .map(|id| TaskSpec::new(id, work, 48, 8))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_sum_matches_whole_range_integral() {
        let job = QuadratureJob::small();
        let whole = job.integrate_range(job.a, job.b, 20_000);
        let sum: f64 = (0..job.panels).map(|i| job.integrate_panel(i)).sum();
        assert!(
            (whole - sum).abs() < 1e-3,
            "panel decomposition must preserve the integral: {whole} vs {sum}"
        );
    }

    #[test]
    fn panels_tile_the_interval() {
        let job = QuadratureJob::small();
        let (lo0, _) = job.panel_bounds(0);
        let (_, hi_last) = job.panel_bounds(job.panels - 1);
        assert!((lo0 - job.a).abs() < 1e-12);
        assert!((hi_last - job.b).abs() < 1e-9);
        for i in 1..job.panels {
            let (_, prev_hi) = job.panel_bounds(i - 1);
            let (lo, _) = job.panel_bounds(i);
            assert!((prev_hi - lo).abs() < 1e-12);
        }
    }

    #[test]
    fn simpson_converges_with_more_points() {
        let job = QuadratureJob::small();
        let coarse = job.integrate_range(0.0, 10.0, 10);
        let fine = job.integrate_range(0.0, 10.0, 10_000);
        let reference = job.reference_value();
        assert!((fine - reference).abs() < (coarse - reference).abs());
    }

    #[test]
    fn odd_subinterval_counts_are_handled() {
        let job = QuadratureJob::small();
        let odd = job.integrate_range(0.0, 1.0, 99);
        let even = job.integrate_range(0.0, 1.0, 100);
        assert!((odd - even).abs() < 1e-6);
    }

    #[test]
    fn task_descriptors_reflect_the_point_count() {
        let coarse = QuadratureJob {
            points_per_panel: 100,
            ..QuadratureJob::small()
        };
        let fine = QuadratureJob {
            points_per_panel: 10_000,
            ..QuadratureJob::small()
        };
        let tc = coarse.as_tasks(100.0);
        let tf = fine.as_tasks(100.0);
        assert_eq!(tc.len(), coarse.panels);
        assert!(tf[0].work > tc[0].work * 50.0);
    }
}
