//! # grasp-workloads — synthetic scientific workloads
//!
//! The GRASP evaluation exercises the skeletons on parameter-sweep and
//! stream-processing codes typical of grid applications of its era.  This
//! crate provides self-contained, deterministic stand-ins for those codes:
//!
//! * [`mandelbrot`] — Mandelbrot-set tiles: an embarrassingly parallel farm
//!   with highly *irregular* per-task cost (the classic load-balancing demo);
//! * [`matmul`] — blocked dense matrix multiplication: a regular,
//!   compute-bound farm;
//! * [`quadrature`] — numerical integration panels with a tunable
//!   computation/communication ratio;
//! * [`seqmatch`] — synthetic pairwise sequence alignment (Smith–Waterman
//!   scoring on random sequences): the BLAST-style parameter sweep the
//!   companion task-farm paper motivates;
//! * [`imaging`] — a four-stage image-processing pipeline (blur → sharpen →
//!   edge detect → threshold) for the pipeline skeleton;
//! * [`blackscholes`] — a Black–Scholes option-pricing sweep (fine-grained
//!   farm tasks);
//! * [`servicemix`] — a deterministic Poisson stream of mixed-shape small
//!   jobs for exercising the resident multi-job service.
//!
//! Every module offers both the **real kernel** (usable by the `grasp-exec`
//! shared-memory backend and by Criterion micro-benchmarks) and a
//! **descriptor generator** that turns the workload into the abstract
//! [`grasp_core::TaskSpec`] / [`grasp_core::StageSpec`] lists the simulated
//! grid executes, with work units calibrated to the kernels' relative costs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod blackscholes;
pub mod imaging;
pub mod mandelbrot;
pub mod matmul;
pub mod quadrature;
pub mod seqmatch;
pub mod servicemix;
pub mod transim;

pub use blackscholes::BlackScholesSweep;
pub use imaging::{ImagePipeline, SyntheticImage};
pub use mandelbrot::MandelbrotJob;
pub use matmul::MatMulJob;
pub use quadrature::QuadratureJob;
pub use seqmatch::SequenceMatchJob;
pub use servicemix::{ServiceArrival, ServiceMixJob};
pub use transim::{PartitionOutcome, TranSimJob};
