//! Black–Scholes option-pricing sweep: a fine-grained farm workload.
//!
//! Each task prices a batch of European options with the closed-form
//! Black–Scholes formula.  Individual option evaluations are tiny, which
//! makes this the *fine-grained* end of the computation/communication
//! spectrum — the regime where chunking and granularity adaptation matter
//! most.

use grasp_core::TaskSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of one European option.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptionParams {
    /// Spot price.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Time to maturity in years.
    pub maturity: f64,
    /// Risk-free rate.
    pub rate: f64,
    /// Volatility.
    pub volatility: f64,
    /// `true` for a call, `false` for a put.
    pub is_call: bool,
}

/// Standard normal CDF via the Abramowitz–Stegun rational approximation.
pub fn norm_cdf(x: f64) -> f64 {
    // Φ(x) = 1 − φ(x)·(a₁k + a₂k² + a₃k³ + a₄k⁴ + a₅k⁵), k = 1/(1+0.2316419·|x|)
    let a = [
        0.319381530,
        -0.356563782,
        1.781477937,
        -1.821255978,
        1.330274429,
    ];
    let l = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * l);
    let mut poly = 0.0;
    let mut kp = k;
    for &coef in &a {
        poly += coef * kp;
        kp *= k;
    }
    let pdf = (-l * l / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let cdf = 1.0 - pdf * poly;
    if x >= 0.0 {
        cdf
    } else {
        1.0 - cdf
    }
}

/// Black–Scholes price of one option.
pub fn black_scholes_price(p: &OptionParams) -> f64 {
    let sqrt_t = p.maturity.max(1e-9).sqrt();
    let d1 = ((p.spot / p.strike).ln() + (p.rate + 0.5 * p.volatility * p.volatility) * p.maturity)
        / (p.volatility.max(1e-9) * sqrt_t);
    let d2 = d1 - p.volatility * sqrt_t;
    let discount = (-p.rate * p.maturity).exp();
    if p.is_call {
        p.spot * norm_cdf(d1) - p.strike * discount * norm_cdf(d2)
    } else {
        p.strike * discount * norm_cdf(-d2) - p.spot * norm_cdf(-d1)
    }
}

/// A sweep over many options, batched into farm tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlackScholesSweep {
    /// Total number of options priced.
    pub options: usize,
    /// Options per farm task.
    pub batch_size: usize,
    /// RNG seed for option-parameter generation.
    pub seed: u64,
}

impl Default for BlackScholesSweep {
    fn default() -> Self {
        BlackScholesSweep {
            options: 100_000,
            batch_size: 500,
            seed: 13,
        }
    }
}

impl BlackScholesSweep {
    /// A small sweep suitable for unit tests.
    pub fn small() -> Self {
        BlackScholesSweep {
            options: 400,
            batch_size: 50,
            seed: 13,
        }
    }

    /// Generate the option parameters of one batch deterministically.
    pub fn batch(&self, batch_index: usize) -> Vec<OptionParams> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(batch_index as u64));
        let start = batch_index * self.batch_size;
        let count = self.batch_size.min(self.options.saturating_sub(start));
        (0..count)
            .map(|_| OptionParams {
                spot: rng.gen_range(50.0..150.0),
                strike: rng.gen_range(50.0..150.0),
                maturity: rng.gen_range(0.1..2.0),
                rate: rng.gen_range(0.0..0.08),
                volatility: rng.gen_range(0.1..0.6),
                is_call: rng.gen_bool(0.5),
            })
            .collect()
    }

    /// Price one batch (the real kernel).
    pub fn price_batch(&self, batch_index: usize) -> Vec<f64> {
        self.batch(batch_index)
            .iter()
            .map(black_scholes_price)
            .collect()
    }

    /// Number of farm tasks (batches).
    pub fn task_count(&self) -> usize {
        self.options.div_ceil(self.batch_size.max(1))
    }

    /// The sweep as abstract farm tasks: uniform work per batch, tiny
    /// parameter input, one `f64` per option back.
    pub fn as_tasks(&self, options_per_work_unit: f64) -> Vec<TaskSpec> {
        let scale = options_per_work_unit.max(1.0);
        (0..self.task_count())
            .map(|id| {
                let start = id * self.batch_size;
                let count = self.batch_size.min(self.options.saturating_sub(start));
                TaskSpec::new(
                    id,
                    count as f64 / scale,
                    (count * 48) as u64,
                    (count * 8) as u64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_cdf_matches_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(norm_cdf(6.0) > 0.999);
    }

    #[test]
    fn call_price_matches_textbook_example() {
        // S=100, K=100, T=1, r=5 %, σ=20 % → call ≈ 10.45.
        let p = OptionParams {
            spot: 100.0,
            strike: 100.0,
            maturity: 1.0,
            rate: 0.05,
            volatility: 0.2,
            is_call: true,
        };
        assert!((black_scholes_price(&p) - 10.45).abs() < 0.05);
    }

    #[test]
    fn put_call_parity_holds() {
        let call = OptionParams {
            spot: 110.0,
            strike: 95.0,
            maturity: 0.75,
            rate: 0.03,
            volatility: 0.35,
            is_call: true,
        };
        let put = OptionParams {
            is_call: false,
            ..call
        };
        let lhs = black_scholes_price(&call) - black_scholes_price(&put);
        let rhs = call.spot - call.strike * (-call.rate * call.maturity).exp();
        assert!(
            (lhs - rhs).abs() < 1e-3,
            "put-call parity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn batches_tile_the_sweep() {
        let sweep = BlackScholesSweep::small();
        assert_eq!(sweep.task_count(), 8);
        let total: usize = (0..sweep.task_count()).map(|i| sweep.batch(i).len()).sum();
        assert_eq!(total, sweep.options);
        // Deterministic.
        assert_eq!(sweep.batch(3).len(), sweep.batch(3).len());
        assert!((sweep.price_batch(0)[0] - sweep.price_batch(0)[0]).abs() < 1e-12);
    }

    #[test]
    fn partial_final_batch_is_handled() {
        let sweep = BlackScholesSweep {
            options: 105,
            batch_size: 50,
            seed: 1,
        };
        assert_eq!(sweep.task_count(), 3);
        assert_eq!(sweep.batch(2).len(), 5);
        let tasks = sweep.as_tasks(10.0);
        assert!(tasks[2].work < tasks[0].work);
    }

    #[test]
    fn prices_are_positive_and_bounded() {
        let sweep = BlackScholesSweep::small();
        for i in 0..sweep.task_count() {
            for (price, params) in sweep.price_batch(i).iter().zip(sweep.batch(i)) {
                assert!(*price >= -1e-9);
                assert!(*price <= params.spot.max(params.strike) + 1.0);
            }
        }
    }
}
