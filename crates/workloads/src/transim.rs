//! Optimistic (Time-Warp) discrete-event transaction simulation.
//!
//! A farm of logical processes in the Jefferson Time-Warp style: each farm
//! task owns one partition of accounts and replays a deterministic stream of
//! timestamped transfer transactions that *arrive out of order* (network
//! skew).  The partition executes events optimistically as they arrive; when
//! a straggler — an event timestamped earlier than the local virtual time —
//! turns up, every speculatively executed event past it is rolled back
//! (undone via its logged delta) and re-executed after the straggler.  The
//! cost of optimism is therefore real re-execution work, and it varies per
//! partition with the seed: rollback-heavy partitions become genuine
//! straggler tasks, which is exactly the tail profile the engine-level
//! speculation of this repo is built to absorb.
//!
//! Transaction effects are order-dependent on purpose (the transferred
//! amount is derived from the source account's *current* balance), so the
//! optimistic execution is only correct because rollback exists: the final
//! state must match a strictly timestamp-ordered sequential execution, and
//! the tests pin that Time-Warp equivalence.

use grasp_core::TaskSpec;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic Time-Warp transaction-simulation job: `partitions` farm
/// tasks, each replaying `events_per_partition` skewed-arrival transfers
/// over its own `accounts_per_partition` accounts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TranSimJob {
    /// Number of account partitions (= number of farm tasks).
    pub partitions: usize,
    /// Accounts per partition (transfers never cross partitions).
    pub accounts_per_partition: usize,
    /// Committed transactions per partition.
    pub events_per_partition: usize,
    /// Arrival skew in virtual-time units: each event arrives displaced by
    /// a uniform jitter in `[0, skew)`.  `0` means in-order arrival — no
    /// rollbacks, pure conservative execution.
    pub skew: f64,
    /// Hash-chain iterations one event execution costs (the validation
    /// kernel; re-executions pay it again).
    pub kernel_iters: u64,
    /// RNG seed for transaction generation and arrival jitter.
    pub seed: u64,
}

impl Default for TranSimJob {
    fn default() -> Self {
        TranSimJob {
            partitions: 64,
            accounts_per_partition: 32,
            events_per_partition: 400,
            skew: 6.0,
            kernel_iters: 32,
            seed: 2007,
        }
    }
}

/// What one partition's optimistic replay produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionOutcome {
    /// Committed (distinct) transactions — always `events_per_partition`.
    pub committed_events: usize,
    /// Event executions paid, including every rollback re-execution; the
    /// ground-truth work of the partition.
    pub processed_events: usize,
    /// Straggler arrivals that forced a rollback.
    pub rollbacks: usize,
    /// Deepest single rollback (events undone at once).
    pub max_rollback_depth: usize,
    /// FNV-1a digest of the final balances (the committed state).
    pub state_digest: u64,
}

impl PartitionOutcome {
    /// Committed / processed — the classic Time-Warp efficiency metric
    /// (1.0 means no speculation was wasted).
    pub fn efficiency(&self) -> f64 {
        self.committed_events as f64 / self.processed_events.max(1) as f64
    }
}

/// One timestamped transfer inside a partition.
#[derive(Debug, Clone, Copy)]
struct Txn {
    timestamp: u64,
    src: usize,
    dst: usize,
    salt: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_mix(mut hash: u64, value: u64) -> u64 {
    hash ^= value;
    hash.wrapping_mul(FNV_PRIME)
}

impl TranSimJob {
    /// A small job suitable for unit tests.
    pub fn small() -> Self {
        TranSimJob {
            partitions: 6,
            accounts_per_partition: 8,
            events_per_partition: 60,
            skew: 4.0,
            kernel_iters: 8,
            seed: 7,
        }
    }

    /// Committed transactions over the whole job.
    pub fn total_committed(&self) -> usize {
        self.partitions * self.events_per_partition
    }

    /// The partition's transaction stream in timestamp order, with the
    /// arrival permutation its jitter induces.
    fn generate(&self, partition: usize) -> (Vec<Txn>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(partition as u64 + 1)),
        );
        let accounts = self.accounts_per_partition.max(2);
        let txns: Vec<Txn> = (0..self.events_per_partition)
            .map(|t| {
                let src = rng.gen_range(0..accounts);
                let mut dst = rng.gen_range(0..accounts - 1);
                if dst >= src {
                    dst += 1;
                }
                Txn {
                    timestamp: t as u64,
                    src,
                    dst,
                    salt: rng.next_u64(),
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..txns.len()).collect();
        if self.skew > 0.0 {
            let keys: Vec<f64> = txns
                .iter()
                .map(|t| t.timestamp as f64 + rng.gen_range(0.0..1.0) * self.skew)
                .collect();
            order.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).expect("finite arrival keys"));
        }
        (txns, order)
    }

    /// Execute one transaction against the balances, paying the validation
    /// kernel, and return the applied delta (needed to undo it exactly).
    fn execute(&self, balances: &mut [i64], txn: &Txn, kernel_iters: u64) -> i64 {
        let mut hash = fnv_mix(FNV_OFFSET, txn.salt);
        for _ in 0..kernel_iters {
            hash = fnv_mix(hash, txn.timestamp);
        }
        // Order-dependent on purpose: the amount reads the source's current
        // balance, so replaying in the wrong order yields a wrong state.
        let delta = ((balances[txn.src].unsigned_abs() ^ hash) % 97) as i64 + 1;
        balances[txn.src] -= delta;
        balances[txn.dst] += delta;
        delta
    }

    fn undo(balances: &mut [i64], txn: &Txn, delta: i64) {
        balances[txn.src] += delta;
        balances[txn.dst] -= delta;
    }

    fn digest(balances: &[i64]) -> u64 {
        balances
            .iter()
            .fold(FNV_OFFSET, |h, &b| fnv_mix(h, b as u64))
    }

    /// The Time-Warp replay of one partition at a chosen kernel cost.
    fn replay(&self, partition: usize, kernel_iters: u64) -> PartitionOutcome {
        let (txns, order) = self.generate(partition);
        let mut balances = vec![1_000i64; self.accounts_per_partition.max(2)];
        // Executed events with their applied deltas, kept in timestamp
        // order — the incremental state-saving log a straggler rolls back.
        let mut log: Vec<(usize, i64)> = Vec::with_capacity(txns.len());
        let mut processed = 0usize;
        let mut rollbacks = 0usize;
        let mut max_depth = 0usize;
        for &idx in &order {
            let arriving = &txns[idx];
            let keep = log.partition_point(|&(i, _)| txns[i].timestamp < arriving.timestamp);
            let undone: Vec<(usize, i64)> = log.split_off(keep);
            if !undone.is_empty() {
                rollbacks += 1;
                max_depth = max_depth.max(undone.len());
                for &(i, delta) in undone.iter().rev() {
                    Self::undo(&mut balances, &txns[i], delta);
                }
            }
            let delta = self.execute(&mut balances, arriving, kernel_iters);
            log.push((idx, delta));
            processed += 1;
            for (i, _) in undone {
                let delta = self.execute(&mut balances, &txns[i], kernel_iters);
                log.push((i, delta));
                processed += 1;
            }
        }
        PartitionOutcome {
            committed_events: txns.len(),
            processed_events: processed,
            rollbacks,
            max_rollback_depth: max_depth,
            state_digest: Self::digest(&balances),
        }
    }

    /// Optimistically replay one partition (the real per-task kernel).
    pub fn simulate_partition(&self, partition: usize) -> PartitionOutcome {
        self.replay(partition, self.kernel_iters)
    }

    /// The committed-state digest of a strictly timestamp-ordered sequential
    /// execution — the ground truth the optimistic replay must match.
    pub fn sequential_digest(&self, partition: usize) -> u64 {
        let (txns, _) = self.generate(partition);
        let mut balances = vec![1_000i64; self.accounts_per_partition.max(2)];
        for txn in &txns {
            self.execute(&mut balances, txn, self.kernel_iters);
        }
        Self::digest(&balances)
    }

    /// Exact processed-event count per partition (rollback re-executions
    /// included), from a kernel-free control-flow pre-pass.
    pub fn processed_event_counts(&self) -> Vec<usize> {
        (0..self.partitions)
            .map(|p| self.replay(p, 0).processed_events)
            .collect()
    }

    /// The job as abstract farm tasks: one task per partition, declared
    /// work = the partition's *exact* processed-event count (so
    /// rollback-heavy partitions are genuinely bigger tasks — the straggler
    /// tail), input = the transaction stream, output = the balances.
    pub fn as_tasks(&self, events_per_work_unit: f64) -> Vec<TaskSpec> {
        let scale = events_per_work_unit.max(1.0);
        self.processed_event_counts()
            .into_iter()
            .enumerate()
            .map(|(id, processed)| {
                TaskSpec::new(
                    id,
                    processed as f64 / scale,
                    (self.events_per_partition * 24) as u64,
                    (self.accounts_per_partition * 8) as u64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimistic_replay_matches_sequential_execution() {
        // The Time-Warp correctness property: whatever the arrival skew and
        // however many rollbacks it forces, the committed state equals the
        // timestamp-ordered sequential execution.
        let job = TranSimJob::small();
        for p in 0..job.partitions {
            let outcome = job.simulate_partition(p);
            assert_eq!(
                outcome.state_digest,
                job.sequential_digest(p),
                "partition {p} diverged from the sequential ground truth"
            );
            assert_eq!(outcome.committed_events, job.events_per_partition);
        }
    }

    #[test]
    fn skewed_arrivals_pay_for_rollbacks_and_in_order_arrivals_do_not() {
        let skewed = TranSimJob::small();
        let ordered = TranSimJob {
            skew: 0.0,
            ..skewed
        };
        let total_rollbacks: usize = (0..skewed.partitions)
            .map(|p| skewed.simulate_partition(p).rollbacks)
            .sum();
        assert!(total_rollbacks > 0, "skew 4.0 must force some rollbacks");
        for p in 0..ordered.partitions {
            let outcome = ordered.simulate_partition(p);
            assert_eq!(outcome.rollbacks, 0);
            assert_eq!(outcome.processed_events, outcome.committed_events);
            assert!((outcome.efficiency() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn replay_is_deterministic_and_partitions_differ() {
        let job = TranSimJob::small();
        assert_eq!(job.simulate_partition(0), job.simulate_partition(0));
        assert_ne!(
            job.simulate_partition(0).state_digest,
            job.simulate_partition(1).state_digest,
            "distinct partitions must carry distinct streams"
        );
    }

    #[test]
    fn tasks_are_sized_by_exact_processed_events_and_are_irregular() {
        let job = TranSimJob::small();
        let tasks = job.as_tasks(10.0);
        assert_eq!(tasks.len(), job.partitions);
        let counts = job.processed_event_counts();
        for (task, &processed) in tasks.iter().zip(&counts) {
            assert!((task.work - processed as f64 / 10.0).abs() < 1e-9);
            assert!(processed >= job.events_per_partition);
        }
        assert!(
            counts.iter().any(|&c| c != counts[0]),
            "rollback cost must differ across partitions: {counts:?}"
        );
    }

    #[test]
    fn kernel_cost_does_not_change_the_committed_state_shape() {
        // The sizing pre-pass runs the same control flow with the kernel
        // off; rollback/processed accounting must agree with the real run.
        let job = TranSimJob::small();
        for p in 0..job.partitions {
            let real = job.simulate_partition(p);
            let sized = job.replay(p, 0);
            assert_eq!(real.processed_events, sized.processed_events);
            assert_eq!(real.rollbacks, sized.rollbacks);
            assert_eq!(real.max_rollback_depth, sized.max_rollback_depth);
        }
    }
}
