//! Mandelbrot-set tiles: an irregular farm workload.
//!
//! The image is split into `tiles_x × tiles_y` tiles; each tile is one farm
//! task.  Per-tile cost varies enormously (interior points hit the iteration
//! cap, exterior points escape quickly), which is exactly the irregularity
//! that demand-driven and adaptive scheduling exploit.

use grasp_core::TaskSpec;
use serde::{Deserialize, Serialize};

/// A Mandelbrot rendering job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MandelbrotJob {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of tiles along x.
    pub tiles_x: usize,
    /// Number of tiles along y.
    pub tiles_y: usize,
    /// Iteration cap.
    pub max_iter: u32,
    /// Real-axis range.
    pub re_range: (f64, f64),
    /// Imaginary-axis range.
    pub im_range: (f64, f64),
}

impl Default for MandelbrotJob {
    fn default() -> Self {
        MandelbrotJob {
            width: 1024,
            height: 768,
            tiles_x: 16,
            tiles_y: 12,
            max_iter: 1000,
            re_range: (-2.2, 1.0),
            im_range: (-1.2, 1.2),
        }
    }
}

/// One rectangular tile of the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// Tile identifier (row-major).
    pub id: usize,
    /// First pixel column.
    pub x0: usize,
    /// First pixel row.
    pub y0: usize,
    /// Tile width in pixels.
    pub w: usize,
    /// Tile height in pixels.
    pub h: usize,
}

impl MandelbrotJob {
    /// A small job suitable for unit tests.
    pub fn small() -> Self {
        MandelbrotJob {
            width: 128,
            height: 96,
            tiles_x: 4,
            tiles_y: 3,
            max_iter: 200,
            ..MandelbrotJob::default()
        }
    }

    /// The tiles of this job, row-major.
    pub fn tiles(&self) -> Vec<Tile> {
        let tw = self.width.div_ceil(self.tiles_x.max(1));
        let th = self.height.div_ceil(self.tiles_y.max(1));
        let mut tiles = Vec::new();
        let mut id = 0;
        for ty in 0..self.tiles_y.max(1) {
            for tx in 0..self.tiles_x.max(1) {
                let x0 = tx * tw;
                let y0 = ty * th;
                if x0 >= self.width || y0 >= self.height {
                    continue;
                }
                tiles.push(Tile {
                    id,
                    x0,
                    y0,
                    w: tw.min(self.width - x0),
                    h: th.min(self.height - y0),
                });
                id += 1;
            }
        }
        tiles
    }

    /// Escape iteration count for one point of the complex plane.
    pub fn escape_count(&self, re: f64, im: f64) -> u32 {
        let mut zr = 0.0f64;
        let mut zi = 0.0f64;
        let mut i = 0u32;
        while i < self.max_iter && zr * zr + zi * zi <= 4.0 {
            let next_zr = zr * zr - zi * zi + re;
            zi = 2.0 * zr * zi + im;
            zr = next_zr;
            i += 1;
        }
        i
    }

    /// Map a pixel to its point in the complex plane.
    pub fn pixel_to_point(&self, x: usize, y: usize) -> (f64, f64) {
        let re = self.re_range.0
            + (self.re_range.1 - self.re_range.0) * (x as f64 / self.width.max(1) as f64);
        let im = self.im_range.0
            + (self.im_range.1 - self.im_range.0) * (y as f64 / self.height.max(1) as f64);
        (re, im)
    }

    /// Render one tile, returning the per-pixel escape counts (row-major
    /// within the tile).  This is the real compute kernel.
    pub fn render_tile(&self, tile: &Tile) -> Vec<u32> {
        let mut out = Vec::with_capacity(tile.w * tile.h);
        for y in tile.y0..tile.y0 + tile.h {
            for x in tile.x0..tile.x0 + tile.w {
                let (re, im) = self.pixel_to_point(x, y);
                out.push(self.escape_count(re, im));
            }
        }
        out
    }

    /// Total iterations spent rendering one tile — the ground-truth work.
    pub fn tile_work(&self, tile: &Tile) -> f64 {
        self.render_tile(tile).iter().map(|&c| c as f64).sum()
    }

    /// The job as abstract farm tasks for the simulated grid.
    ///
    /// Work units equal the true iteration count of each tile divided by
    /// `iters_per_work_unit`, so the simulated irregularity matches the real
    /// kernel's; input is the tiny tile descriptor, output the rendered tile.
    pub fn as_tasks(&self, iters_per_work_unit: f64) -> Vec<TaskSpec> {
        let scale = iters_per_work_unit.max(1.0);
        self.tiles()
            .iter()
            .map(|t| TaskSpec::new(t.id, self.tile_work(t) / scale, 64, (t.w * t.h * 4) as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_cover_the_image_exactly_once() {
        let job = MandelbrotJob::small();
        let tiles = job.tiles();
        assert_eq!(tiles.len(), 12);
        let area: usize = tiles.iter().map(|t| t.w * t.h).sum();
        assert_eq!(area, job.width * job.height);
        // Ids are sequential.
        assert!(tiles.iter().enumerate().all(|(i, t)| t.id == i));
    }

    #[test]
    fn interior_points_hit_the_iteration_cap() {
        let job = MandelbrotJob::small();
        assert_eq!(job.escape_count(0.0, 0.0), job.max_iter);
        // A point far outside escapes immediately.
        assert!(job.escape_count(2.0, 2.0) < 5);
    }

    #[test]
    fn tile_costs_are_irregular() {
        let job = MandelbrotJob::small();
        let tiles = job.tiles();
        let works: Vec<f64> = tiles.iter().map(|t| job.tile_work(t)).collect();
        let min = works.iter().cloned().fold(f64::MAX, f64::min);
        let max = works.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max > min * 3.0,
            "Mandelbrot tiles should differ in cost by >3x (min {min}, max {max})"
        );
    }

    #[test]
    fn task_descriptors_mirror_kernel_work() {
        let job = MandelbrotJob::small();
        let tasks = job.as_tasks(1000.0);
        assert_eq!(tasks.len(), job.tiles().len());
        let tiles = job.tiles();
        for (task, tile) in tasks.iter().zip(&tiles) {
            assert!((task.work - job.tile_work(tile) / 1000.0).abs() < 1e-9);
            assert_eq!(task.output_bytes, (tile.w * tile.h * 4) as u64);
        }
    }

    #[test]
    fn render_tile_output_size_matches() {
        let job = MandelbrotJob::small();
        let tile = job.tiles()[0];
        assert_eq!(job.render_tile(&tile).len(), tile.w * tile.h);
    }

    #[test]
    fn pixel_mapping_spans_the_ranges() {
        let job = MandelbrotJob::small();
        let (re0, im0) = job.pixel_to_point(0, 0);
        assert!((re0 - job.re_range.0).abs() < 1e-12);
        assert!((im0 - job.im_range.0).abs() < 1e-12);
    }
}
