//! A four-stage image-processing pipeline for the pipeline skeleton.
//!
//! Stream items are synthetic greyscale frames; the stages are a 3×3 Gaussian
//! blur, an unsharp-mask sharpen, a Sobel edge detector and a binary
//! threshold — a representative mix of cheap and expensive stencil stages
//! whose costs differ enough that stage→node mapping matters.

use grasp_core::error::GraspError;
use grasp_core::wire::{ByteReader, ByteWriter, Fnv64, PAYLOAD_IMAGING};
use grasp_core::{FarmedStage, Skeleton, StageSpec, TaskSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic greyscale frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel intensities in `[0, 255]`.
    pub pixels: Vec<f32>,
}

impl SyntheticImage {
    /// A deterministic pseudo-random frame with a bright diagonal band (so
    /// edge detection has structure to find).
    pub fn generate(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let band = if (x as i64 - y as i64).unsigned_abs() < (width / 8).max(1) as u64 {
                    120.0
                } else {
                    0.0
                };
                pixels.push((band + rng.gen_range(0.0..64.0)) as f32);
            }
        }
        SyntheticImage {
            width,
            height,
            pixels,
        }
    }

    /// Bytes of one frame (4 bytes per pixel).
    pub fn byte_size(&self) -> u64 {
        (self.pixels.len() * 4) as u64
    }

    fn at(&self, x: isize, y: isize) -> f32 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[y * self.width + x]
    }

    fn convolve3x3(&self, kernel: &[f32; 9], divisor: f32) -> SyntheticImage {
        let (w, h) = (self.width, self.height);
        let mut out = vec![0.0f32; self.pixels.len()];
        // The clamped 9-tap gather — needed only where a tap would fall off
        // the frame.  The fast path below accumulates in the identical tap
        // order, so interior pixels are bit-identical either way.
        let clamped = |x: isize, y: isize| {
            let mut acc = 0.0f32;
            for ky in -1..=1isize {
                for kx in -1..=1isize {
                    let k = kernel[((ky + 1) * 3 + (kx + 1)) as usize];
                    acc += k * self.at(x + kx, y + ky);
                }
            }
            acc / divisor
        };
        if w >= 3 && h >= 3 {
            // Interior: every tap is in bounds, so the stencil reads three
            // row slices directly — no clamping, no per-tap index
            // arithmetic — and the x loop autovectorizes.
            for y in 1..h - 1 {
                let above = &self.pixels[(y - 1) * w..y * w];
                let row = &self.pixels[y * w..(y + 1) * w];
                let below = &self.pixels[(y + 1) * w..(y + 2) * w];
                let orow = &mut out[y * w..(y + 1) * w];
                for x in 1..w - 1 {
                    let mut acc = 0.0f32;
                    acc += kernel[0] * above[x - 1];
                    acc += kernel[1] * above[x];
                    acc += kernel[2] * above[x + 1];
                    acc += kernel[3] * row[x - 1];
                    acc += kernel[4] * row[x];
                    acc += kernel[5] * row[x + 1];
                    acc += kernel[6] * below[x - 1];
                    acc += kernel[7] * below[x];
                    acc += kernel[8] * below[x + 1];
                    orow[x] = acc / divisor;
                }
            }
            // Borders: top and bottom rows, then the side columns.
            for x in 0..w {
                out[x] = clamped(x as isize, 0);
                out[(h - 1) * w + x] = clamped(x as isize, (h - 1) as isize);
            }
            for y in 1..h - 1 {
                out[y * w] = clamped(0, y as isize);
                out[y * w + w - 1] = clamped((w - 1) as isize, y as isize);
            }
        } else {
            // Degenerate frames (thinner than the stencil): clamp everywhere.
            for y in 0..h {
                for x in 0..w {
                    out[y * w + x] = clamped(x as isize, y as isize);
                }
            }
        }
        SyntheticImage {
            width: w,
            height: h,
            pixels: out,
        }
    }

    /// 3×3 Gaussian blur.
    pub fn blur(&self) -> SyntheticImage {
        self.convolve3x3(&[1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0], 16.0)
    }

    /// Unsharp-mask sharpen.
    pub fn sharpen(&self) -> SyntheticImage {
        self.convolve3x3(&[0.0, -1.0, 0.0, -1.0, 5.0, -1.0, 0.0, -1.0, 0.0], 1.0)
    }

    /// Sobel gradient magnitude.
    pub fn edges(&self) -> SyntheticImage {
        let gx = self.convolve3x3(&[-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0], 1.0);
        let gy = self.convolve3x3(&[-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0], 1.0);
        let pixels = gx
            .pixels
            .iter()
            .zip(&gy.pixels)
            .map(|(a, b)| (a * a + b * b).sqrt())
            .collect();
        SyntheticImage {
            width: self.width,
            height: self.height,
            pixels,
        }
    }

    /// Binary threshold at `level`.
    pub fn threshold(&self, level: f32) -> SyntheticImage {
        SyntheticImage {
            width: self.width,
            height: self.height,
            pixels: self
                .pixels
                .iter()
                .map(|&p| if p >= level { 255.0 } else { 0.0 })
                .collect(),
        }
    }

    /// Mean intensity (useful for sanity checks).
    pub fn mean_intensity(&self) -> f32 {
        if self.pixels.is_empty() {
            0.0
        } else {
            self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
        }
    }
}

/// The four-stage image pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImagePipeline {
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Number of frames streamed through the pipeline.
    pub frames: usize,
    /// Seed for frame generation.
    pub seed: u64,
}

impl Default for ImagePipeline {
    fn default() -> Self {
        ImagePipeline {
            width: 640,
            height: 480,
            frames: 200,
            seed: 11,
        }
    }
}

impl ImagePipeline {
    /// A small pipeline suitable for unit tests.
    pub fn small() -> Self {
        ImagePipeline {
            width: 64,
            height: 48,
            frames: 10,
            seed: 11,
        }
    }

    /// Generate frame `i` deterministically.
    pub fn frame(&self, i: usize) -> SyntheticImage {
        SyntheticImage::generate(self.width, self.height, self.seed.wrapping_add(i as u64))
    }

    /// Run the whole four-stage chain on one frame (the real kernel).
    pub fn process_frame(&self, frame: &SyntheticImage) -> SyntheticImage {
        frame.blur().sharpen().edges().threshold(96.0)
    }

    /// Relative per-pixel costs of the four stages (in 3×3-convolution
    /// equivalents): blur 1, sharpen 1, Sobel 2 (+magnitude ≈ 2.2), threshold
    /// 0.1.
    pub fn stage_cost_weights() -> [f64; 4] {
        [1.0, 1.0, 2.2, 0.1]
    }

    /// The pipeline as abstract stage descriptors.  Work units are pixels ×
    /// stage weight / `pixels_per_work_unit`; every stage forwards a full
    /// frame; stage state (filter buffers) is one frame.
    pub fn as_stages(&self, pixels_per_work_unit: f64) -> Vec<StageSpec> {
        let scale = pixels_per_work_unit.max(1.0);
        let pixels = (self.width * self.height) as f64;
        let frame_bytes = (self.width * self.height * 4) as u64;
        Self::stage_cost_weights()
            .iter()
            .enumerate()
            .map(|(id, &w)| StageSpec::new(id, pixels * w / scale, frame_bytes, frame_bytes))
            .collect()
    }

    /// Index of the heaviest stage (the Sobel edge detector).
    pub const HEAVY_STAGE: usize = 2;

    /// The pipeline as a composable skeleton whose heavy Sobel stage is a
    /// **nested farm** of `sobel_replicas` workers (a pipeline-of-farms):
    /// the edge detector dominates the chain (~2.2 convolutions per pixel
    /// against 1 for blur/sharpen), so farming it out removes the bottleneck
    /// while the chain keeps its stage structure and ordering guarantee.
    pub fn as_nested_skeleton(&self, pixels_per_work_unit: f64, sobel_replicas: usize) -> Skeleton {
        let stages = self
            .as_stages(pixels_per_work_unit)
            .into_iter()
            .map(|s| {
                if s.id == Self::HEAVY_STAGE {
                    FarmedStage::farmed(s, sobel_replicas)
                } else {
                    FarmedStage::plain(s)
                }
            })
            .collect();
        Skeleton::pipeline_of(stages, self.frames)
    }

    /// The stream as per-frame **farm** tasks (each task runs the whole
    /// four-stage chain on one frame) — the shape a process-isolated backend
    /// distributes, mirroring how `Skeleton::lower_to_farm` lowers a
    /// pipeline: work per task is the full per-item stage chain.
    pub fn as_frame_tasks(&self, pixels_per_work_unit: f64) -> Vec<TaskSpec> {
        let scale = pixels_per_work_unit.max(1.0);
        let pixels = (self.width * self.height) as f64;
        let work: f64 = Self::stage_cost_weights()
            .iter()
            .map(|w| pixels * w / scale)
            .sum();
        let frame_bytes = (self.width * self.height * 4) as u64;
        (0..self.frames)
            .map(|id| TaskSpec::new(id, work, frame_bytes, frame_bytes))
            .collect()
    }

    /// Wire payloads for every frame task, keyed by the unit ids of
    /// [`ImagePipeline::as_frame_tasks`]: hand these to a process-isolated
    /// backend so workers run the real convolution chain.
    pub fn wire_payloads(&self) -> Vec<(usize, u32, Vec<u8>)> {
        (0..self.frames)
            .map(|id| {
                (
                    id,
                    PAYLOAD_IMAGING,
                    ImagingFrameTask {
                        pipeline: *self,
                        frame: id,
                    }
                    .encode(),
                )
            })
            .collect()
    }

    /// The capability mask a worker must advertise in its registration
    /// handshake to serve this pipeline's payloads (the imaging kernel plus
    /// the spin kernel every job needs for calibration probes).
    pub fn wire_capabilities(&self) -> u32 {
        use grasp_core::wire::{payload_capability, CAP_SPIN};
        CAP_SPIN | payload_capability(PAYLOAD_IMAGING)
    }

    /// The stream split into `lanes` independent sub-streams, each flowing
    /// through its own pipeline instance (a **farm-of-pipelines**): frames
    /// are mutually independent, so the outer farm may route whole lanes to
    /// wherever capacity is, while each lane keeps the stage chain.
    pub fn as_farm_of_pipelines(&self, pixels_per_work_unit: f64, lanes: usize) -> Skeleton {
        let lanes = lanes.clamp(1, self.frames.max(1));
        let stages = self.as_stages(pixels_per_work_unit);
        let per_lane = self.frames / lanes;
        let remainder = self.frames % lanes;
        let children = (0..lanes)
            .map(|i| {
                let items = per_lane + usize::from(i < remainder);
                Skeleton::pipeline(stages.clone(), items)
            })
            .collect();
        Skeleton::farm_of(children)
    }
}

/// One serializable, self-contained imaging computation: run the whole
/// four-stage chain on frame `frame` of `pipeline`.  Like
/// [`crate::matmul::MatMulBandTask`], the frame itself is derived from the
/// job seed rather than shipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImagingFrameTask {
    /// The enclosing pipeline job (frame geometry, stream length, seed).
    pub pipeline: ImagePipeline,
    /// Index of the frame this task processes.
    pub frame: usize,
}

impl ImagingFrameTask {
    /// Serialize for the worker wire protocol.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.pipeline.width as u64);
        w.put_u64(self.pipeline.height as u64);
        w.put_u64(self.pipeline.frames as u64);
        w.put_u64(self.pipeline.seed);
        w.put_u64(self.frame as u64);
        w.into_vec()
    }

    /// Deserialize a task produced by [`ImagingFrameTask::encode`];
    /// malformed bytes yield a typed [`GraspError`] instead of panicking.
    pub fn decode(bytes: &[u8]) -> Result<Self, GraspError> {
        let mut r = ByteReader::new(bytes);
        let task = ImagingFrameTask {
            pipeline: ImagePipeline {
                width: r.take_u64()? as usize,
                height: r.take_u64()? as usize,
                frames: r.take_u64()? as usize,
                seed: r.take_u64()?,
            },
            frame: r.take_u64()? as usize,
        };
        r.finish()?;
        let p = &task.pipeline;
        if p.width == 0 || p.height == 0 || p.width > 1 << 14 || p.height > 1 << 14 {
            return Err(GraspError::WireProtocol {
                detail: format!(
                    "imaging frame geometry out of range: {}x{}",
                    p.width, p.height
                ),
            });
        }
        Ok(task)
    }

    /// Execute the chain on the derived frame.
    pub fn execute(&self) -> SyntheticImage {
        self.pipeline
            .process_frame(&self.pipeline.frame(self.frame))
    }

    /// Deterministic digest of the processed frame (exact `f32` bit
    /// patterns) — identical wherever the kernel runs.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for v in self.execute().pixels {
            h.update(&v.to_bits().to_le_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_frames_are_deterministic() {
        let p = ImagePipeline::small();
        assert_eq!(p.frame(0), p.frame(0));
        assert_ne!(p.frame(0), p.frame(1));
        assert_eq!(p.frame(0).pixels.len(), 64 * 48);
    }

    #[test]
    fn blur_smooths_the_image() {
        let img = SyntheticImage::generate(32, 32, 1);
        let blurred = img.blur();
        // Blur preserves the mean approximately but reduces local variance.
        let var = |im: &SyntheticImage| {
            let m = im.mean_intensity();
            im.pixels.iter().map(|p| (p - m) * (p - m)).sum::<f32>() / im.pixels.len() as f32
        };
        assert!((img.mean_intensity() - blurred.mean_intensity()).abs() < 5.0);
        assert!(var(&blurred) < var(&img));
    }

    #[test]
    fn edges_light_up_on_the_diagonal_band() {
        let img = SyntheticImage::generate(64, 64, 2);
        let edges = img.blur().edges();
        // Edge response near the band boundary should exceed the response in
        // the flat background far from it.
        let near_band = edges.at(8, 16).max(edges.at(16, 8));
        let background = edges.at(60, 5);
        assert!(near_band > background);
    }

    #[test]
    fn interior_fast_path_matches_the_clamped_gather_bit_for_bit() {
        // An asymmetric kernel and a non-square frame so any tap-order or
        // row-addressing mistake in the fast path shows up.
        let kernel = [-1.0, 0.5, 1.0, -2.0, 0.25, 2.0, -1.0, -0.5, 1.0];
        let img = SyntheticImage::generate(17, 9, 7);
        let got = img.convolve3x3(&kernel, 2.0);
        for y in 0..9isize {
            for x in 0..17isize {
                let mut acc = 0.0f32;
                for ky in -1..=1isize {
                    for kx in -1..=1isize {
                        acc += kernel[((ky + 1) * 3 + (kx + 1)) as usize] * img.at(x + kx, y + ky);
                    }
                }
                assert_eq!(got.at(x, y).to_bits(), (acc / 2.0).to_bits());
            }
        }
        // Frames thinner than the stencil take the clamped-everywhere path.
        let thin = SyntheticImage::generate(2, 5, 7);
        assert_eq!(thin.blur().pixels.len(), 10);
    }

    #[test]
    fn digest_folds_identically_to_hashing_the_concatenated_bytes() {
        let task = ImagingFrameTask {
            pipeline: ImagePipeline::small(),
            frame: 1,
        };
        let out = task.execute();
        let mut bytes = Vec::with_capacity(out.pixels.len() * 4);
        for v in &out.pixels {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(task.digest(), grasp_core::wire::fnv1a_64(&bytes));
    }

    #[test]
    fn threshold_is_binary() {
        let img = SyntheticImage::generate(16, 16, 3);
        let t = img.threshold(50.0);
        assert!(t.pixels.iter().all(|&p| p == 0.0 || p == 255.0));
    }

    #[test]
    fn process_frame_produces_binary_output_of_same_size() {
        let p = ImagePipeline::small();
        let out = p.process_frame(&p.frame(0));
        assert_eq!(out.pixels.len(), 64 * 48);
        assert!(out.pixels.iter().all(|&v| v == 0.0 || v == 255.0));
    }

    #[test]
    fn stage_descriptors_reflect_cost_weights() {
        let p = ImagePipeline::small();
        let stages = p.as_stages(1000.0);
        assert_eq!(stages.len(), 4);
        assert!(stages[2].work_per_item > stages[0].work_per_item);
        assert!(stages[3].work_per_item < stages[0].work_per_item);
        assert_eq!(stages[0].forward_bytes, (64 * 48 * 4) as u64);
    }

    #[test]
    fn byte_size_matches_pixel_count() {
        let img = SyntheticImage::generate(10, 10, 0);
        assert_eq!(img.byte_size(), 400);
    }

    #[test]
    fn nested_skeleton_farms_the_sobel_stage() {
        let p = ImagePipeline::small();
        let s = p.as_nested_skeleton(1000.0, 4);
        assert_eq!(s.work_units(), p.frames);
        match &s {
            Skeleton::PipelineOf { stages, items } => {
                assert_eq!(*items, p.frames);
                assert_eq!(stages.len(), 4);
                assert_eq!(stages[ImagePipeline::HEAVY_STAGE].replicas, 4);
                assert!(stages
                    .iter()
                    .filter(|st| st.spec.id != ImagePipeline::HEAVY_STAGE)
                    .all(|st| st.replicas == 1));
            }
            other => panic!("expected a pipeline-of-farms, got {other:?}"),
        }
    }

    #[test]
    fn frame_tasks_cover_the_stream_with_the_whole_chain_per_frame() {
        let p = ImagePipeline::small();
        let tasks = p.as_frame_tasks(1000.0);
        assert_eq!(tasks.len(), p.frames);
        let chain_work: f64 = p.as_stages(1000.0).iter().map(|s| s.work_per_item).sum();
        assert!((tasks[0].work - chain_work).abs() < 1e-9);
        assert_eq!(tasks[3].id, 3);
    }

    #[test]
    fn imaging_tasks_round_trip_and_digest_deterministically() {
        let p = ImagePipeline::small();
        let payloads = p.wire_payloads();
        assert_eq!(payloads.len(), p.frames);
        let (id, kind, bytes) = &payloads[2];
        assert_eq!(*kind, PAYLOAD_IMAGING);
        assert_ne!(
            p.wire_capabilities() & grasp_core::wire::payload_capability(*kind),
            0,
            "the capability mask covers the shipped payload kind"
        );
        let task = ImagingFrameTask::decode(bytes).unwrap();
        assert_eq!(task.frame, *id);
        // The decoded task computes exactly the local reference chain.
        let local = p.process_frame(&p.frame(2));
        assert_eq!(task.execute().pixels, local.pixels);
        assert_eq!(task.digest(), task.digest());
        let other = ImagingFrameTask::decode(&payloads[3].2).unwrap();
        assert_ne!(task.digest(), other.digest());
        // Malformed payloads are typed errors, not panics.
        assert!(ImagingFrameTask::decode(&bytes[..7]).is_err());
        let huge = ImagingFrameTask {
            pipeline: ImagePipeline {
                width: 1 << 20,
                ..p
            },
            frame: 0,
        };
        assert!(ImagingFrameTask::decode(&huge.encode()).is_err());
    }

    #[test]
    fn farm_of_pipelines_partitions_every_frame() {
        let p = ImagePipeline::small(); // 10 frames
        let s = p.as_farm_of_pipelines(1000.0, 3);
        assert_eq!(s.work_units(), p.frames, "no frame lost to the split");
        match &s {
            Skeleton::FarmOf { children } => {
                assert_eq!(children.len(), 3);
                // 10 = 4 + 3 + 3.
                assert_eq!(children[0].work_units(), 4);
                assert_eq!(children[1].work_units(), 3);
            }
            other => panic!("expected a farm-of-pipelines, got {other:?}"),
        }
        // More lanes than frames is clamped.
        assert_eq!(p.as_farm_of_pipelines(1000.0, 99).work_units(), p.frames);
    }
}
