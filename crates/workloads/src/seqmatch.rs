//! Synthetic pairwise sequence alignment (Smith–Waterman scoring).
//!
//! The companion task-farm paper motivates GRASP with parameter-sweep
//! bioinformatics searches: a set of query sequences scored against a
//! database of subject sequences.  Real genome databases are not available
//! offline, so this module generates random nucleotide sequences
//! deterministically and scores them with a genuine Smith–Waterman local
//! alignment kernel (linear gap penalty) — the same O(n·m) dynamic-programming
//! cost profile as the real application.

use grasp_core::TaskSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic sequence-matching job: every query is scored against every
/// subject; one farm task = one query against the whole subject set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceMatchJob {
    /// Number of query sequences (= number of farm tasks).
    pub queries: usize,
    /// Number of subject (database) sequences.
    pub subjects: usize,
    /// Length of each query.
    pub query_len: usize,
    /// Length of each subject.
    pub subject_len: usize,
    /// RNG seed for sequence generation.
    pub seed: u64,
}

impl Default for SequenceMatchJob {
    fn default() -> Self {
        SequenceMatchJob {
            queries: 128,
            subjects: 64,
            query_len: 256,
            subject_len: 512,
            seed: 7,
        }
    }
}

const ALPHABET: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Smith–Waterman local-alignment score with match +2, mismatch −1, gap −2.
pub fn smith_waterman_score(a: &[u8], b: &[u8]) -> i64 {
    const MATCH: i64 = 2;
    const MISMATCH: i64 = -1;
    const GAP: i64 = -2;
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return 0;
    }
    let mut prev = vec![0i64; m + 1];
    let mut curr = vec![0i64; m + 1];
    let mut best = 0i64;
    for i in 1..=n {
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let score = (prev[j - 1] + sub)
                .max(prev[j] + GAP)
                .max(curr[j - 1] + GAP)
                .max(0);
            curr[j] = score;
            if score > best {
                best = score;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
        curr.iter_mut().for_each(|c| *c = 0);
    }
    best
}

impl SequenceMatchJob {
    /// A small job suitable for unit tests.
    pub fn small() -> Self {
        SequenceMatchJob {
            queries: 8,
            subjects: 4,
            query_len: 32,
            subject_len: 48,
            seed: 7,
        }
    }

    fn random_sequence(rng: &mut StdRng, len: usize) -> Vec<u8> {
        (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..4usize)])
            .collect()
    }

    /// Generate the query set deterministically.
    pub fn generate_queries(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.queries)
            .map(|_| Self::random_sequence(&mut rng, self.query_len))
            .collect()
    }

    /// Generate the subject (database) set deterministically.  A fixed seed
    /// offset keeps the subject set distinct from the query set.
    pub fn generate_subjects(&self) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x9E37_79B9));
        (0..self.subjects)
            .map(|_| Self::random_sequence(&mut rng, self.subject_len))
            .collect()
    }

    /// Score one query against the whole subject set, returning the best
    /// score per subject (the real per-task kernel).
    pub fn score_query(&self, query: &[u8], subjects: &[Vec<u8>]) -> Vec<i64> {
        subjects
            .iter()
            .map(|s| smith_waterman_score(query, s))
            .collect()
    }

    /// Dynamic-programming cell count per task (query_len × subject_len ×
    /// subjects) — the ground-truth work.
    pub fn cells_per_task(&self) -> f64 {
        self.query_len as f64 * self.subject_len as f64 * self.subjects as f64
    }

    /// The job as abstract farm tasks: uniform work, input = the query
    /// sequence, output = one score per subject.
    pub fn as_tasks(&self, cells_per_work_unit: f64) -> Vec<TaskSpec> {
        let scale = cells_per_work_unit.max(1.0);
        (0..self.queries)
            .map(|id| {
                TaskSpec::new(
                    id,
                    self.cells_per_task() / scale,
                    self.query_len as u64,
                    (self.subjects * 8) as u64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_highest() {
        let a = b"ACGTACGTACGT".to_vec();
        let b = b"ACGTACGTACGT".to_vec();
        let c = b"TTTTTTTTTTTT".to_vec();
        assert_eq!(smith_waterman_score(&a, &b), 2 * a.len() as i64);
        assert!(smith_waterman_score(&a, &c) < smith_waterman_score(&a, &b));
    }

    #[test]
    fn score_is_never_negative_and_empty_is_zero() {
        assert_eq!(smith_waterman_score(b"", b"ACGT"), 0);
        assert_eq!(smith_waterman_score(b"ACGT", b""), 0);
        assert!(smith_waterman_score(b"AAAA", b"TTTT") >= 0);
    }

    #[test]
    fn local_alignment_finds_embedded_motif() {
        // The motif ACGTACGT is embedded in a longer unrelated sequence.
        let query = b"ACGTACGT".to_vec();
        let subject = b"TTTTTTTTACGTACGTTTTTTTTT".to_vec();
        assert_eq!(smith_waterman_score(&query, &subject), 16);
    }

    #[test]
    fn generation_is_deterministic_and_differs_between_sets() {
        let job = SequenceMatchJob::small();
        assert_eq!(job.generate_queries(), job.generate_queries());
        assert_eq!(job.generate_subjects(), job.generate_subjects());
        assert_ne!(job.generate_queries()[0], job.generate_subjects()[0]);
        assert_eq!(job.generate_queries().len(), 8);
        assert_eq!(job.generate_subjects()[0].len(), 48);
    }

    #[test]
    fn score_query_returns_one_score_per_subject() {
        let job = SequenceMatchJob::small();
        let queries = job.generate_queries();
        let subjects = job.generate_subjects();
        let scores = job.score_query(&queries[0], &subjects);
        assert_eq!(scores.len(), job.subjects);
        assert!(scores.iter().all(|&s| s >= 0));
    }

    #[test]
    fn tasks_are_uniform_and_sized_by_cells() {
        let job = SequenceMatchJob::small();
        let tasks = job.as_tasks(1000.0);
        assert_eq!(tasks.len(), job.queries);
        assert!((tasks[0].work - job.cells_per_task() / 1000.0).abs() < 1e-9);
        assert!(tasks.windows(2).all(|w| w[0].work == w[1].work));
    }
}
