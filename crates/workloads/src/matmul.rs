//! Blocked dense matrix multiplication: a regular, compute-bound farm.
//!
//! `C = A × B` is decomposed into row-band tasks: each task computes
//! `block_rows` rows of `C`.  Unlike Mandelbrot tiles the tasks are all the
//! same size, so this workload isolates the effect of node heterogeneity and
//! external load from workload irregularity.

use grasp_core::error::GraspError;
use grasp_core::wire::{ByteReader, ByteWriter, Fnv64, PAYLOAD_MATMUL};
use grasp_core::TaskSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A blocked mat-mul job description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatMulJob {
    /// Matrix dimension (square `n × n` matrices).
    pub n: usize,
    /// Rows of `C` computed per task.
    pub block_rows: usize,
    /// Seed used to generate the input matrices.
    pub seed: u64,
}

impl Default for MatMulJob {
    fn default() -> Self {
        MatMulJob {
            n: 512,
            block_rows: 32,
            seed: 1,
        }
    }
}

impl MatMulJob {
    /// A small job suitable for unit tests.
    pub fn small() -> Self {
        MatMulJob {
            n: 64,
            block_rows: 16,
            seed: 1,
        }
    }

    /// Generate the two input matrices (row-major) deterministically.
    pub fn generate_inputs(&self) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let a: Vec<f64> = (0..self.n * self.n)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let b: Vec<f64> = (0..self.n * self.n)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        (a, b)
    }

    /// Number of row-band tasks.
    pub fn task_count(&self) -> usize {
        self.n.div_ceil(self.block_rows.max(1))
    }

    /// Compute rows `[row0, row0+rows)` of `C = A × B` (the real kernel).
    ///
    /// The k dimension is blocked so each stripe of `B` rows stays cache-hot
    /// across every output row of the band, and the inner `j` loop runs over
    /// paired slices — no index arithmetic, no bounds checks — so it
    /// autovectorizes.  Per output element the accumulation order is still
    /// ascending `k` (blocks ascend, `k` ascends within a block), so results
    /// are bit-identical across block sizes and with the naive triple loop.
    pub fn multiply_band(&self, a: &[f64], b: &[f64], row0: usize, rows: usize) -> Vec<f64> {
        const K_BLOCK: usize = 64;
        let n = self.n;
        let rows = rows.min(n.saturating_sub(row0));
        let mut c = vec![0.0; rows * n];
        for k0 in (0..n).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(n);
            for i in 0..rows {
                let arow = &a[(row0 + i) * n..(row0 + i + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for k in k0..k1 {
                    let aik = arow[k];
                    let brow = &b[k * n..(k + 1) * n];
                    for (cj, bj) in crow.iter_mut().zip(brow) {
                        *cj += aik * bj;
                    }
                }
            }
        }
        c
    }

    /// Floating-point operations per row-band task (2·rows·n²).
    pub fn flops_per_task(&self) -> f64 {
        2.0 * self.block_rows as f64 * (self.n * self.n) as f64
    }

    /// The job as abstract farm tasks: identical work per band, input = the
    /// band of `A` plus all of `B` is amortised as just the band (B is
    /// broadcast once in practice), output = the band of `C`.
    pub fn as_tasks(&self, flops_per_work_unit: f64) -> Vec<TaskSpec> {
        let scale = flops_per_work_unit.max(1.0);
        let band_bytes = (self.block_rows * self.n * 8) as u64;
        (0..self.task_count())
            .map(|id| TaskSpec::new(id, self.flops_per_task() / scale, band_bytes, band_bytes))
            .collect()
    }

    /// The self-contained, serializable representation of band `index` —
    /// what a process-isolated worker receives over the wire.
    pub fn band_task(&self, index: usize) -> MatMulBandTask {
        MatMulBandTask {
            job: *self,
            row0: index * self.block_rows,
            rows: self.block_rows,
        }
    }

    /// Wire payloads for every band task, keyed by the farm unit id that
    /// [`MatMulJob::as_tasks`] assigns: hand these to a process-isolated
    /// backend so workers execute the *real* kernel instead of a synthetic
    /// spin.
    pub fn wire_payloads(&self) -> Vec<(usize, u32, Vec<u8>)> {
        (0..self.task_count())
            .map(|id| (id, PAYLOAD_MATMUL, self.band_task(id).encode()))
            .collect()
    }

    /// The capability mask a worker must advertise in its registration
    /// handshake to serve this job's payloads (the mat-mul kernel plus the
    /// spin kernel every job needs for calibration probes).
    pub fn wire_capabilities(&self) -> u32 {
        use grasp_core::wire::{payload_capability, CAP_SPIN};
        CAP_SPIN | payload_capability(PAYLOAD_MATMUL)
    }
}

/// One serializable, self-contained mat-mul band computation: the job
/// parameters plus the band coordinates.  Inputs are *derived* (regenerated
/// from the job seed), not shipped — the grid model this reproduces
/// broadcasts descriptors, not matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatMulBandTask {
    /// The enclosing job (dimension, blocking, input seed).
    pub job: MatMulJob,
    /// First row of `C` this task computes.
    pub row0: usize,
    /// Number of rows computed (the final band may cover fewer).
    pub rows: usize,
}

impl MatMulBandTask {
    /// Serialize for the worker wire protocol.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.job.n as u64);
        w.put_u64(self.job.block_rows as u64);
        w.put_u64(self.job.seed);
        w.put_u64(self.row0 as u64);
        w.put_u64(self.rows as u64);
        w.into_vec()
    }

    /// Deserialize a task produced by [`MatMulBandTask::encode`]; malformed
    /// bytes yield a typed [`GraspError`] instead of panicking.
    pub fn decode(bytes: &[u8]) -> Result<Self, GraspError> {
        let mut r = ByteReader::new(bytes);
        let task = MatMulBandTask {
            job: MatMulJob {
                n: r.take_u64()? as usize,
                block_rows: r.take_u64()? as usize,
                seed: r.take_u64()?,
            },
            row0: r.take_u64()? as usize,
            rows: r.take_u64()? as usize,
        };
        r.finish()?;
        // The dimension cap bounds what a decoded frame can make the worker
        // allocate (generate_inputs builds two n×n f64 matrices: 2 × 32 MiB
        // at the cap) — a corrupted-but-checksum-valid frame must not OOM
        // the worker.  Legitimate jobs use n ≤ 512; the cap leaves 4×
        // headroom.
        if task.job.n == 0 || task.job.n > 2048 || task.row0 >= task.job.n {
            return Err(GraspError::WireProtocol {
                detail: format!(
                    "mat-mul band out of range: n={}, row0={}",
                    task.job.n, task.row0
                ),
            });
        }
        Ok(task)
    }

    /// Execute the band locally (regenerates the inputs from the job seed).
    pub fn execute(&self) -> Vec<f64> {
        let (a, b) = self.job.generate_inputs();
        self.job.multiply_band(&a, &b, self.row0, self.rows)
    }

    /// Deterministic digest of the band result, computed over the exact
    /// IEEE-754 bit patterns — identical wherever the kernel runs.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        for v in self.execute() {
            h.update(&v.to_bits().to_le_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_multiplication_matches_naive_full_product() {
        let job = MatMulJob {
            n: 16,
            block_rows: 8,
            seed: 3,
        };
        let (a, b) = job.generate_inputs();
        // Naive reference.
        let mut expected = vec![0.0; 16 * 16];
        for i in 0..16 {
            for k in 0..16 {
                for j in 0..16 {
                    expected[i * 16 + j] += a[i * 16 + k] * b[k * 16 + j];
                }
            }
        }
        let band0 = job.multiply_band(&a, &b, 0, 8);
        let band1 = job.multiply_band(&a, &b, 8, 8);
        let got: Vec<f64> = band0.into_iter().chain(band1).collect();
        for (g, e) in got.iter().zip(&expected) {
            // Blocking only regroups the loop nest; per-element accumulation
            // order is unchanged, so the results are bit-identical.
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn digest_folds_identically_to_hashing_the_concatenated_bytes() {
        let task = MatMulJob::small().band_task(2);
        let band = task.execute();
        let mut bytes = Vec::with_capacity(band.len() * 8);
        for v in &band {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        assert_eq!(task.digest(), grasp_core::wire::fnv1a_64(&bytes));
    }

    #[test]
    fn inputs_are_deterministic_per_seed() {
        let job = MatMulJob::small();
        assert_eq!(job.generate_inputs(), job.generate_inputs());
        let other = MatMulJob {
            seed: 2,
            ..MatMulJob::small()
        };
        assert_ne!(job.generate_inputs().0, other.generate_inputs().0);
    }

    #[test]
    fn task_count_covers_all_rows() {
        let job = MatMulJob {
            n: 100,
            block_rows: 32,
            seed: 0,
        };
        assert_eq!(job.task_count(), 4);
        assert_eq!(MatMulJob::small().task_count(), 4);
    }

    #[test]
    fn tasks_are_uniform() {
        let job = MatMulJob::small();
        let tasks = job.as_tasks(1e6);
        assert_eq!(tasks.len(), 4);
        assert!(tasks
            .windows(2)
            .all(|w| (w[0].work - w[1].work).abs() < 1e-12));
        assert!(tasks[0].work > 0.0);
    }

    #[test]
    fn band_tasks_round_trip_and_digest_deterministically() {
        let job = MatMulJob::small();
        // Every payload kind the job ships is covered by its capability mask.
        for (_, kind, _) in job.wire_payloads() {
            assert_ne!(
                job.wire_capabilities() & grasp_core::wire::payload_capability(kind),
                0
            );
        }
        for (id, kind, payload) in job.wire_payloads() {
            assert_eq!(kind, PAYLOAD_MATMUL);
            let back = MatMulBandTask::decode(&payload).unwrap();
            assert_eq!(back, job.band_task(id));
            // The decoded task computes exactly what the local kernel does.
            let local = job.multiply_band(
                &job.generate_inputs().0,
                &job.generate_inputs().1,
                back.row0,
                back.rows,
            );
            assert_eq!(back.execute(), local);
            assert_eq!(back.digest(), job.band_task(id).digest());
        }
        // Different bands produce different digests.
        assert_ne!(job.band_task(0).digest(), job.band_task(1).digest());
    }

    #[test]
    fn malformed_band_payloads_are_rejected_without_panicking() {
        let good = MatMulJob::small().band_task(0).encode();
        assert!(MatMulBandTask::decode(&good[..good.len() - 1]).is_err());
        assert!(MatMulBandTask::decode(&[]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(MatMulBandTask::decode(&trailing).is_err());
        // A band whose coordinates lie outside the matrix is rejected (a
        // hostile or corrupted frame must not allocate n² doubles).
        let bad = MatMulBandTask {
            job: MatMulJob {
                n: usize::MAX,
                block_rows: 1,
                seed: 0,
            },
            row0: 0,
            rows: 1,
        };
        assert!(MatMulBandTask::decode(&bad.encode()).is_err());
    }

    #[test]
    fn partial_last_band_is_handled() {
        let job = MatMulJob {
            n: 10,
            block_rows: 8,
            seed: 5,
        };
        let (a, b) = job.generate_inputs();
        let band = job.multiply_band(&a, &b, 8, 8);
        assert_eq!(band.len(), 2 * 10, "only two rows remain");
    }
}
