//! # grasp-service — a resident multi-job GRASP service
//!
//! Every other backend in this workspace is one-shot: build a pool, run one
//! skeleton, tear the pool down.  The paper's grid manager is not — it is a
//! *resident* entity that amortises calibration across submissions and
//! multiplexes many applications over one set of managed resources.  This
//! crate provides that layer:
//!
//! * [`GraspService`] owns a persistent [`grasp_exec::WorkerPool`] (spawned
//!   once, leased per dispatch round — never torn down between jobs) and a
//!   single shared [`grasp_core::engine::AdaptationEngine`] monitoring it
//!   across all jobs.  No adaptation logic is forked: the service feeds the
//!   engine observations and applies its directives (demotion takes a pool
//!   worker out of rotation; drift invalidates the calibration cache and
//!   re-bases the threshold), exactly like the one-shot backends.
//! * [`GraspService::submit`] admits a [`grasp_core::prelude::Skeleton`]
//!   with a [`JobSpec`] into a **bounded fair-share queue** ([`admission`]):
//!   priority first, round-robin across tenants within a priority, and a
//!   typed [`grasp_core::prelude::GraspError::Rejected`] when the backlog is
//!   full.  Small jobs are batched into **shared dispatch rounds**, so the
//!   per-round overhead is paid once per batch, not once per job.
//! * Calibration profiles are cached per `(worker, payload-kind)`
//!   ([`cache`]) and reused by every later job of the same kind; they are
//!   invalidated **only** when the shared engine flags drift.
//! * Every job keeps its own identity: unit ids live in a per-job
//!   namespace, so `conserves_units_of` holds per job, and each
//!   [`JobHandle`] resolves to a normal
//!   [`grasp_core::prelude::SkeletonOutcome`] with its own resilience
//!   report, adaptation log, and an
//!   [`grasp_core::prelude::OutcomeDetail::Service`] record of how the job
//!   rode the pool.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod job;
pub mod service;

pub use admission::AdmissionQueue;
pub use cache::{ProfileCache, ProfileCacheStats};
pub use job::{JobHandle, JobId, JobPriority, JobSpec};
pub use service::{GraspService, ServiceConfig, ServiceStats};
