//! Bounded fair-share admission queue.
//!
//! The backlog is bounded: a service that accepted every submission would
//! trade its latency guarantees for an unbounded queue, so overflow is a
//! *typed* client-visible outcome ([`grasp_core::prelude::GraspError::Rejected`]
//! at the service surface) rather than silent buffering.  Draining order is
//! priority-first, then fair-share: within one priority level tenants are
//! served round-robin (least recently served first), FIFO within a tenant —
//! one chatty client cannot starve the others at its own priority.

use crate::job::JobPriority;
use std::collections::VecDeque;

/// One queued submission, wrapped with its admission metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Queued<T> {
    tenant: String,
    seq: u64,
    item: T,
}

/// A bounded priority + fair-share queue (see the module docs).
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    capacity: usize,
    /// One FIFO lane per priority level (index = `JobPriority::level`).
    lanes: [VecDeque<Queued<T>>; 3],
    /// Tenant fairness clock: each pop stamps the winning tenant, and the
    /// tenant with the *oldest* stamp wins the next pop at equal priority.
    served: Vec<(String, u64)>,
    tick: u64,
    seq: u64,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            served: Vec::new(),
            tick: 0,
            seq: 0,
        }
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }

    /// The backlog bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admit a job, or refuse it when the backlog is full.  The error is
    /// `(backlog, capacity)` — the payload of `GraspError::Rejected`.
    pub fn push(
        &mut self,
        priority: JobPriority,
        tenant: &str,
        item: T,
    ) -> Result<(), (usize, usize)> {
        let backlog = self.len();
        if backlog >= self.capacity {
            return Err((backlog, self.capacity));
        }
        let seq = self.seq;
        self.seq += 1;
        self.lanes[priority.level()].push_back(Queued {
            tenant: tenant.to_string(),
            seq,
            item,
        });
        Ok(())
    }

    /// When `tenant` was last served (0 = never).
    fn last_served(&self, tenant: &str) -> u64 {
        self.served
            .iter()
            .find(|(t, _)| t == tenant)
            .map(|(_, at)| *at)
            .unwrap_or(0)
    }

    fn stamp(&mut self, tenant: &str) {
        self.tick += 1;
        let at = self.tick;
        match self.served.iter_mut().find(|(t, _)| t == tenant) {
            Some(slot) => slot.1 = at,
            None => self.served.push((tenant.to_string(), at)),
        }
    }

    /// Remove and return the next job to serve, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        let lane = self.lanes.iter().rposition(|l| !l.is_empty())?;
        // Fair share within the lane: the waiting tenant served longest ago
        // wins; its oldest submission is taken (FIFO within a tenant).
        let winner = self.lanes[lane]
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (self.last_served(&q.tenant), q.seq))
            .map(|(i, _)| i)?;
        let picked = self.lanes[lane].remove(winner)?;
        self.stamp(&picked.tenant);
        Some(picked.item)
    }

    /// Drain up to `max` jobs in service order — one shared dispatch round's
    /// worth of admissions.
    pub fn pop_batch(&mut self, max: usize) -> Vec<T> {
        let mut batch = Vec::new();
        while batch.len() < max {
            match self.pop() {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(
        q: &mut AdmissionQueue<&'static str>,
        p: JobPriority,
        tenant: &str,
        item: &'static str,
    ) {
        q.push(p, tenant, item).unwrap();
    }

    #[test]
    fn higher_priorities_drain_first() {
        let mut q = AdmissionQueue::new(8);
        push(&mut q, JobPriority::Batch, "a", "batch");
        push(&mut q, JobPriority::Normal, "a", "normal");
        push(&mut q, JobPriority::High, "a", "high");
        assert_eq!(q.pop_batch(8), vec!["high", "normal", "batch"]);
    }

    #[test]
    fn equal_priority_interleaves_tenants_fairly() {
        let mut q = AdmissionQueue::new(8);
        push(&mut q, JobPriority::Normal, "chatty", "c1");
        push(&mut q, JobPriority::Normal, "chatty", "c2");
        push(&mut q, JobPriority::Normal, "chatty", "c3");
        push(&mut q, JobPriority::Normal, "quiet", "q1");
        // The quiet tenant is not stuck behind the chatty one's backlog.
        assert_eq!(q.pop_batch(3), vec!["c1", "q1", "c2"]);
        assert_eq!(q.pop(), Some("c3"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_reports_backlog_and_capacity() {
        let mut q = AdmissionQueue::new(2);
        push(&mut q, JobPriority::Normal, "a", "one");
        push(&mut q, JobPriority::Normal, "a", "two");
        assert_eq!(
            q.push(JobPriority::High, "a", "three"),
            Err((2, 2)),
            "priority does not bypass the backlog bound"
        );
        q.pop();
        assert!(q.push(JobPriority::Normal, "a", "three").is_ok());
    }

    #[test]
    fn fifo_within_a_tenant() {
        let mut q = AdmissionQueue::new(8);
        push(&mut q, JobPriority::Normal, "a", "first");
        push(&mut q, JobPriority::Normal, "a", "second");
        assert_eq!(q.pop(), Some("first"));
        assert_eq!(q.pop(), Some("second"));
    }
}
