//! The resident multi-job service (see the crate docs for the model).

use crate::admission::AdmissionQueue;
use crate::cache::{ProfileCache, ProfileCacheStats};
use crate::job::{JobHandle, JobId, JobSpec};
use grasp_core::prelude::{
    AdaptationDirective, AdaptationEngine, AdaptationLog, GraspConfig, GraspError, OutcomeDetail,
    ResilienceReport, SchedulePolicy, Skeleton, SkeletonOutcome, WallClock,
};
use grasp_core::skeleton::UnitSpan;
use grasp_exec::{spin, WorkerPool};
use gridsim::NodeId;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// Static configuration of a [`GraspService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Resident pool worker threads.
    pub workers: usize,
    /// Admission backlog bound: submissions beyond this many waiting jobs
    /// are refused with [`GraspError::Rejected`].
    pub backlog_capacity: usize,
    /// Most jobs batched into one shared dispatch round.
    pub batch_max_jobs: usize,
    /// Spin-kernel iterations per declared work unit (the service's unit
    /// cost scale, like `ThreadBackend::with_spin_per_work_unit`).
    pub spin_per_work_unit: u64,
    /// Bounded attempts per unit before the round fails
    /// ([`GraspError::WorkerFailed`]).
    pub max_task_attempts: usize,
    /// The GRASP configuration: its `execution` section parameterises the
    /// shared [`AdaptationEngine`] (threshold policy, monitor interval,
    /// demotion factor, minimum active workers).
    pub grasp: GraspConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            backlog_capacity: 64,
            batch_max_jobs: 4,
            spin_per_work_unit: 500,
            max_task_attempts: 3,
            grasp: GraspConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Default configuration over `workers` pool threads.
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

/// Cumulative service accounting, observable while jobs run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Jobs admitted (excludes rejected submissions).
    pub jobs_submitted: u64,
    /// Jobs whose outcome has been delivered.
    pub jobs_completed: u64,
    /// Shared dispatch rounds executed.
    pub rounds: u64,
    /// Pool workers demoted by the engine so far.
    pub demotions: u64,
    /// Engine-flagged drift recalibrations so far.
    pub recalibrations: u64,
    /// Calibration-profile cache accounting.
    pub profile: ProfileCacheStats,
    /// Jobs currently waiting for admission to a round.
    pub backlog: usize,
}

/// One unit of pool work: `(job slot in round, per-job unit id, work)`.
#[derive(Debug, Clone)]
struct UnitTask {
    slot: usize,
    unit: usize,
    work: f64,
    kind_idx: usize,
}

/// What the pool handler reports back per executed unit.
#[derive(Debug)]
struct UnitResult {
    slot: usize,
    unit: usize,
    work: f64,
    worker: usize,
    elapsed_s: f64,
    done_s: f64,
}

/// An admitted submission waiting for (or riding) a dispatch round.
struct Admitted {
    id: JobId,
    skeleton: Skeleton,
    spec: JobSpec,
    tx: mpsc::Sender<Result<SkeletonOutcome, GraspError>>,
}

struct Inner {
    queue: Mutex<AdmissionQueue<Admitted>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    rounds: AtomicU64,
    demotions: AtomicU64,
    recalibrations: AtomicU64,
    cache: Mutex<ProfileCache>,
    /// Test/ops knob: extra seconds per work unit injected into a worker's
    /// handler (simulates external load so adaptation paths can be driven
    /// deterministically, like the thread backend's slowdown injection).
    slowdown: Mutex<HashMap<usize, f64>>,
}

/// A long-lived, multi-job GRASP service over a resident worker pool.
///
/// `submit` admits skeleton jobs into a bounded fair-share queue; a
/// dispatcher thread drains them in batches, lowers every skeleton through
/// [`Skeleton::lower_to_farm`] into one shared dispatch round, executes the
/// round on the resident [`WorkerPool`], and resolves each job's
/// [`JobHandle`] with a normal [`SkeletonOutcome`].  One shared
/// [`AdaptationEngine`] monitors the pool across *all* jobs: calibration
/// profiles are cached per `(worker, payload-kind)` and reused until the
/// engine flags drift.
pub struct GraspService {
    inner: Arc<Inner>,
    config: ServiceConfig,
    dispatcher: Option<JoinHandle<()>>,
}

impl GraspService {
    /// Start the service: spawns the resident pool and its dispatcher.
    pub fn start(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(AdmissionQueue::new(config.backlog_capacity)),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            recalibrations: AtomicU64::new(0),
            cache: Mutex::new(ProfileCache::new()),
            slowdown: Mutex::new(HashMap::new()),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            let config = config.clone();
            std::thread::Builder::new()
                .name("grasp-service-dispatch".to_string())
                .spawn(move || dispatcher_loop(inner, config))
                .expect("spawning the service dispatcher failed")
        };
        GraspService {
            inner,
            config,
            dispatcher: Some(dispatcher),
        }
    }

    /// Start with [`ServiceConfig::with_workers`].
    pub fn with_workers(workers: usize) -> Self {
        GraspService::start(ServiceConfig::with_workers(workers))
    }

    /// Submit a skeleton job.  Returns the job's handle, or
    /// [`GraspError::Rejected`] when the admission backlog is full (the job
    /// was never queued).
    pub fn submit(&self, skeleton: Skeleton, spec: JobSpec) -> Result<JobHandle, GraspError> {
        skeleton.validate()?;
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(GraspError::WorkerUnavailable {
                detail: "the service is shutting down".to_string(),
            });
        }
        let id = JobId(self.inner.next_job.fetch_add(1, Ordering::Relaxed) + 1);
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.inner.queue.lock();
            queue
                .push(
                    spec.priority,
                    &spec.tenant.clone(),
                    Admitted {
                        id,
                        skeleton,
                        spec,
                        tx,
                    },
                )
                .map_err(|(backlog, capacity)| GraspError::Rejected { backlog, capacity })?;
        }
        self.inner.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.queue_cv.notify_all();
        Ok(JobHandle { id, rx })
    }

    /// Current cumulative accounting.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs_submitted: self.inner.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.inner.jobs_completed.load(Ordering::Relaxed),
            rounds: self.inner.rounds.load(Ordering::Relaxed),
            demotions: self.inner.demotions.load(Ordering::Relaxed),
            recalibrations: self.inner.recalibrations.load(Ordering::Relaxed),
            profile: self.inner.cache.lock().stats(),
            backlog: self.inner.queue.lock().len(),
        }
    }

    /// The service configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Inject `extra_secs_per_unit` of artificial per-work-unit delay into
    /// `worker`'s handler (0 removes the injection) — the service analogue
    /// of the thread backend's slowdown injection, used to drive the
    /// adaptation paths deterministically in tests.
    pub fn inject_worker_slowdown(&self, worker: usize, extra_secs_per_unit: f64) {
        let mut map = self.inner.slowdown.lock();
        if extra_secs_per_unit <= 0.0 {
            map.remove(&worker);
        } else {
            map.insert(worker, extra_secs_per_unit);
        }
    }

    /// Stop accepting work and wait for the dispatcher to exit.  Jobs still
    /// waiting in the backlog resolve to [`GraspError::WorkerUnavailable`].
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GraspService {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One job's slice of a dispatch round.
struct JobRun {
    adm: Admitted,
    spans: Vec<UnitSpan>,
    units: usize,
    completions: BTreeMap<usize, f64>,
    per_worker: Vec<usize>,
    retried: usize,
    log: AdaptationLog,
}

fn dispatcher_loop(inner: Arc<Inner>, config: ServiceConfig) {
    let epoch = Instant::now();
    let spin_per_unit = config.spin_per_work_unit.max(1);
    let pool: WorkerPool<UnitTask, UnitResult> = {
        let inner = Arc::clone(&inner);
        WorkerPool::start(config.workers, move |worker, task: &UnitTask| {
            let started = Instant::now();
            let extra = inner.slowdown.lock().get(&worker).copied().unwrap_or(0.0);
            spin((task.work * spin_per_unit as f64).max(1.0) as u64);
            if extra > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    extra * task.work.max(0.1),
                ));
            }
            UnitResult {
                slot: task.slot,
                unit: task.unit,
                work: task.work,
                worker,
                elapsed_s: started.elapsed().as_secs_f64(),
                done_s: epoch.elapsed().as_secs_f64(),
            }
        })
    };
    let clock = WallClock::start();
    // Armed with an empty reference sample (Z = ∞): the first round's
    // calibration — cached or measured — sets the real threshold.
    let mut engine = AdaptationEngine::for_executors(&config.grasp.execution, &[], clock.now());
    let mut calibrated = false;
    loop {
        let batch: Vec<Admitted> = {
            let mut queue = inner.queue.lock();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let batch = queue.pop_batch(config.batch_max_jobs.max(1));
                if !batch.is_empty() {
                    break batch;
                }
                inner.queue_cv.wait(&mut queue);
            }
        };
        run_round(
            &inner,
            &config,
            &pool,
            &clock,
            &epoch,
            &mut engine,
            &mut calibrated,
            batch,
        );
    }
}

/// Execute one shared dispatch round: lower every admitted skeleton, run
/// the flat unit list on the resident pool, drive the shared engine, and
/// resolve every job handle.
#[allow(clippy::too_many_arguments)]
fn run_round(
    inner: &Inner,
    config: &ServiceConfig,
    pool: &WorkerPool<UnitTask, UnitResult>,
    clock: &WallClock,
    epoch: &Instant,
    engine: &mut AdaptationEngine,
    calibrated: &mut bool,
    batch: Vec<Admitted>,
) {
    let workers = pool.workers();
    let batched_jobs = batch.len();
    let round_start_s = epoch.elapsed().as_secs_f64();
    // Lower every job to its flat unit list; unit ids live in the job's own
    // namespace (the pool task carries the job slot alongside).
    let mut kinds: Vec<String> = Vec::new();
    let mut jobs: Vec<JobRun> = Vec::new();
    let mut unit_tasks: Vec<UnitTask> = Vec::new();
    for adm in batch {
        let kind_idx = match kinds.iter().position(|k| *k == adm.spec.payload_kind) {
            Some(i) => i,
            None => {
                kinds.push(adm.spec.payload_kind.clone());
                kinds.len() - 1
            }
        };
        let (tasks, spans) = adm.skeleton.lower_to_farm();
        let slot = jobs.len();
        for t in &tasks {
            unit_tasks.push(UnitTask {
                slot,
                unit: t.id,
                work: t.work,
                kind_idx,
            });
        }
        jobs.push(JobRun {
            adm,
            spans,
            units: tasks.len(),
            completions: BTreeMap::new(),
            per_worker: vec![0; workers],
            retried: 0,
            log: AdaptationLog::new(),
        });
    }
    // Calibration, Algorithm 1 as a service: serve the round's reference
    // sample from the cross-job profile cache when every (active worker,
    // payload kind) pair is present; otherwise the round's own units are
    // the calibration sample (measured below).
    let active: Vec<usize> = (0..workers).filter(|&w| pool.is_active(w)).collect();
    let mut profile_hits = 0usize;
    let mut profile_misses = 0usize;
    let mut reference: Vec<f64> = Vec::new();
    let mut full_coverage = true;
    {
        let mut cache = inner.cache.lock();
        for kind in &kinds {
            for &w in &active {
                match cache.lookup(w, kind) {
                    Some(secs_per_unit) => {
                        profile_hits += 1;
                        reference.push(secs_per_unit);
                    }
                    None => {
                        profile_misses += 1;
                        full_coverage = false;
                    }
                }
            }
        }
    }
    if !*calibrated && full_coverage && !reference.is_empty() {
        engine.calibrate(&reference, clock.now());
        *calibrated = true;
    }
    // The dispatch round proper.  A work-stealing scheduler in the GRASP
    // config selects deque dispatch on the resident pool; every other
    // policy keeps the shared demand cursor.
    let stealing = matches!(config.grasp.scheduler, SchedulePolicy::WorkStealing { .. });
    let lease = pool.lease();
    let dispatched = if stealing {
        lease.run_stealing(unit_tasks.clone(), config.max_task_attempts)
    } else {
        lease.run(unit_tasks.clone(), config.max_task_attempts)
    };
    drop(lease);
    let round = match dispatched {
        Ok(r) => r,
        Err(e) => {
            for job in jobs {
                let _ = job.adm.tx.send(Err(e.clone()));
            }
            return;
        }
    };
    // Harvest per-unit results into per-job accounting and feed the shared
    // engine its per-worker normalised observations.
    let mut measured: HashMap<(usize, usize), (f64, f64)> = HashMap::new();
    for (i, r) in round.results.iter().enumerate() {
        let job = &mut jobs[r.slot];
        job.completions
            .insert(r.unit, (r.done_s - round_start_s).max(0.0));
        job.per_worker[r.worker] += 1;
        if round.attempts.get(i).copied().unwrap_or(1) > 1 {
            job.retried += 1;
        }
        let per_unit = r.elapsed_s / r.work.max(1e-9);
        engine.observe(NodeId(r.worker), per_unit);
        let kind_idx = unit_tasks[i].kind_idx;
        let slot = measured.entry((r.worker, kind_idx)).or_insert((0.0, 0.0));
        slot.0 += r.elapsed_s;
        slot.1 += r.work;
    }
    // Refresh the profile cache with what this round measured, and complete
    // a measured calibration if the cache could not serve one.  Demand-driven
    // dispatch may leave a fast round entirely on one worker; active workers
    // that executed nothing of a kind inherit the round mean as a
    // provisional profile (corrected the next time they actually measure),
    // so one round of a kind always yields full coverage.
    {
        let mut cache = inner.cache.lock();
        for ((worker, kind_idx), (secs, work)) in &measured {
            if *work > 0.0 {
                cache.insert(*worker, &kinds[*kind_idx], secs / work);
            }
        }
        for (kind_idx, kind) in kinds.iter().enumerate() {
            let samples: Vec<f64> = active
                .iter()
                .filter_map(|&w| measured.get(&(w, kind_idx)))
                .filter(|(_, work)| *work > 0.0)
                .map(|(secs, work)| secs / work)
                .collect();
            if samples.is_empty() {
                continue;
            }
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            for &w in &active {
                if cache.peek(w, kind).is_none() {
                    cache.insert(w, kind, mean);
                }
            }
        }
    }
    if !*calibrated {
        let times: Vec<f64> = active
            .iter()
            .filter_map(|&w| {
                let (secs, work) = (0..kinds.len())
                    .filter_map(|k| measured.get(&(w, k)))
                    .fold((0.0, 0.0), |(s, u), (ms, mu)| (s + ms, u + mu));
                (work > 0.0).then_some(secs / work)
            })
            .collect();
        if !times.is_empty() {
            engine.calibrate(&times, clock.now());
            *calibrated = true;
        }
    }
    // Algorithm 2: one monitoring evaluation per round at most, applying the
    // engine's directives to the resident pool.
    let log_mark = engine.log().len();
    let now = clock.now();
    if engine.due(now) {
        if let Some(poll) = engine.poll(now) {
            for directive in &poll.directives {
                match directive {
                    AdaptationDirective::DemoteExecutor {
                        executor,
                        recent_mean,
                    } => {
                        let min_active = config.grasp.execution.min_active_nodes.max(1);
                        if pool.active_workers() > min_active && pool.set_active(executor.0, false)
                        {
                            engine.note_demoted(now, *executor, *recent_mean, &poll.verdict);
                            inner.demotions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    AdaptationDirective::Recalibrate => {
                        let chosen: Vec<NodeId> = (0..pool.workers())
                            .filter(|&w| pool.is_active(w))
                            .map(NodeId)
                            .collect();
                        engine.begin_resample(now, chosen, &poll.verdict);
                        inner.cache.lock().invalidate_all();
                        *calibrated = false;
                        inner.recalibrations.fetch_add(1, Ordering::Relaxed);
                    }
                    AdaptationDirective::RemapStage { .. } => {}
                    // The resident pool batches whole jobs per round; there
                    // is no per-unit tail to speculate on at this level.
                    AdaptationDirective::Speculate { .. } => {}
                }
            }
        }
    }
    // Any adaptation taken during this round belongs to every job that rode
    // it: copy the engine's new audit events into each job's own log.
    let new_events = engine.log().events()[log_mark..].to_vec();
    for job in &mut jobs {
        for e in &new_events {
            job.log
                .record(e.time, e.action.clone(), e.threshold, e.trigger_value);
        }
    }
    // Count the round before resolving handles, so a waiter that observes
    // its outcome also observes the round that produced it in `stats()`.
    inner.rounds.fetch_add(1, Ordering::Relaxed);
    // Resolve every handle with a normal per-job outcome.
    for job in jobs {
        let JobRun {
            adm,
            spans,
            units,
            completions,
            per_worker,
            retried,
            log,
        } = job;
        let unit_ids: Vec<usize> = completions.keys().copied().collect();
        let makespan_s = completions.values().fold(0.0, |a: f64, &b| a.max(b));
        let children = spans.iter().map(|s| s.outcome_from(&completions)).collect();
        debug_assert_eq!(unit_ids.len(), units);
        let outcome = SkeletonOutcome {
            kind: adm.skeleton.kind(),
            completed: unit_ids.len(),
            unit_ids,
            makespan_s,
            // Calibration rides on the round's own executed units (or the
            // cache); there is no separate probe phase to bill.
            calibration_s: 0.0,
            adaptation_log: log,
            resilience: ResilienceReport {
                requeued_tasks: retried,
                retried_tasks: retried,
                migrated_stages: 0,
                nodes_lost: 0,
                speculated_units: 0,
                speculation_wins: 0,
            },
            children,
            detail: OutcomeDetail::Service {
                job: adm.id.0,
                batched_jobs,
                profile_hits,
                profile_misses,
                workers,
                tasks_per_worker: per_worker,
                steals_attempted: round.steals_attempted,
                steals_completed: round.steals_completed,
                units_stolen: round.units_stolen,
            },
        };
        let _ = adm.tx.send(Ok(outcome));
        inner.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_core::prelude::Skeleton;
    use grasp_core::TaskSpec;

    fn farm(units: usize, work: f64) -> Skeleton {
        Skeleton::farm((0..units).map(|i| TaskSpec::new(i, work, 0, 0)).collect())
    }

    fn quick_config(workers: usize) -> ServiceConfig {
        let mut cfg = ServiceConfig::with_workers(workers);
        cfg.spin_per_work_unit = 50;
        cfg
    }

    #[test]
    fn a_job_resolves_to_a_conserving_outcome() {
        let service = GraspService::start(quick_config(3));
        let skeleton = farm(24, 1.0);
        let handle = service
            .submit(skeleton.clone(), JobSpec::default())
            .unwrap();
        let outcome = handle.wait().unwrap();
        assert!(outcome.conserves_units_of(&skeleton));
        match &outcome.detail {
            OutcomeDetail::Service {
                job,
                workers,
                tasks_per_worker,
                ..
            } => {
                assert_eq!(*job, 1);
                assert_eq!(*workers, 3);
                assert_eq!(tasks_per_worker.iter().sum::<usize>(), 24);
            }
            other => panic!("expected service detail, got {other:?}"),
        }
    }

    #[test]
    fn calibration_profiles_are_reused_across_jobs() {
        let service = GraspService::start(quick_config(2));
        let first = service
            .submit(farm(8, 1.0), JobSpec::default())
            .unwrap()
            .wait()
            .unwrap();
        let second = service
            .submit(farm(8, 1.0), JobSpec::default())
            .unwrap()
            .wait()
            .unwrap();
        let (h1, m1) = match first.detail {
            OutcomeDetail::Service {
                profile_hits,
                profile_misses,
                ..
            } => (profile_hits, profile_misses),
            _ => unreachable!(),
        };
        let (h2, m2) = match second.detail {
            OutcomeDetail::Service {
                profile_hits,
                profile_misses,
                ..
            } => (profile_hits, profile_misses),
            _ => unreachable!(),
        };
        assert_eq!(m1, 2, "cold cache: every (worker, kind) pair measured");
        assert_eq!(h1, 0);
        assert_eq!(h2, 2, "warm cache: the second job reuses both profiles");
        assert_eq!(m2, 0);
        assert!(service.stats().profile.hits >= 2);
    }

    #[test]
    fn jobs_queued_behind_a_slow_round_share_the_next_dispatch_round() {
        let service = GraspService::start(quick_config(2));
        // Make the first job's round slow enough that the two jobs submitted
        // behind it are both waiting when the dispatcher pops the next batch.
        service.inject_worker_slowdown(0, 0.05);
        service.inject_worker_slowdown(1, 0.05);
        let blocker = service.submit(farm(4, 1.0), JobSpec::default()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        service.inject_worker_slowdown(0, 0.0);
        service.inject_worker_slowdown(1, 0.0);
        let b = service.submit(farm(3, 1.0), JobSpec::default()).unwrap();
        let c = service.submit(farm(3, 1.0), JobSpec::default()).unwrap();
        blocker.wait().unwrap();
        for handle in [b, c] {
            let outcome = handle.wait().unwrap();
            match &outcome.detail {
                OutcomeDetail::Service { batched_jobs, .. } => assert_eq!(
                    *batched_jobs, 2,
                    "both queued jobs must share one dispatch round"
                ),
                other => panic!("expected service detail, got {other:?}"),
            }
        }
        assert_eq!(service.stats().rounds, 2, "three jobs, two rounds");
    }

    #[test]
    fn a_work_stealing_service_conserves_units_and_reports_counters() {
        let mut cfg = quick_config(3);
        cfg.grasp.scheduler = SchedulePolicy::WorkStealing { min_chunk: 1 };
        let service = GraspService::start(cfg);
        let skeleton = farm(60, 1.0);
        let outcome = service
            .submit(skeleton.clone(), JobSpec::default())
            .unwrap()
            .wait()
            .unwrap();
        assert!(outcome.conserves_units_of(&skeleton));
        match &outcome.detail {
            OutcomeDetail::Service {
                tasks_per_worker,
                steals_attempted,
                steals_completed,
                units_stolen,
                ..
            } => {
                assert_eq!(tasks_per_worker.iter().sum::<usize>(), 60);
                assert!(steals_attempted >= steals_completed);
                assert!(units_stolen >= steals_completed);
            }
            other => panic!("expected service detail, got {other:?}"),
        }
    }

    #[test]
    fn different_payload_kinds_do_not_share_profiles() {
        let service = GraspService::start(quick_config(2));
        service
            .submit(farm(4, 1.0), JobSpec::default().with_payload_kind("a"))
            .unwrap()
            .wait()
            .unwrap();
        let other = service
            .submit(farm(4, 1.0), JobSpec::default().with_payload_kind("b"))
            .unwrap()
            .wait()
            .unwrap();
        match other.detail {
            OutcomeDetail::Service { profile_misses, .. } => {
                assert_eq!(profile_misses, 2, "kind b starts cold");
            }
            _ => unreachable!(),
        }
    }

    /// Configuration tight enough that the engine evaluates every few
    /// rounds in a fast test.
    fn adaptive_config(workers: usize) -> ServiceConfig {
        let mut cfg = quick_config(workers);
        cfg.grasp.execution.monitor_interval_s = 0.02;
        cfg.grasp.execution.min_active_nodes = 1;
        cfg.batch_max_jobs = 2;
        cfg
    }

    /// Keep submitting small jobs until `done(stats)` holds or the budget
    /// runs out; returns the final stats.
    fn drive_until(service: &GraspService, done: impl Fn(&ServiceStats) -> bool) -> ServiceStats {
        for _ in 0..400 {
            let stats = service.stats();
            if done(&stats) {
                return stats;
            }
            let _ = service
                .submit(farm(6, 1.0), JobSpec::default())
                .and_then(JobHandle::wait);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        service.stats()
    }

    #[test]
    fn a_pathological_worker_is_demoted_out_of_rotation() {
        let service = GraspService::start(adaptive_config(3));
        // Warm up: calibrate at healthy speed.
        service
            .submit(farm(12, 1.0), JobSpec::default())
            .unwrap()
            .wait()
            .unwrap();
        // One worker degrades far past demote_factor × Z.
        service.inject_worker_slowdown(2, 0.005);
        let stats = drive_until(&service, |s| s.demotions >= 1);
        assert!(
            stats.demotions >= 1,
            "the engine never demoted the slowed worker: {stats:?}"
        );
    }

    #[test]
    fn pool_wide_drift_invalidates_the_profile_cache() {
        let service = GraspService::start(adaptive_config(2));
        service
            .submit(farm(12, 1.0), JobSpec::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(service.stats().profile.invalidations, 0);
        // Every worker degrades: min T > Z, so the engine flags drift.
        service.inject_worker_slowdown(0, 0.004);
        service.inject_worker_slowdown(1, 0.004);
        let stats = drive_until(&service, |s| s.recalibrations >= 1);
        assert!(
            stats.recalibrations >= 1,
            "the engine never flagged pool-wide drift: {stats:?}"
        );
        assert!(
            stats.profile.invalidations >= 1,
            "a drift recalibration must clear the profile cache: {stats:?}"
        );
        // The service recovers: post-drift jobs still complete and the
        // cache re-fills from fresh measurements.
        service.inject_worker_slowdown(0, 0.0);
        service.inject_worker_slowdown(1, 0.0);
        let outcome = service
            .submit(farm(8, 1.0), JobSpec::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(outcome.completed, 8);
        assert!(service.stats().profile.entries >= 1);
    }

    #[test]
    fn shutdown_resolves_waiting_handles_with_worker_unavailable() {
        // Fill the queue with the dispatcher unable to keep up forever:
        // shut down immediately and verify queued-but-undispatched jobs
        // resolve to an error rather than hanging.
        let service = GraspService::start(quick_config(2));
        let handle = service.submit(farm(4, 1.0), JobSpec::default()).unwrap();
        // The job may complete before shutdown wins the race — both ends of
        // the race are valid outcomes, hanging is not.
        drop(service);
        match handle.wait() {
            Ok(outcome) => assert_eq!(outcome.completed, 4),
            Err(GraspError::WorkerUnavailable { .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
