//! Job-side types of the service: what a client submits and what it holds
//! while the job is in flight.

use grasp_core::prelude::{GraspError, SkeletonOutcome};
use std::fmt;
use std::sync::mpsc;

/// Service-assigned job identifier, unique for the service's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Admission priority of a submission.  Higher priorities drain first; jobs
/// of equal priority are served fair-share across tenants (see
/// `admission`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum JobPriority {
    /// Background work: served only when nothing more urgent waits.
    Batch,
    /// The default service class.
    #[default]
    Normal,
    /// Latency-sensitive work: drained before everything else.
    High,
}

impl JobPriority {
    /// Queue index (higher = more urgent).
    pub(crate) fn level(self) -> usize {
        match self {
            JobPriority::Batch => 0,
            JobPriority::Normal => 1,
            JobPriority::High => 2,
        }
    }

    /// A short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            JobPriority::Batch => "batch",
            JobPriority::Normal => "normal",
            JobPriority::High => "high",
        }
    }
}

/// Per-submission metadata: how to admit the job and which calibration
/// profiles apply to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Admission priority.
    pub priority: JobPriority,
    /// Fair-share key: jobs of equal priority are interleaved round-robin
    /// across tenants so one chatty client cannot starve the rest.
    pub tenant: String,
    /// Calibration-cache key component: submissions whose units stress the
    /// machine the same way share a payload kind, and therefore share
    /// `(worker, payload-kind)` calibration profiles across jobs.
    pub payload_kind: String,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            priority: JobPriority::Normal,
            tenant: "default".to_string(),
            payload_kind: "spin".to_string(),
        }
    }
}

impl JobSpec {
    /// Set the admission priority.
    pub fn with_priority(mut self, priority: JobPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Set the fair-share tenant key.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Set the calibration payload kind.
    pub fn with_payload_kind(mut self, kind: impl Into<String>) -> Self {
        self.payload_kind = kind.into();
        self
    }
}

/// The client's handle on an admitted job; resolves to the job's
/// [`SkeletonOutcome`] (or error) exactly once.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: JobId,
    pub(crate) rx: mpsc::Receiver<Result<SkeletonOutcome, GraspError>>,
}

impl JobHandle {
    /// The service-assigned job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Block until the job completes and return its outcome.  Errors with
    /// [`GraspError::WorkerUnavailable`] when the service shut down before
    /// the job ran.
    pub fn wait(self) -> Result<SkeletonOutcome, GraspError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(GraspError::WorkerUnavailable {
                detail: format!("the service shut down before {} completed", self.id),
            })
        })
    }

    /// Non-blocking probe: `Some(outcome)` once the job has completed.
    pub fn try_wait(&self) -> Option<Result<SkeletonOutcome, GraspError>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_order_by_urgency() {
        assert!(JobPriority::High.level() > JobPriority::Normal.level());
        assert!(JobPriority::Normal.level() > JobPriority::Batch.level());
        assert_eq!(JobPriority::default(), JobPriority::Normal);
    }

    #[test]
    fn spec_builders_compose() {
        let spec = JobSpec::default()
            .with_priority(JobPriority::High)
            .with_tenant("alice")
            .with_payload_kind("mandelbrot");
        assert_eq!(spec.priority, JobPriority::High);
        assert_eq!(spec.tenant, "alice");
        assert_eq!(spec.payload_kind, "mandelbrot");
    }

    #[test]
    fn dropped_sender_maps_to_worker_unavailable() {
        let (tx, rx) = mpsc::channel();
        drop(tx);
        let handle = JobHandle { id: JobId(7), rx };
        match handle.wait() {
            Err(GraspError::WorkerUnavailable { detail }) => {
                assert!(detail.contains("job-7"), "{detail}");
            }
            other => panic!("expected WorkerUnavailable, got {other:?}"),
        }
    }
}
