//! Cross-job calibration-profile cache.
//!
//! Calibration (the paper's Algorithm 1) measures each worker's speed on a
//! representative payload.  A one-shot backend pays that measurement on
//! every run; a resident service can remember it: profiles are keyed by
//! `(worker, payload-kind)` and reused by every later job of the same kind,
//! so a warmed-up service derives its threshold *Z* from the cache and
//! dispatches immediately.
//!
//! Invalidation contract: a cached profile stays valid until the shared
//! `AdaptationEngine` flags drift — i.e. it emits a `Recalibrate` directive
//! because the whole pool degraded past *Z*.  The service then clears the
//! cache and the next dispatch round re-measures.  No timer, no ad-hoc
//! heuristics: the engine is the single authority on staleness, exactly as
//! it is on demotion.

use std::collections::HashMap;

/// Cumulative cache accounting, exposed through the service's stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh measurement.
    pub misses: u64,
    /// Drift-triggered cache clears.
    pub invalidations: u64,
    /// Profiles currently cached.
    pub entries: usize,
}

/// The `(worker, payload-kind) → seconds-per-work-unit` calibration cache.
#[derive(Debug, Default)]
pub struct ProfileCache {
    profiles: HashMap<(usize, String), f64>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl ProfileCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProfileCache::default()
    }

    /// Look up the cached seconds-per-work-unit profile of `worker` on
    /// `kind`, counting the hit or miss.
    pub fn lookup(&mut self, worker: usize, kind: &str) -> Option<f64> {
        match self.profiles.get(&(worker, kind.to_string())) {
            Some(&t) => {
                self.hits += 1;
                Some(t)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Read a profile without touching the hit/miss accounting (internal
    /// bookkeeping reads, e.g. "would an insert overwrite a measurement").
    pub fn peek(&self, worker: usize, kind: &str) -> Option<f64> {
        self.profiles.get(&(worker, kind.to_string())).copied()
    }

    /// Store (or refresh) a measured profile.
    pub fn insert(&mut self, worker: usize, kind: &str, secs_per_unit: f64) {
        self.profiles
            .insert((worker, kind.to_string()), secs_per_unit);
    }

    /// Drift: the engine recalibrated, so every cached profile describes a
    /// machine state that no longer holds.  Clear them all.
    pub fn invalidate_all(&mut self) {
        if !self.profiles.is_empty() {
            self.profiles.clear();
        }
        self.invalidations += 1;
    }

    /// Current accounting.
    pub fn stats(&self) -> ProfileCacheStats {
        ProfileCacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: self.profiles.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_count_hits_and_misses() {
        let mut c = ProfileCache::new();
        assert_eq!(c.lookup(0, "spin"), None);
        c.insert(0, "spin", 0.01);
        assert_eq!(c.lookup(0, "spin"), Some(0.01));
        assert_eq!(c.lookup(0, "mandelbrot"), None, "kinds are distinct keys");
        assert_eq!(c.lookup(1, "spin"), None, "workers are distinct keys");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 3, 1));
    }

    #[test]
    fn invalidation_clears_every_profile() {
        let mut c = ProfileCache::new();
        c.insert(0, "spin", 0.01);
        c.insert(1, "spin", 0.02);
        c.invalidate_all();
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.lookup(0, "spin"), None);
    }
}
