//! Recorded load traces.
//!
//! A [`LoadTrace`] is a fixed-interval sampling of a load signal.  Traces are
//! used in two directions: the monitoring layer *records* them from a live
//! (simulated) grid, and the [`crate::load::TraceLoad`] model *replays* them
//! — which stands in for the production workload traces the paper's grid
//! testbed would have provided (see DESIGN.md substitution table).

use crate::clock::SimTime;
use crate::load::LoadModel;
use serde::{Deserialize, Serialize};

/// A load signal sampled at a fixed interval starting at time zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    interval_s: f64,
    samples: Vec<f64>,
}

impl LoadTrace {
    /// Create a trace from raw samples taken every `interval_s` seconds.
    /// A non-positive interval is clamped to 1 s.
    pub fn new(interval_s: f64, samples: Vec<f64>) -> Self {
        LoadTrace {
            interval_s: if interval_s > 0.0 { interval_s } else { 1.0 },
            samples,
        }
    }

    /// Record a trace by sampling `model` every `interval_s` seconds for
    /// `duration_s` seconds.
    pub fn record(model: &dyn LoadModel, interval_s: f64, duration_s: f64) -> Self {
        let interval_s = if interval_s > 0.0 { interval_s } else { 1.0 };
        let n = (duration_s / interval_s).ceil().max(1.0) as usize;
        let samples = (0..n)
            .map(|i| model.load_at(SimTime::new(i as f64 * interval_s)))
            .collect();
        LoadTrace {
            interval_s,
            samples,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sampling interval in seconds.
    pub fn interval(&self) -> f64 {
        self.interval_s
    }

    /// Total covered duration in seconds.
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 * self.interval_s
    }

    /// Raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Step-wise sample at `t`; `0.0` for an empty trace, last sample beyond
    /// the end.
    pub fn sample(&self, t: SimTime) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = (t.as_secs() / self.interval_s).floor() as usize;
        self.samples[idx.min(self.samples.len() - 1)]
    }

    /// Step-wise sample at `t`, repeating the trace cyclically.
    pub fn sample_cyclic(&self, t: SimTime) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = (t.as_secs() / self.interval_s).floor() as usize % self.samples.len();
        self.samples[idx]
    }

    /// Mean load over the whole trace (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Render as CSV lines `time_s,load` (used by the experiment binaries).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,load\n");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(&format!("{:.3},{:.6}\n", i as f64 * self.interval_s, s));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{ConstantLoad, PeriodicLoad};

    #[test]
    fn record_and_sample_roundtrip() {
        let model = ConstantLoad::new(0.25);
        let trace = LoadTrace::record(&model, 1.0, 10.0);
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.sample(SimTime::new(3.5)), 0.25);
        assert!((trace.mean() - 0.25).abs() < 1e-12);
        assert_eq!(trace.duration(), 10.0);
    }

    #[test]
    fn sample_clamps_past_end_and_cycles() {
        let trace = LoadTrace::new(1.0, vec![0.1, 0.2, 0.3]);
        assert_eq!(trace.sample(SimTime::new(99.0)), 0.3);
        assert_eq!(trace.sample_cyclic(SimTime::new(3.0)), 0.1);
        assert_eq!(trace.sample_cyclic(SimTime::new(4.0)), 0.2);
    }

    #[test]
    fn empty_trace_is_zero() {
        let trace = LoadTrace::new(1.0, vec![]);
        assert!(trace.is_empty());
        assert_eq!(trace.sample(SimTime::new(1.0)), 0.0);
        assert_eq!(trace.sample_cyclic(SimTime::new(1.0)), 0.0);
        assert_eq!(trace.mean(), 0.0);
    }

    #[test]
    fn degenerate_interval_is_clamped() {
        let trace = LoadTrace::new(0.0, vec![0.5]);
        assert_eq!(trace.interval(), 1.0);
    }

    #[test]
    fn recorded_periodic_trace_preserves_oscillation() {
        let model = PeriodicLoad::new(0.5, 0.3, 20.0, 0.0);
        let trace = LoadTrace::record(&model, 1.0, 40.0);
        let max = trace.samples().iter().cloned().fold(f64::MIN, f64::max);
        let min = trace.samples().iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.7 && min < 0.3);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let trace = LoadTrace::new(2.0, vec![0.1, 0.2]);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "time_s,load");
        assert!(lines[2].starts_with("2.000,"));
    }
}
