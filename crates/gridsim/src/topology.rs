//! Grid topology: sites, nodes and the links between them.
//!
//! A [`GridTopology`] is the static part of the simulated grid — which nodes
//! exist, how fast they are when idle, how they are grouped into
//! administrative sites, and what the inter-site links look like.  Dynamic
//! behaviour (external load, faults) is layered on top by
//! [`crate::grid::Grid`].

use crate::link::LinkSpec;
use crate::node::{NodeId, NodeSpec};
use crate::site::{Site, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The static description of a computational grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridTopology {
    nodes: Vec<NodeSpec>,
    sites: Vec<Site>,
    /// Wide-area links between pairs of sites (symmetric); keyed by the
    /// ordered pair (min, max).
    wan_links: BTreeMap<(usize, usize), LinkSpec>,
    /// Link used between sites with no explicit WAN link declared.
    default_wan: LinkSpec,
}

impl GridTopology {
    /// All nodes, indexed by `NodeId::index()`.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// All sites, indexed by `SiteId::index()`.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Node ids in index order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Look up a node; `None` when the id is out of range.
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.get(id.index())
    }

    /// Look up a site; `None` when the id is out of range.
    pub fn site(&self, id: SiteId) -> Option<&Site> {
        self.sites.get(id.index())
    }

    /// The link used between two nodes: the site-local link when they share a
    /// site, the declared WAN link between their sites otherwise (or the
    /// default WAN link when none was declared).  `None` if either node id is
    /// unknown.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkSpec> {
        let na = self.node(a)?;
        let nb = self.node(b)?;
        if na.site == nb.site {
            return self.site(na.site).map(|s| s.local_link);
        }
        let key = ordered(na.site.index(), nb.site.index());
        Some(*self.wan_links.get(&key).unwrap_or(&self.default_wan))
    }

    /// Fastest dedicated node speed in the topology (0 when empty).
    pub fn max_speed(&self) -> f64 {
        self.nodes.iter().map(|n| n.base_speed).fold(0.0, f64::max)
    }

    /// Total dedicated speed summed over all nodes.
    pub fn aggregate_speed(&self) -> f64 {
        self.nodes.iter().map(|n| n.base_speed).sum()
    }

    /// Heterogeneity ratio: fastest over slowest node speed (1.0 when empty).
    pub fn heterogeneity(&self) -> f64 {
        let min = self
            .nodes
            .iter()
            .map(|n| n.base_speed)
            .fold(f64::INFINITY, f64::min);
        let max = self.max_speed();
        if self.nodes.is_empty() || min <= 0.0 {
            1.0
        } else {
            max / min
        }
    }
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Incremental builder for [`GridTopology`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    nodes: Vec<NodeSpec>,
    sites: Vec<Site>,
    wan_links: BTreeMap<(usize, usize), LinkSpec>,
    default_wan: LinkSpec,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Start an empty topology.
    pub fn new() -> Self {
        TopologyBuilder {
            nodes: Vec::new(),
            sites: Vec::new(),
            wan_links: BTreeMap::new(),
            default_wan: LinkSpec::wan(),
        }
    }

    /// Set the link used between sites that have no explicit WAN link.
    pub fn default_wan(mut self, link: LinkSpec) -> Self {
        self.default_wan = link;
        self
    }

    /// Add a site with the given local-area link; returns its id.
    pub fn add_site(&mut self, name: impl Into<String>, local_link: LinkSpec) -> SiteId {
        let id = SiteId(self.sites.len());
        self.sites.push(Site::new(id, name, local_link));
        id
    }

    /// Add a node to a site; returns its id.  Panics if the site id is
    /// unknown (programming error in topology construction).
    pub fn add_node(&mut self, site: SiteId, name: impl Into<String>, base_speed: f64) -> NodeId {
        assert!(site.index() < self.sites.len(), "unknown site {site}");
        let id = NodeId(self.nodes.len());
        let spec = NodeSpec::new(id, name, base_speed, site);
        self.nodes.push(spec);
        self.sites[site.index()].nodes.push(id);
        id
    }

    /// Add a node with explicit core count.
    pub fn add_node_with_cores(
        &mut self,
        site: SiteId,
        name: impl Into<String>,
        base_speed: f64,
        cores: usize,
    ) -> NodeId {
        let id = self.add_node(site, name, base_speed);
        self.nodes[id.index()].cores = cores.max(1);
        id
    }

    /// Declare a WAN link between two sites (symmetric).
    pub fn connect_sites(&mut self, a: SiteId, b: SiteId, link: LinkSpec) -> &mut Self {
        self.wan_links.insert(ordered(a.index(), b.index()), link);
        self
    }

    /// Finish building.
    pub fn build(self) -> GridTopology {
        GridTopology {
            nodes: self.nodes,
            sites: self.sites,
            wan_links: self.wan_links,
            default_wan: self.default_wan,
        }
    }

    // ---------------------------------------------------------------------
    // Preset topologies used by examples, tests and the benchmark harness.
    // ---------------------------------------------------------------------

    /// A single homogeneous cluster of `n` nodes with the given speed.
    pub fn uniform_cluster(n: usize, speed: f64) -> GridTopology {
        let mut b = TopologyBuilder::new();
        let site = b.add_site("cluster", LinkSpec::lan());
        for i in 0..n {
            b.add_node(site, format!("node-{i:02}"), speed);
        }
        b.build()
    }

    /// A single cluster of `n` nodes with speeds drawn uniformly from
    /// `[min_speed, max_speed]` (deterministic per seed).
    pub fn heterogeneous_cluster(
        n: usize,
        min_speed: f64,
        max_speed: f64,
        seed: u64,
    ) -> GridTopology {
        let mut rng = StdRng::seed_from_u64(seed);
        let lo = min_speed.min(max_speed).max(1e-6);
        let hi = min_speed.max(max_speed).max(lo + 1e-9);
        let mut b = TopologyBuilder::new();
        let site = b.add_site("cluster", LinkSpec::lan());
        for i in 0..n {
            let speed = rng.gen_range(lo..=hi);
            b.add_node(site, format!("node-{i:02}"), speed);
        }
        b.build()
    }

    /// A multi-site grid: `sites` entries of `(node_count, node_speed)`
    /// connected pair-wise by WAN links.
    pub fn multi_site(sites: &[(usize, f64)]) -> GridTopology {
        let mut b = TopologyBuilder::new();
        let mut ids = Vec::new();
        for (s, &(count, speed)) in sites.iter().enumerate() {
            let sid = b.add_site(format!("site-{s}"), LinkSpec::lan());
            ids.push(sid);
            for i in 0..count {
                b.add_node(sid, format!("s{s}-n{i:02}"), speed);
            }
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                b.connect_sites(ids[i], ids[j], LinkSpec::wan());
            }
        }
        b.build()
    }

    /// The "paper-style" testbed: three departmental clusters of unequal size
    /// and speed joined by WAN links — a small stand-in for the kind of
    /// multi-domain grid (local cluster + remote centres) the PPoPP'07 work
    /// and its companion papers evaluated on.
    pub fn paper_testbed(seed: u64) -> GridTopology {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TopologyBuilder::new();
        let edi = b.add_site("edinburgh", LinkSpec::lan());
        let remote_a = b.add_site("remote-a", LinkSpec::lan());
        let remote_b = b.add_site("remote-b", LinkSpec::new(60.0, 5e-4));
        for i in 0..8 {
            let speed = 80.0 * rng.gen_range(0.9..1.1);
            b.add_node_with_cores(edi, format!("edi-{i:02}"), speed, 2);
        }
        for i in 0..12 {
            let speed = 40.0 * rng.gen_range(0.8..1.2);
            b.add_node(remote_a, format!("ra-{i:02}"), speed);
        }
        for i in 0..4 {
            let speed = 160.0 * rng.gen_range(0.95..1.05);
            b.add_node_with_cores(remote_b, format!("rb-{i:02}"), speed, 4);
        }
        b.connect_sites(edi, remote_a, LinkSpec::wan());
        b.connect_sites(edi, remote_b, LinkSpec::new(20.0, 0.012));
        b.connect_sites(remote_a, remote_b, LinkSpec::internet());
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("a", LinkSpec::lan());
        let s1 = b.add_site("b", LinkSpec::lan());
        let n0 = b.add_node(s0, "n0", 10.0);
        let n1 = b.add_node(s1, "n1", 20.0);
        assert_eq!(s0, SiteId(0));
        assert_eq!(s1, SiteId(1));
        assert_eq!(n0, NodeId(0));
        assert_eq!(n1, NodeId(1));
        let topo = b.build();
        assert_eq!(topo.node_count(), 2);
        assert_eq!(topo.site_count(), 2);
        assert!(topo.site(s0).unwrap().contains(n0));
        assert!(!topo.site(s0).unwrap().contains(n1));
    }

    #[test]
    fn link_between_same_site_uses_local_link() {
        let topo = TopologyBuilder::uniform_cluster(4, 10.0);
        let l = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(l, LinkSpec::lan());
    }

    #[test]
    fn link_between_sites_uses_wan_or_default() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_site("a", LinkSpec::lan());
        let s1 = b.add_site("b", LinkSpec::lan());
        let s2 = b.add_site("c", LinkSpec::lan());
        let n0 = b.add_node(s0, "n0", 10.0);
        let n1 = b.add_node(s1, "n1", 10.0);
        let n2 = b.add_node(s2, "n2", 10.0);
        b.connect_sites(s0, s1, LinkSpec::internet());
        let topo = b.default_wan(LinkSpec::wan()).build();
        assert_eq!(topo.link_between(n0, n1).unwrap(), LinkSpec::internet());
        // Direction must not matter.
        assert_eq!(topo.link_between(n1, n0).unwrap(), LinkSpec::internet());
        // Undeclared pair falls back to the default WAN link.
        assert_eq!(topo.link_between(n0, n2).unwrap(), LinkSpec::wan());
    }

    #[test]
    fn link_between_unknown_node_is_none() {
        let topo = TopologyBuilder::uniform_cluster(2, 10.0);
        assert!(topo.link_between(NodeId(0), NodeId(9)).is_none());
    }

    #[test]
    fn uniform_cluster_is_homogeneous() {
        let topo = TopologyBuilder::uniform_cluster(8, 25.0);
        assert_eq!(topo.node_count(), 8);
        assert_eq!(topo.site_count(), 1);
        assert!((topo.heterogeneity() - 1.0).abs() < 1e-12);
        assert!((topo.aggregate_speed() - 200.0).abs() < 1e-9);
        assert_eq!(topo.max_speed(), 25.0);
    }

    #[test]
    fn heterogeneous_cluster_spans_speed_range() {
        let topo = TopologyBuilder::heterogeneous_cluster(32, 10.0, 80.0, 5);
        assert_eq!(topo.node_count(), 32);
        assert!(topo.heterogeneity() > 2.0);
        assert!(topo
            .nodes()
            .iter()
            .all(|n| n.base_speed >= 10.0 && n.base_speed <= 80.0));
        // Deterministic per seed.
        let again = TopologyBuilder::heterogeneous_cluster(32, 10.0, 80.0, 5);
        assert_eq!(topo, again);
    }

    #[test]
    fn multi_site_connects_every_pair() {
        let topo = TopologyBuilder::multi_site(&[(4, 10.0), (4, 20.0), (2, 40.0)]);
        assert_eq!(topo.site_count(), 3);
        assert_eq!(topo.node_count(), 10);
        // Nodes in different sites should see a WAN link.
        let a = topo.sites()[0].nodes[0];
        let b = topo.sites()[2].nodes[0];
        assert_eq!(topo.link_between(a, b).unwrap(), LinkSpec::wan());
    }

    #[test]
    fn paper_testbed_shape() {
        let topo = TopologyBuilder::paper_testbed(1);
        assert_eq!(topo.site_count(), 3);
        assert_eq!(topo.node_count(), 24);
        assert!(topo.heterogeneity() > 2.0, "testbed must be heterogeneous");
    }

    #[test]
    #[should_panic]
    fn adding_node_to_unknown_site_panics() {
        let mut b = TopologyBuilder::new();
        b.add_node(SiteId(3), "orphan", 1.0);
    }
}
