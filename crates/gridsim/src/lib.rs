//! # gridsim — a simulated computational grid
//!
//! The PPoPP'07 GRASP paper targets *non-dedicated, heterogeneous,
//! dynamically loaded* computational grids.  We do not have a Globus testbed,
//! so this crate provides the closest synthetic equivalent: a deterministic,
//! discrete-event simulation of a multi-site grid whose observable behaviour
//! — per-node execution times that vary with external load, per-link transfer
//! times that vary with background traffic, node revocation — is exactly what
//! the GRASP calibration and adaptation layers react to.
//!
//! ## Model
//!
//! * A [`topology::GridTopology`] is a set of [`site::Site`]s (administrative
//!   domains), each containing [`node::NodeSpec`]s with heterogeneous base
//!   speeds and core counts, connected by [`link::LinkSpec`]s with bandwidth
//!   and latency.
//! * Every node carries an **external load model** ([`load`]) describing the
//!   CPU fraction consumed by other grid users over time, and every link a
//!   background-traffic model.  Load models are deterministic functions of
//!   virtual time (seeded pseudo-random where stochastic), so experiments are
//!   reproducible.
//! * The [`grid::Grid`] facade answers the two questions the skeleton layer
//!   asks: *how long does `w` units of work take on node `n` starting at
//!   time `t`?* (integrating availability over time) and *how long does a
//!   `b`-byte transfer take between nodes?*
//! * [`fault::FaultPlan`] injects node revocations and recoveries, and
//!   [`event::EventQueue`] provides a generic discrete-event core used by the
//!   skeleton simulations.
//!
//! The simulator works in **virtual seconds** ([`clock::SimTime`]); nothing in
//! it depends on wall-clock time, threads, or I/O.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod clock;
pub mod event;
pub mod fault;
pub mod grid;
pub mod link;
pub mod load;
pub mod node;
pub mod site;
pub mod topology;
pub mod trace;

pub use clock::{SimTime, VirtualClock};
pub use event::{EventQueue, ScheduledEvent};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use grid::{Grid, GridBuilder, TransferEstimate};
pub use link::{LinkId, LinkSpec};
pub use load::{
    BurstyLoad, CompositeLoad, ConstantLoad, DiurnalLoad, LoadModel, PeriodicLoad, RandomWalkLoad,
    SpikeLoad, TraceLoad,
};
pub use node::{NodeId, NodeSpec};
pub use site::{Site, SiteId};
pub use topology::{GridTopology, TopologyBuilder};
pub use trace::LoadTrace;
