//! Fault injection: node revocation and recovery.
//!
//! Grid nodes are non-dedicated; the local administrator (or a higher-priority
//! local job) may reclaim a node at any moment.  GRASP's execution phase must
//! treat such a node as a performance catastrophe and route around it.  A
//! [`FaultPlan`] is a deterministic schedule of down/up transitions per node
//! that the [`crate::grid::Grid`] consults when reporting availability.
//!
//! Availability queries sit in the skeletons' dispatch hot loops (every
//! dispatch and every starvation check filters the candidate pool through
//! [`FaultPlan::is_up`]), so the plan keeps a secondary index of its events
//! sorted by `(node, time)` and answers queries by binary search instead of
//! scanning the whole schedule.

use crate::clock::SimTime;
use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens to the node at the event time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node is revoked: it stops making progress and loses in-flight work.
    Revoke,
    /// The node becomes available again.
    Recover,
}

/// One scheduled state transition for a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Affected node.
    pub node: NodeId,
    /// When the transition happens.
    pub time: SimTime,
    /// Transition direction.
    pub kind: FaultKind,
}

/// A deterministic schedule of node revocations/recoveries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// All events, sorted by time (the public, chronological view).
    events: Vec<FaultEvent>,
    /// The same events re-sorted by `(node, time)` so per-node state queries
    /// binary-search instead of scanning the whole schedule.  Rebuilt by
    /// every constructor/mutator; ties at equal `(node, time)` preserve the
    /// chronological order (stable sort), so query semantics match a linear
    /// scan of `events` exactly.  Derived state: skipped by serde (a
    /// deserialized plan has an empty index), and queries fall back to the
    /// linear scan whenever the index does not cover `events`.
    #[serde(skip)]
    by_node: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: every node is up forever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit events (sorted internally by time).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        let mut plan = FaultPlan {
            events,
            by_node: Vec::new(),
        };
        plan.rebuild_index();
        plan
    }

    /// Revoke `node` during `[start, end)`.  An empty interval
    /// (`end <= start`) schedules nothing — use [`FaultPlan::revoked_from`]
    /// for an outage that never ends.
    pub fn with_outage(mut self, node: NodeId, start: SimTime, end: SimTime) -> Self {
        if end <= start {
            return self;
        }
        self.events.push(FaultEvent {
            node,
            time: start,
            kind: FaultKind::Revoke,
        });
        self.events.push(FaultEvent {
            node,
            time: end,
            kind: FaultKind::Recover,
        });
        self.events.sort_by_key(|e| e.time);
        self.rebuild_index();
        self
    }

    /// Revoke `node` at `start` with no scheduled recovery: the node is down
    /// for the rest of the simulation (a permanent revocation).
    pub fn revoked_from(mut self, node: NodeId, start: SimTime) -> Self {
        self.events.push(FaultEvent {
            node,
            time: start,
            kind: FaultKind::Revoke,
        });
        self.events.sort_by_key(|e| e.time);
        self.rebuild_index();
        self
    }

    /// Generate a random plan: each of `nodes` suffers an outage with
    /// probability `p_outage`, starting uniformly in `[0, horizon)` and
    /// lasting `mean_outage_s` on average.  Deterministic per seed.
    pub fn random(
        nodes: &[NodeId],
        p_outage: f64,
        horizon_s: f64,
        mean_outage_s: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for &node in nodes {
            if rng.gen_range(0.0..1.0) < p_outage.clamp(0.0, 1.0) {
                let start = rng.gen_range(0.0..horizon_s.max(1.0));
                let u: f64 = rng.gen_range(1e-9..1.0);
                let dur = -mean_outage_s.max(1.0) * u.ln();
                events.push(FaultEvent {
                    node,
                    time: SimTime::new(start),
                    kind: FaultKind::Revoke,
                });
                events.push(FaultEvent {
                    node,
                    time: SimTime::new(start + dur),
                    kind: FaultKind::Recover,
                });
            }
        }
        FaultPlan::from_events(events)
    }

    /// Rebuild the `(node, time)`-sorted query index from `events`.  The sort
    /// is stable, so events tied on `(node, time)` keep their chronological
    /// (insertion) order and queries agree with a linear scan.
    fn rebuild_index(&mut self) {
        self.by_node = self.events.clone();
        self.by_node
            .sort_by(|a, b| a.node.cmp(&b.node).then(a.time.cmp(&b.time)));
    }

    /// All scheduled events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The `(node, time)`-sorted query index, or `None` when it does not
    /// cover `events` (e.g. the plan was deserialized, which skips the
    /// derived index) — callers then fall back to a linear scan, so a plan
    /// is never silently wrong, only slower.
    fn index(&self) -> Option<&[FaultEvent]> {
        (self.by_node.len() == self.events.len()).then_some(self.by_node.as_slice())
    }

    /// Index of the first indexed event belonging to `node`.
    fn node_start(index: &[FaultEvent], node: NodeId) -> usize {
        index.partition_point(|e| e.node < node)
    }

    /// Index one past the last indexed event of `node` with `time <= t`.
    fn upper_bound(index: &[FaultEvent], node: NodeId, t: SimTime) -> usize {
        index.partition_point(|e| e.node < node || (e.node == node && e.time <= t))
    }

    /// Is `node` up at time `t`?  Nodes start up; the most recent transition
    /// at or before `t` decides the state.  `O(log events)` through the
    /// index, `O(events)` on the deserialized fallback.
    pub fn is_up(&self, node: NodeId, t: SimTime) -> bool {
        if let Some(index) = self.index() {
            let start = Self::node_start(index, node);
            let end = Self::upper_bound(index, node, t);
            if end > start {
                matches!(index[end - 1].kind, FaultKind::Recover)
            } else {
                true
            }
        } else {
            let mut up = true;
            for ev in &self.events {
                if ev.time > t {
                    break;
                }
                if ev.node == node {
                    up = matches!(ev.kind, FaultKind::Recover);
                }
            }
            up
        }
    }

    /// The next transition affecting `node` strictly after `t`, if any.
    /// `O(log events)` through the index, `O(events)` on the deserialized
    /// fallback.
    pub fn next_transition(&self, node: NodeId, t: SimTime) -> Option<FaultEvent> {
        if let Some(index) = self.index() {
            let idx = Self::upper_bound(index, node, t);
            index.get(idx).filter(|e| e.node == node).copied()
        } else {
            self.events
                .iter()
                .find(|ev| ev.node == node && ev.time > t)
                .copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_keeps_everything_up() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.is_up(NodeId(0), SimTime::new(1e9)));
    }

    #[test]
    fn outage_window_takes_node_down_then_up() {
        let plan = FaultPlan::none().with_outage(NodeId(2), SimTime::new(10.0), SimTime::new(20.0));
        assert!(plan.is_up(NodeId(2), SimTime::new(9.9)));
        assert!(!plan.is_up(NodeId(2), SimTime::new(10.0)));
        assert!(!plan.is_up(NodeId(2), SimTime::new(19.9)));
        assert!(plan.is_up(NodeId(2), SimTime::new(20.0)));
        // Other nodes are unaffected.
        assert!(plan.is_up(NodeId(3), SimTime::new(15.0)));
    }

    #[test]
    fn empty_outage_interval_is_a_no_op() {
        // `[start, start)` is empty, so the node must stay up — the plan
        // schedules nothing at all.
        let t = SimTime::new(10.0);
        let plan = FaultPlan::none().with_outage(NodeId(1), t, t);
        assert!(plan.is_empty());
        assert!(plan.is_up(NodeId(1), t));
        assert!(plan.is_up(NodeId(1), SimTime::new(1e9)));
        // An inverted interval is equally empty.
        let plan = FaultPlan::none().with_outage(NodeId(1), SimTime::new(10.0), SimTime::new(5.0));
        assert!(plan.is_empty());
    }

    #[test]
    fn revoked_from_downs_the_node_forever() {
        let plan = FaultPlan::none().revoked_from(NodeId(4), SimTime::new(3.0));
        assert_eq!(plan.len(), 1);
        assert!(plan.is_up(NodeId(4), SimTime::new(2.9)));
        assert!(!plan.is_up(NodeId(4), SimTime::new(3.0)));
        assert!(!plan.is_up(NodeId(4), SimTime::new(1e12)));
        assert!(plan.next_transition(NodeId(4), SimTime::new(3.0)).is_none());
    }

    #[test]
    fn events_are_sorted_by_time() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                node: NodeId(0),
                time: SimTime::new(5.0),
                kind: FaultKind::Recover,
            },
            FaultEvent {
                node: NodeId(0),
                time: SimTime::new(1.0),
                kind: FaultKind::Revoke,
            },
        ]);
        assert_eq!(plan.events()[0].time, SimTime::new(1.0));
        assert!(plan.is_up(NodeId(0), SimTime::new(6.0)));
    }

    #[test]
    fn next_transition_finds_the_following_event() {
        let plan = FaultPlan::none().with_outage(NodeId(1), SimTime::new(10.0), SimTime::new(30.0));
        let next = plan.next_transition(NodeId(1), SimTime::new(0.0)).unwrap();
        assert_eq!(next.kind, FaultKind::Revoke);
        let next = plan.next_transition(NodeId(1), SimTime::new(15.0)).unwrap();
        assert_eq!(next.kind, FaultKind::Recover);
        assert!(plan
            .next_transition(NodeId(1), SimTime::new(40.0))
            .is_none());
        assert!(plan.next_transition(NodeId(9), SimTime::new(0.0)).is_none());
    }

    #[test]
    fn indexed_queries_agree_with_a_linear_scan() {
        // The binary-searched index must reproduce the reference linear-scan
        // semantics on a dense multi-node plan, including at exact event
        // times and before/after the whole schedule.
        let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
        let plan = FaultPlan::random(&nodes, 0.8, 50.0, 10.0, 1234);
        let linear_is_up = |node: NodeId, t: SimTime| {
            let mut up = true;
            for ev in plan.events() {
                if ev.time > t {
                    break;
                }
                if ev.node == node {
                    up = matches!(ev.kind, FaultKind::Recover);
                }
            }
            up
        };
        let linear_next = |node: NodeId, t: SimTime| {
            plan.events()
                .iter()
                .find(|ev| ev.node == node && ev.time > t)
                .copied()
        };
        let mut probes: Vec<SimTime> = plan.events().iter().map(|e| e.time).collect();
        probes.extend((0..200).map(|i| SimTime::new(i as f64 * 0.37)));
        for &node in &nodes {
            for &t in &probes {
                assert_eq!(plan.is_up(node, t), linear_is_up(node, t), "{node:?} {t}");
                assert_eq!(
                    plan.next_transition(node, t),
                    linear_next(node, t),
                    "{node:?} {t}"
                );
            }
        }
    }

    #[test]
    fn queries_survive_a_missing_index() {
        // A deserialized plan arrives without the derived `by_node` index
        // (serde skips it); queries must fall back to the linear scan and
        // stay correct rather than reporting everything up.
        let plan = FaultPlan::none().with_outage(NodeId(1), SimTime::new(10.0), SimTime::new(20.0));
        let stripped = FaultPlan {
            events: plan.events().to_vec(),
            by_node: Vec::new(),
        };
        for t in [0.0, 10.0, 15.0, 20.0, 99.0] {
            let t = SimTime::new(t);
            assert_eq!(stripped.is_up(NodeId(1), t), plan.is_up(NodeId(1), t));
            assert_eq!(
                stripped.next_transition(NodeId(1), t),
                plan.next_transition(NodeId(1), t)
            );
        }
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let nodes: Vec<NodeId> = (0..20).map(NodeId).collect();
        let a = FaultPlan::random(&nodes, 0.5, 100.0, 20.0, 9);
        let b = FaultPlan::random(&nodes, 0.5, 100.0, 20.0, 9);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::random(&nodes, 0.5, 100.0, 20.0, 10);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn random_plan_respects_probability_extremes() {
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert!(FaultPlan::random(&nodes, 0.0, 100.0, 10.0, 1).is_empty());
        let all = FaultPlan::random(&nodes, 1.0, 100.0, 10.0, 1);
        assert_eq!(all.len(), 20, "every node gets a revoke + recover pair");
    }
}
