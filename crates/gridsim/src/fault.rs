//! Fault injection: node revocation and recovery.
//!
//! Grid nodes are non-dedicated; the local administrator (or a higher-priority
//! local job) may reclaim a node at any moment.  GRASP's execution phase must
//! treat such a node as a performance catastrophe and route around it.  A
//! [`FaultPlan`] is a deterministic schedule of down/up transitions per node
//! that the [`crate::grid::Grid`] consults when reporting availability.

use crate::clock::SimTime;
use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens to the node at the event time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node is revoked: it stops making progress and loses in-flight work.
    Revoke,
    /// The node becomes available again.
    Recover,
}

/// One scheduled state transition for a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Affected node.
    pub node: NodeId,
    /// When the transition happens.
    pub time: SimTime,
    /// Transition direction.
    pub kind: FaultKind,
}

/// A deterministic schedule of node revocations/recoveries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: every node is up forever.
    pub fn none() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Build a plan from explicit events (sorted internally by time).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        FaultPlan { events }
    }

    /// Revoke `node` during `[start, end)`.
    pub fn with_outage(mut self, node: NodeId, start: SimTime, end: SimTime) -> Self {
        self.events.push(FaultEvent {
            node,
            time: start,
            kind: FaultKind::Revoke,
        });
        if end > start {
            self.events.push(FaultEvent {
                node,
                time: end,
                kind: FaultKind::Recover,
            });
        }
        self.events.sort_by_key(|e| e.time);
        self
    }

    /// Generate a random plan: each of `nodes` suffers an outage with
    /// probability `p_outage`, starting uniformly in `[0, horizon)` and
    /// lasting `mean_outage_s` on average.  Deterministic per seed.
    pub fn random(
        nodes: &[NodeId],
        p_outage: f64,
        horizon_s: f64,
        mean_outage_s: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for &node in nodes {
            if rng.gen_range(0.0..1.0) < p_outage.clamp(0.0, 1.0) {
                let start = rng.gen_range(0.0..horizon_s.max(1.0));
                let u: f64 = rng.gen_range(1e-9..1.0);
                let dur = -mean_outage_s.max(1.0) * u.ln();
                events.push(FaultEvent {
                    node,
                    time: SimTime::new(start),
                    kind: FaultKind::Revoke,
                });
                events.push(FaultEvent {
                    node,
                    time: SimTime::new(start + dur),
                    kind: FaultKind::Recover,
                });
            }
        }
        FaultPlan::from_events(events)
    }

    /// All scheduled events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Is `node` up at time `t`?  Nodes start up; the most recent transition
    /// at or before `t` decides the state.
    pub fn is_up(&self, node: NodeId, t: SimTime) -> bool {
        let mut up = true;
        for ev in &self.events {
            if ev.time > t {
                break;
            }
            if ev.node == node {
                up = matches!(ev.kind, FaultKind::Recover);
            }
        }
        up
    }

    /// The next transition affecting `node` strictly after `t`, if any.
    pub fn next_transition(&self, node: NodeId, t: SimTime) -> Option<FaultEvent> {
        self.events
            .iter()
            .find(|ev| ev.node == node && ev.time > t)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_keeps_everything_up() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.is_up(NodeId(0), SimTime::new(1e9)));
    }

    #[test]
    fn outage_window_takes_node_down_then_up() {
        let plan = FaultPlan::none().with_outage(NodeId(2), SimTime::new(10.0), SimTime::new(20.0));
        assert!(plan.is_up(NodeId(2), SimTime::new(9.9)));
        assert!(!plan.is_up(NodeId(2), SimTime::new(10.0)));
        assert!(!plan.is_up(NodeId(2), SimTime::new(19.9)));
        assert!(plan.is_up(NodeId(2), SimTime::new(20.0)));
        // Other nodes are unaffected.
        assert!(plan.is_up(NodeId(3), SimTime::new(15.0)));
    }

    #[test]
    fn events_are_sorted_by_time() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                node: NodeId(0),
                time: SimTime::new(5.0),
                kind: FaultKind::Recover,
            },
            FaultEvent {
                node: NodeId(0),
                time: SimTime::new(1.0),
                kind: FaultKind::Revoke,
            },
        ]);
        assert_eq!(plan.events()[0].time, SimTime::new(1.0));
        assert!(plan.is_up(NodeId(0), SimTime::new(6.0)));
    }

    #[test]
    fn next_transition_finds_the_following_event() {
        let plan = FaultPlan::none().with_outage(NodeId(1), SimTime::new(10.0), SimTime::new(30.0));
        let next = plan.next_transition(NodeId(1), SimTime::new(0.0)).unwrap();
        assert_eq!(next.kind, FaultKind::Revoke);
        let next = plan.next_transition(NodeId(1), SimTime::new(15.0)).unwrap();
        assert_eq!(next.kind, FaultKind::Recover);
        assert!(plan
            .next_transition(NodeId(1), SimTime::new(40.0))
            .is_none());
        assert!(plan.next_transition(NodeId(9), SimTime::new(0.0)).is_none());
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let nodes: Vec<NodeId> = (0..20).map(NodeId).collect();
        let a = FaultPlan::random(&nodes, 0.5, 100.0, 20.0, 9);
        let b = FaultPlan::random(&nodes, 0.5, 100.0, 20.0, 9);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::random(&nodes, 0.5, 100.0, 20.0, 10);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn random_plan_respects_probability_extremes() {
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        assert!(FaultPlan::random(&nodes, 0.0, 100.0, 10.0, 1).is_empty());
        let all = FaultPlan::random(&nodes, 1.0, 100.0, 10.0, 1);
        assert_eq!(all.len(), 20, "every node gets a revoke + recover pair");
    }
}
