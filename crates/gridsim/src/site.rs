//! Administrative sites (clusters / virtual organisations).
//!
//! Computational grids are federations of independently administered
//! clusters.  GRASP's "grid resource co-allocation" and "inter-domain
//! scheduling" concerns show up here as the grouping of nodes into sites:
//! intra-site communication uses the site's local-area link, inter-site
//! communication uses the (slower) wide-area links declared in the topology.

use crate::link::LinkSpec;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a site within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub usize);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

impl SiteId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// An administrative domain: a named cluster with a local interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Site identifier (assigned by the topology builder).
    pub id: SiteId,
    /// Human-readable name, e.g. `"edinburgh"`.
    pub name: String,
    /// Local-area interconnect used for node-to-node transfers inside the
    /// site (typically high bandwidth / low latency).
    pub local_link: LinkSpec,
    /// Nodes belonging to this site.
    pub nodes: Vec<NodeId>,
}

impl Site {
    /// Create an empty site with the given local interconnect.
    pub fn new(id: SiteId, name: impl Into<String>, local_link: LinkSpec) -> Self {
        Site {
            id,
            name: name.into(),
            local_link,
            nodes: Vec::new(),
        }
    }

    /// Number of nodes registered in this site.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the site has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `true` when the node belongs to this site.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_display_and_index() {
        assert_eq!(format!("{}", SiteId(2)), "site2");
        assert_eq!(SiteId(2).index(), 2);
    }

    #[test]
    fn site_membership() {
        let mut s = Site::new(SiteId(0), "edi", LinkSpec::lan());
        assert!(s.is_empty());
        s.nodes.push(NodeId(3));
        assert_eq!(s.len(), 1);
        assert!(s.contains(NodeId(3)));
        assert!(!s.contains(NodeId(4)));
    }
}
