//! Network links.
//!
//! A link is characterised by bandwidth (MiB per virtual second) and latency
//! (seconds).  Links connect sites; intra-site transfers use the site's local
//! link.  The effective bandwidth seen by a transfer is the nominal bandwidth
//! scaled by `1 − background_utilisation(t)`, mirroring how node speed is
//! scaled by external CPU load.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a wide-area link within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Static description of a network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Nominal bandwidth in MiB per second.
    pub bandwidth_mib_s: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

impl LinkSpec {
    /// Create a link spec; non-positive bandwidth is clamped to a tiny
    /// positive value so transfer times stay finite, negative latency to 0.
    pub fn new(bandwidth_mib_s: f64, latency_s: f64) -> Self {
        LinkSpec {
            bandwidth_mib_s: if bandwidth_mib_s > 0.0 {
                bandwidth_mib_s
            } else {
                1e-6
            },
            latency_s: latency_s.max(0.0),
        }
    }

    /// A typical gigabit-class LAN: ~110 MiB/s, 0.1 ms latency.
    pub fn lan() -> Self {
        LinkSpec::new(110.0, 1e-4)
    }

    /// A typical academic WAN path: ~10 MiB/s, 20 ms latency.
    pub fn wan() -> Self {
        LinkSpec::new(10.0, 0.020)
    }

    /// A congested commodity internet path: ~1 MiB/s, 80 ms latency.
    pub fn internet() -> Self {
        LinkSpec::new(1.0, 0.080)
    }

    /// Time to move `bytes` over this link with availability `avail ∈ (0,1]`
    /// of the nominal bandwidth.
    pub fn transfer_time(&self, bytes: u64, avail: f64) -> f64 {
        let avail = avail.clamp(1e-3, 1.0);
        let mib = bytes as f64 / (1024.0 * 1024.0);
        self.latency_s + mib / (self.bandwidth_mib_s * avail)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_degenerate_values() {
        let l = LinkSpec::new(-5.0, -1.0);
        assert!(l.bandwidth_mib_s > 0.0);
        assert_eq!(l.latency_s, 0.0);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = LinkSpec::new(100.0, 0.5);
        // Zero bytes: just the latency.
        assert!((l.transfer_time(0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_scales_with_size_and_availability() {
        let l = LinkSpec::new(10.0, 0.0);
        let one_mib = 1024 * 1024;
        let full = l.transfer_time(one_mib, 1.0);
        let half = l.transfer_time(one_mib, 0.5);
        assert!((full - 0.1).abs() < 1e-9);
        assert!((half - 0.2).abs() < 1e-9);
        let two = l.transfer_time(2 * one_mib, 1.0);
        assert!((two - 0.2).abs() < 1e-9);
    }

    #[test]
    fn presets_are_ordered_by_quality() {
        assert!(LinkSpec::lan().bandwidth_mib_s > LinkSpec::wan().bandwidth_mib_s);
        assert!(LinkSpec::wan().bandwidth_mib_s > LinkSpec::internet().bandwidth_mib_s);
        assert!(LinkSpec::lan().latency_s < LinkSpec::wan().latency_s);
    }

    #[test]
    fn availability_is_clamped() {
        let l = LinkSpec::new(10.0, 0.0);
        // avail=0 would divide by zero; it must be clamped to something finite.
        assert!(l.transfer_time(1024 * 1024, 0.0).is_finite());
    }
}
