//! Grid nodes.
//!
//! A node models one processing element of the grid: a base speed in abstract
//! *work units per second*, a core count, memory, and the administrative site
//! it belongs to.  Heterogeneity — the central difficulty GRASP addresses —
//! is expressed through differing base speeds and differing external load.

use crate::site::SiteId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within a [`crate::topology::GridTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl NodeId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Static description of a grid node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node identifier (assigned by the topology builder).
    pub id: NodeId,
    /// Human-readable name, e.g. `"edinburgh-03"`.
    pub name: String,
    /// Base processing speed in work units per virtual second, with the whole
    /// machine to itself.  Heterogeneity is expressed as differing speeds.
    pub base_speed: f64,
    /// Number of cores.  GRASP's task farm may place several workers on a
    /// multi-core node.
    pub cores: usize,
    /// Main memory in MiB (used only for capacity-style filtering).
    pub memory_mib: u64,
    /// Administrative site (cluster / virtual organisation) this node is in.
    pub site: SiteId,
}

impl NodeSpec {
    /// Create a node spec with the given speed and a single core.
    pub fn new(id: NodeId, name: impl Into<String>, base_speed: f64, site: SiteId) -> Self {
        NodeSpec {
            id,
            name: name.into(),
            base_speed: if base_speed > 0.0 { base_speed } else { 1.0 },
            cores: 1,
            memory_mib: 2048,
            site,
        }
    }

    /// Builder-style core-count override.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Builder-style memory override.
    pub fn with_memory_mib(mut self, memory_mib: u64) -> Self {
        self.memory_mib = memory_mib;
        self
    }

    /// Time to execute `work` units at full availability.
    pub fn dedicated_time(&self, work: f64) -> f64 {
        work / self.base_speed
    }
}

/// Dynamic state of a node maintained by the [`crate::grid::Grid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NodeState {
    /// Available for work (subject to external load).
    #[default]
    Up,
    /// Revoked / crashed; work dispatched to it is lost.
    Down,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(format!("{}", NodeId(7)), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn spec_clamps_nonpositive_speed() {
        let n = NodeSpec::new(NodeId(0), "x", 0.0, SiteId(0));
        assert_eq!(n.base_speed, 1.0);
        let n = NodeSpec::new(NodeId(0), "x", -3.0, SiteId(0));
        assert_eq!(n.base_speed, 1.0);
    }

    #[test]
    fn dedicated_time_scales_with_speed() {
        let slow = NodeSpec::new(NodeId(0), "slow", 10.0, SiteId(0));
        let fast = NodeSpec::new(NodeId(1), "fast", 40.0, SiteId(0));
        assert_eq!(slow.dedicated_time(100.0), 10.0);
        assert_eq!(fast.dedicated_time(100.0), 2.5);
    }

    #[test]
    fn builder_overrides() {
        let n = NodeSpec::new(NodeId(0), "x", 5.0, SiteId(1))
            .with_cores(8)
            .with_memory_mib(16384);
        assert_eq!(n.cores, 8);
        assert_eq!(n.memory_mib, 16384);
        let n0 = NodeSpec::new(NodeId(0), "x", 5.0, SiteId(1)).with_cores(0);
        assert_eq!(n0.cores, 1, "core count must stay positive");
    }

    #[test]
    fn default_state_is_up() {
        assert_eq!(NodeState::default(), NodeState::Up);
    }
}
