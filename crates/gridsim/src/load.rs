//! External load models.
//!
//! A computational grid is *non-dedicated*: other users' jobs consume CPU on
//! the nodes and bandwidth on the links, and that consumption changes over
//! time.  GRASP's whole purpose is to adapt to this "evolving external
//! pressure on the chosen resources".
//!
//! A [`LoadModel`] maps virtual time to the **fraction of the resource
//! consumed by external users**, in `[0, 1)`.  The grid turns this into
//! *availability* `1 − load`, which scales node speed and link bandwidth.
//!
//! All stochastic models are seeded and pre-sample their randomness at
//! construction time, so a given model is a pure, deterministic function of
//! time — this is what makes the experiments reproducible and the
//! simulation's virtual clock free to be queried in any order.

use crate::clock::SimTime;
use crate::trace::LoadTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Upper bound used when clamping external load so that a node never becomes
/// completely unavailable (the paper's grid nodes always make *some*
/// progress; total unavailability is modelled by fault injection instead).
pub const MAX_LOAD: f64 = 0.98;

/// A deterministic mapping from virtual time to external load in `[0, MAX_LOAD]`.
pub trait LoadModel: Send + Sync {
    /// External load (fraction of the resource consumed by others) at `t`.
    fn load_at(&self, t: SimTime) -> f64;

    /// Resource availability at `t` (`1 − load`).
    fn availability_at(&self, t: SimTime) -> f64 {
        1.0 - self.load_at(t)
    }

    /// A short human-readable description used in experiment reports.
    fn describe(&self) -> String {
        "load".to_string()
    }
}

fn clamp_load(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x.clamp(0.0, MAX_LOAD)
    }
}

/// Constant external load.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLoad {
    level: f64,
}

impl ConstantLoad {
    /// A constant load at `level` (clamped to `[0, MAX_LOAD]`).
    pub fn new(level: f64) -> Self {
        ConstantLoad {
            level: clamp_load(level),
        }
    }

    /// An idle resource.
    pub fn idle() -> Self {
        ConstantLoad::new(0.0)
    }
}

impl LoadModel for ConstantLoad {
    fn load_at(&self, _t: SimTime) -> f64 {
        self.level
    }
    fn describe(&self) -> String {
        format!("constant({:.2})", self.level)
    }
}

/// Sinusoidal load oscillating around a mean with a given period, modelling
/// regular interference (e.g. a periodically scheduled competing job).
#[derive(Debug, Clone, Copy)]
pub struct PeriodicLoad {
    mean: f64,
    amplitude: f64,
    period_s: f64,
    phase: f64,
}

impl PeriodicLoad {
    /// Create a sinusoidal load: `mean + amplitude·sin(2π(t/period + phase))`,
    /// clamped to the valid range. `period_s` must be positive (else 1.0).
    pub fn new(mean: f64, amplitude: f64, period_s: f64, phase: f64) -> Self {
        PeriodicLoad {
            mean,
            amplitude: amplitude.abs(),
            period_s: if period_s > 0.0 { period_s } else { 1.0 },
            phase,
        }
    }
}

impl LoadModel for PeriodicLoad {
    fn load_at(&self, t: SimTime) -> f64 {
        let x = self.mean
            + self.amplitude
                * (2.0 * std::f64::consts::PI * (t.as_secs() / self.period_s + self.phase)).sin();
        clamp_load(x)
    }
    fn describe(&self) -> String {
        format!(
            "periodic(mean={:.2}, amp={:.2}, period={:.0}s)",
            self.mean, self.amplitude, self.period_s
        )
    }
}

/// Diurnal (day/night) pattern: low load during the "night" fraction of the
/// cycle and high load during the "day", with smooth cosine ramps.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalLoad {
    night_load: f64,
    day_load: f64,
    period_s: f64,
}

impl DiurnalLoad {
    /// Create a diurnal load with the given night/day plateaus and period
    /// (default grids use 86 400 s; experiments shrink it).
    pub fn new(night_load: f64, day_load: f64, period_s: f64) -> Self {
        DiurnalLoad {
            night_load: clamp_load(night_load),
            day_load: clamp_load(day_load),
            period_s: if period_s > 0.0 { period_s } else { 86_400.0 },
        }
    }
}

impl LoadModel for DiurnalLoad {
    fn load_at(&self, t: SimTime) -> f64 {
        // Raised cosine between the two plateaus.
        let phase = (t.as_secs() / self.period_s) * 2.0 * std::f64::consts::PI;
        let w = 0.5 * (1.0 - phase.cos()); // 0 at t=0 (night), 1 mid-period (day)
        clamp_load(self.night_load + (self.day_load - self.night_load) * w)
    }
    fn describe(&self) -> String {
        format!(
            "diurnal(night={:.2}, day={:.2}, period={:.0}s)",
            self.night_load, self.day_load, self.period_s
        )
    }
}

/// A single sustained load spike over a time window — the canonical
/// "somebody started a big job on one of our nodes" scenario used by the
/// adaptation-response experiment (E7).
#[derive(Debug, Clone, Copy)]
pub struct SpikeLoad {
    baseline: f64,
    spike: f64,
    start_s: f64,
    end_s: f64,
}

impl SpikeLoad {
    /// Load is `baseline` outside `[start, end)` and `spike` inside it.
    pub fn new(baseline: f64, spike: f64, start: SimTime, end: SimTime) -> Self {
        SpikeLoad {
            baseline: clamp_load(baseline),
            spike: clamp_load(spike),
            start_s: start.as_secs(),
            end_s: end.as_secs().max(start.as_secs()),
        }
    }
}

impl LoadModel for SpikeLoad {
    fn load_at(&self, t: SimTime) -> f64 {
        let s = t.as_secs();
        if s >= self.start_s && s < self.end_s {
            self.spike
        } else {
            self.baseline
        }
    }
    fn describe(&self) -> String {
        format!(
            "spike({:.2}->{:.2} during [{:.0},{:.0})s)",
            self.baseline, self.spike, self.start_s, self.end_s
        )
    }
}

/// Bursty load: exponential-ish gaps between bursts of random height and
/// duration, pre-sampled over a horizon and repeated cyclically beyond it.
#[derive(Debug, Clone)]
pub struct BurstyLoad {
    baseline: f64,
    /// Sorted (start, end, level) burst windows within `[0, horizon)`.
    bursts: Vec<(f64, f64, f64)>,
    horizon_s: f64,
}

impl BurstyLoad {
    /// Create a bursty load.
    ///
    /// * `baseline` — load between bursts.
    /// * `burst_level` — mean load during a burst (individual bursts vary ±30 %).
    /// * `mean_gap_s` — mean idle gap between bursts.
    /// * `mean_burst_s` — mean burst duration.
    /// * `horizon_s` — length of the pre-sampled pattern (repeats after this).
    /// * `seed` — RNG seed; equal seeds give identical load functions.
    pub fn new(
        baseline: f64,
        burst_level: f64,
        mean_gap_s: f64,
        mean_burst_s: f64,
        horizon_s: f64,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon_s = if horizon_s > 0.0 { horizon_s } else { 1000.0 };
        let mean_gap_s = mean_gap_s.max(1e-3);
        let mean_burst_s = mean_burst_s.max(1e-3);
        let mut bursts = Vec::new();
        let mut t = 0.0f64;
        while t < horizon_s {
            // Exponential gap via inverse transform on a uniform draw.
            let u: f64 = rng.gen_range(1e-9..1.0);
            let gap = -mean_gap_s * u.ln();
            let start = t + gap;
            if start >= horizon_s {
                break;
            }
            let u2: f64 = rng.gen_range(1e-9..1.0);
            let dur = -mean_burst_s * u2.ln();
            let level = clamp_load(burst_level * rng.gen_range(0.7..1.3));
            let end = (start + dur).min(horizon_s);
            bursts.push((start, end, level));
            t = end;
        }
        BurstyLoad {
            baseline: clamp_load(baseline),
            bursts,
            horizon_s,
        }
    }
}

impl LoadModel for BurstyLoad {
    fn load_at(&self, t: SimTime) -> f64 {
        let s = t.as_secs() % self.horizon_s;
        for &(start, end, level) in &self.bursts {
            if s >= start && s < end {
                return level.max(self.baseline);
            }
            if start > s {
                break;
            }
        }
        self.baseline
    }
    fn describe(&self) -> String {
        format!(
            "bursty(baseline={:.2}, {} bursts/{:.0}s)",
            self.baseline,
            self.bursts.len(),
            self.horizon_s
        )
    }
}

/// Random-walk load: a mean-reverting walk pre-sampled at a fixed step over a
/// horizon (repeating beyond it), with linear interpolation between samples.
/// This approximates the slowly wandering background utilisation observed on
/// shared cluster nodes.
#[derive(Debug, Clone)]
pub struct RandomWalkLoad {
    samples: Vec<f64>,
    step_s: f64,
}

impl RandomWalkLoad {
    /// Create a mean-reverting random-walk load.
    ///
    /// * `mean` — long-run mean load.
    /// * `volatility` — standard deviation of each step's innovation.
    /// * `step_s` — sampling step.
    /// * `horizon_s` — pattern length (repeats after this).
    /// * `seed` — RNG seed.
    pub fn new(mean: f64, volatility: f64, step_s: f64, horizon_s: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let step_s = step_s.max(1e-3);
        let horizon_s = horizon_s.max(step_s);
        let n = (horizon_s / step_s).ceil() as usize + 1;
        let mean = clamp_load(mean);
        let mut samples = Vec::with_capacity(n);
        let mut x = mean;
        // Mean reversion strength: pull 10 % of the gap back each step.
        let kappa = 0.1;
        for _ in 0..n {
            samples.push(clamp_load(x));
            // Approximate a Gaussian innovation by the sum of uniforms (Irwin–Hall).
            let g: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
            x += kappa * (mean - x) + volatility * g;
        }
        RandomWalkLoad { samples, step_s }
    }
}

impl LoadModel for RandomWalkLoad {
    fn load_at(&self, t: SimTime) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let span = (self.samples.len() - 1) as f64 * self.step_s;
        if span <= 0.0 {
            return self.samples[0];
        }
        let s = t.as_secs() % span;
        let idx = s / self.step_s;
        let lo = idx.floor() as usize;
        let hi = (lo + 1).min(self.samples.len() - 1);
        let frac = idx - lo as f64;
        clamp_load(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }
    fn describe(&self) -> String {
        format!(
            "random-walk({} samples, step {:.1}s)",
            self.samples.len(),
            self.step_s
        )
    }
}

/// Load replayed from a recorded [`LoadTrace`] (step-wise, repeating).
#[derive(Debug, Clone)]
pub struct TraceLoad {
    trace: LoadTrace,
}

impl TraceLoad {
    /// Wrap a trace for replay.
    pub fn new(trace: LoadTrace) -> Self {
        TraceLoad { trace }
    }
}

impl LoadModel for TraceLoad {
    fn load_at(&self, t: SimTime) -> f64 {
        clamp_load(self.trace.sample_cyclic(t))
    }
    fn describe(&self) -> String {
        format!("trace({} samples)", self.trace.len())
    }
}

/// Sum of several load models, clamped to the valid range.  Used to layer a
/// spike or bursts on top of a diurnal baseline.
pub struct CompositeLoad {
    parts: Vec<Box<dyn LoadModel>>,
}

impl CompositeLoad {
    /// Create an empty composite (zero load).
    pub fn new() -> Self {
        CompositeLoad { parts: Vec::new() }
    }

    /// Add a component model.
    pub fn with(mut self, model: Box<dyn LoadModel>) -> Self {
        self.parts.push(model);
        self
    }
}

impl Default for CompositeLoad {
    fn default() -> Self {
        Self::new()
    }
}

impl LoadModel for CompositeLoad {
    fn load_at(&self, t: SimTime) -> f64 {
        clamp_load(self.parts.iter().map(|m| m.load_at(t)).sum())
    }
    fn describe(&self) -> String {
        let inner: Vec<String> = self.parts.iter().map(|m| m.describe()).collect();
        format!("composite[{}]", inner.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    #[test]
    fn constant_load_is_flat_and_clamped() {
        let m = ConstantLoad::new(0.3);
        assert_eq!(m.load_at(t(0.0)), 0.3);
        assert_eq!(m.load_at(t(1e6)), 0.3);
        assert!((m.availability_at(t(5.0)) - 0.7).abs() < 1e-12);
        assert_eq!(ConstantLoad::new(2.0).load_at(t(0.0)), MAX_LOAD);
        assert_eq!(ConstantLoad::new(-1.0).load_at(t(0.0)), 0.0);
        assert_eq!(ConstantLoad::idle().load_at(t(9.9)), 0.0);
    }

    #[test]
    fn periodic_load_oscillates_within_bounds() {
        let m = PeriodicLoad::new(0.5, 0.4, 100.0, 0.0);
        let vals: Vec<f64> = (0..200).map(|i| m.load_at(t(i as f64))).collect();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            lo < 0.2 && hi > 0.8,
            "oscillation should span the amplitude"
        );
        assert!(vals.iter().all(|&v| (0.0..=MAX_LOAD).contains(&v)));
        // Periodicity.
        assert!((m.load_at(t(12.0)) - m.load_at(t(112.0))).abs() < 1e-9);
    }

    #[test]
    fn diurnal_load_peaks_mid_period() {
        let m = DiurnalLoad::new(0.1, 0.8, 1000.0);
        assert!((m.load_at(t(0.0)) - 0.1).abs() < 1e-9);
        assert!((m.load_at(t(500.0)) - 0.8).abs() < 1e-9);
        assert!(m.load_at(t(250.0)) > 0.1 && m.load_at(t(250.0)) < 0.8);
    }

    #[test]
    fn spike_load_is_windowed() {
        let m = SpikeLoad::new(0.05, 0.9, t(10.0), t(20.0));
        assert_eq!(m.load_at(t(5.0)), 0.05);
        assert_eq!(m.load_at(t(10.0)), 0.9);
        assert_eq!(m.load_at(t(19.99)), 0.9);
        assert_eq!(m.load_at(t(20.0)), 0.05);
    }

    #[test]
    fn bursty_load_is_deterministic_per_seed() {
        let a = BurstyLoad::new(0.05, 0.8, 30.0, 10.0, 1000.0, 42);
        let b = BurstyLoad::new(0.05, 0.8, 30.0, 10.0, 1000.0, 42);
        let c = BurstyLoad::new(0.05, 0.8, 30.0, 10.0, 1000.0, 43);
        let same = (0..100).all(|i| a.load_at(t(i as f64 * 7.0)) == b.load_at(t(i as f64 * 7.0)));
        assert!(same);
        let differs =
            (0..100).any(|i| a.load_at(t(i as f64 * 7.0)) != c.load_at(t(i as f64 * 7.0)));
        assert!(
            differs,
            "different seeds should give different burst patterns"
        );
    }

    #[test]
    fn bursty_load_spends_time_at_baseline_and_in_bursts() {
        let m = BurstyLoad::new(0.05, 0.8, 20.0, 10.0, 2000.0, 7);
        let samples: Vec<f64> = (0..2000).map(|i| m.load_at(t(i as f64))).collect();
        let at_baseline = samples.iter().filter(|&&v| (v - 0.05).abs() < 1e-9).count();
        let in_burst = samples.iter().filter(|&&v| v > 0.3).count();
        assert!(at_baseline > 0, "some time must be idle");
        assert!(in_burst > 0, "some time must be bursting");
    }

    #[test]
    fn random_walk_stays_in_bounds_and_reverts_to_mean() {
        let m = RandomWalkLoad::new(0.4, 0.05, 1.0, 5000.0, 11);
        let samples: Vec<f64> = (0..5000).map(|i| m.load_at(t(i as f64))).collect();
        assert!(samples.iter().all(|&v| (0.0..=MAX_LOAD).contains(&v)));
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (mean - 0.4).abs() < 0.15,
            "long-run mean should be near 0.4, got {mean}"
        );
    }

    #[test]
    fn random_walk_is_continuous_between_samples() {
        let m = RandomWalkLoad::new(0.3, 0.02, 10.0, 1000.0, 3);
        // Values 1 s apart within the same 10 s step should be close.
        let a = m.load_at(t(25.0));
        let b = m.load_at(t(26.0));
        assert!((a - b).abs() < 0.1);
    }

    #[test]
    fn composite_load_sums_and_clamps() {
        let m = CompositeLoad::new()
            .with(Box::new(ConstantLoad::new(0.3)))
            .with(Box::new(ConstantLoad::new(0.4)));
        assert!((m.load_at(t(0.0)) - 0.7).abs() < 1e-12);
        let over = CompositeLoad::new()
            .with(Box::new(ConstantLoad::new(0.9)))
            .with(Box::new(ConstantLoad::new(0.9)));
        assert_eq!(over.load_at(t(0.0)), MAX_LOAD);
        assert_eq!(CompositeLoad::new().load_at(t(1.0)), 0.0);
    }

    #[test]
    fn describe_strings_are_informative() {
        assert!(ConstantLoad::new(0.2).describe().contains("constant"));
        assert!(PeriodicLoad::new(0.5, 0.1, 60.0, 0.0)
            .describe()
            .contains("periodic"));
        assert!(SpikeLoad::new(0.0, 0.9, t(1.0), t(2.0))
            .describe()
            .contains("spike"));
        assert!(BurstyLoad::new(0.0, 0.5, 10.0, 5.0, 100.0, 1)
            .describe()
            .contains("bursty"));
        assert!(RandomWalkLoad::new(0.3, 0.1, 1.0, 10.0, 1)
            .describe()
            .contains("random-walk"));
        let comp = CompositeLoad::new().with(Box::new(ConstantLoad::idle()));
        assert!(comp.describe().contains("composite"));
    }
}
