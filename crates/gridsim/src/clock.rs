//! Virtual time.
//!
//! Everything in the simulator is expressed in **virtual seconds**.  Using a
//! dedicated newtype rather than a bare `f64` keeps time values from being
//! mixed up with work units or load fractions, while remaining cheap to copy.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or duration of) virtual time, in seconds.
///
/// `SimTime` is totally ordered; NaN values are rejected at construction via
/// [`SimTime::new`] (which clamps NaN to zero) so ordering is always defined.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds; NaN becomes 0 and negative values are clamped
    /// to 0 (virtual time never runs backwards).
    pub fn new(seconds: f64) -> Self {
        if seconds.is_nan() || seconds < 0.0 {
            SimTime(0.0)
        } else {
            SimTime(seconds)
        }
    }

    /// Construct from seconds without the non-negativity clamp.  Only used
    /// internally for differences; still maps NaN to zero.
    pub fn raw(seconds: f64) -> Self {
        if seconds.is_nan() {
            SimTime(0.0)
        } else {
            SimTime(seconds)
        }
    }

    /// Seconds as `f64`.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Milliseconds as `f64`.
    pub fn as_millis(&self) -> f64 {
        self.0 * 1e3
    }

    /// `true` when this time is `0`.
    pub fn is_zero(&self) -> bool {
        self.0 == 0.0
    }

    /// Element-wise minimum.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Element-wise maximum.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::raw(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::raw(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::raw(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::raw(self.0 / rhs)
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // NaN is excluded at construction, so partial_cmp always succeeds.
        self.partial_cmp(other).unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// A monotonically advancing virtual clock.
///
/// The skeleton simulations advance the clock explicitly; attempting to move
/// it backwards is a no-op, which makes out-of-order completions harmless.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        VirtualClock { now: SimTime::ZERO }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock *to* an absolute time; ignored if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Advance the clock *by* a duration.
    pub fn advance_by(&mut self, dt: SimTime) {
        self.now += SimTime::new(dt.as_secs());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_nan_and_negative() {
        assert_eq!(SimTime::new(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::new(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::new(2.5).as_secs(), 2.5);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::new(2.0);
        let b = SimTime::new(0.5);
        assert_eq!((a + b).as_secs(), 2.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!((a * 3.0).as_secs(), 6.0);
        assert_eq!((a / 4.0).as_secs(), 0.5);
        assert_eq!(a.as_millis(), 2000.0);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = VirtualClock::new();
        c.advance_to(SimTime::new(10.0));
        assert_eq!(c.now().as_secs(), 10.0);
        c.advance_to(SimTime::new(5.0));
        assert_eq!(c.now().as_secs(), 10.0, "clock must not run backwards");
        c.advance_by(SimTime::new(2.0));
        assert_eq!(c.now().as_secs(), 12.0);
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(format!("{}", SimTime::new(1.5)), "1.500000s");
    }
}
