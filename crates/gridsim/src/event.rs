//! A generic discrete-event queue.
//!
//! The skeleton simulations (task farm, pipeline) are discrete-event
//! programs: "task completes on node n at time t", "monitoring interval
//! expires", "node revoked".  This module provides the ordered event queue
//! they are built on: a binary heap keyed by [`SimTime`] with a sequence
//! number tie-breaker so that events scheduled first fire first at equal
//! times (deterministic replay).

use crate::clock::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of type `E` scheduled at a point in virtual time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used to break ties deterministically.
    pub seq: u64,
    /// The payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest time pops first,
        // and the lowest sequence number within equal times.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the time of the last popped event, or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `time`.  Scheduling in the past is
    /// clamped to `now` (the event fires immediately on the next pop).
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, payload });
    }

    /// Schedule `payload` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the next event, advancing the queue's clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some(ev)
    }

    /// Peek at the time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Drain and discard every pending event (used when a simulation aborts).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.schedule_at(SimTime::new(5.0), "c");
        q.schedule_at(SimTime::new(1.0), "a");
        q.schedule_at(SimTime::new(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::new(2.0), 1);
        q.schedule_at(SimTime::new(2.0), 2);
        q.schedule_at(SimTime::new(2.0), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(SimTime::new(4.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::new(4.0));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.schedule_at(SimTime::new(10.0), "first");
        q.pop();
        q.schedule_at(SimTime::new(1.0), "late");
        let ev = q.pop().unwrap();
        assert_eq!(ev.payload, "late");
        assert_eq!(ev.time, SimTime::new(10.0));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_at(SimTime::new(3.0), 0);
        q.pop();
        q.schedule_in(SimTime::new(2.0), 1);
        assert_eq!(q.peek_time(), Some(SimTime::new(5.0)));
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.schedule_at(SimTime::new(1.0), 1);
        q.schedule_at(SimTime::new(2.0), 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
