//! The dynamic grid: topology + external load + faults.
//!
//! [`Grid`] is the facade the GRASP layers talk to.  It answers exactly the
//! questions a skeleton running on a real grid would have to discover
//! empirically:
//!
//! * *How long does `w` units of work take on node `n` if started at `t`?* —
//!   [`Grid::execute`], which integrates the node's availability over time, so
//!   a task started just before a load spike genuinely takes longer.
//! * *How long does a `b`-byte message take between nodes?* —
//!   [`Grid::transfer`].
//! * *What do the monitoring sensors read right now?* — [`Grid::cpu_load`],
//!   [`Grid::bandwidth_availability`]; these feed the `gridmon` sensors and
//!   through them the statistical calibration.
//!
//! The grid itself never schedules anything: scheduling is the skeletons' job.

use crate::clock::SimTime;
use crate::fault::FaultPlan;
use crate::load::{ConstantLoad, LoadModel};
use crate::node::{NodeId, NodeSpec};
use crate::topology::GridTopology;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Result of estimating a data transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEstimate {
    /// Total transfer duration (latency + serialisation at available bandwidth).
    pub duration: SimTime,
    /// Effective bandwidth in MiB/s after background traffic.
    pub effective_bandwidth_mib_s: f64,
}

/// A simulated computational grid: static topology plus dynamic behaviour.
pub struct Grid {
    topology: GridTopology,
    node_loads: Vec<Arc<dyn LoadModel>>,
    link_loads: BTreeMap<(usize, usize), Arc<dyn LoadModel>>,
    default_link_load: Arc<dyn LoadModel>,
    faults: FaultPlan,
    /// Maximum integration step used by [`Grid::execute`].
    quantum_s: f64,
}

impl Grid {
    /// A dedicated (idle, fault-free) grid over the given topology.
    pub fn dedicated(topology: GridTopology) -> Self {
        GridBuilder::new(topology).build()
    }

    /// The underlying static topology.
    pub fn topology(&self) -> &GridTopology {
        &self.topology
    }

    /// Convenience: all node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.topology.node_ids()
    }

    /// Convenience: node spec lookup.
    pub fn node(&self, id: NodeId) -> Option<&NodeSpec> {
        self.topology.node(id)
    }

    /// External CPU load on `node` at `t` (1.0 when the node is down).
    pub fn cpu_load(&self, node: NodeId, t: SimTime) -> f64 {
        if !self.is_up(node, t) {
            return 1.0;
        }
        match self.node_loads.get(node.index()) {
            Some(m) => m.load_at(t),
            None => 0.0,
        }
    }

    /// CPU availability of `node` at `t` in `[0, 1]` (0 when down).
    pub fn availability(&self, node: NodeId, t: SimTime) -> f64 {
        if !self.is_up(node, t) {
            0.0
        } else {
            1.0 - self.cpu_load(node, t)
        }
    }

    /// Is the node up (not revoked) at `t`?
    pub fn is_up(&self, node: NodeId, t: SimTime) -> bool {
        self.topology.node(node).is_some() && self.faults.is_up(node, t)
    }

    /// Effective processing speed (work units per second) of `node` at `t`.
    pub fn effective_speed(&self, node: NodeId, t: SimTime) -> f64 {
        match self.topology.node(node) {
            Some(spec) => spec.base_speed * self.availability(node, t),
            None => 0.0,
        }
    }

    /// The fault plan in force.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Execute `work` units on `node` starting at `start`, integrating the
    /// node's availability over time.
    ///
    /// Returns the completion time, or `None` when the work cannot finish
    /// within `horizon` seconds of simulated time (e.g. the node is revoked
    /// and never recovers) — the caller treats that as a lost task.
    pub fn execute(&self, node: NodeId, work: f64, start: SimTime) -> Option<SimTime> {
        self.execute_within(node, work, start, 1e7)
    }

    /// [`Grid::execute`] with an explicit horizon (seconds of simulated time
    /// after `start`).
    pub fn execute_within(
        &self,
        node: NodeId,
        work: f64,
        start: SimTime,
        horizon_s: f64,
    ) -> Option<SimTime> {
        let spec = self.topology.node(node)?;
        if work <= 0.0 {
            return Some(start);
        }
        let mut remaining = work;
        let mut t = start;
        let deadline = start + SimTime::new(horizon_s);
        while remaining > 0.0 {
            if t >= deadline {
                return None;
            }
            let avail = self.availability(node, t);
            if avail <= 1e-9 {
                // The node is down: skip to its next fault transition.  A node
                // with no future transition never recovers, so the work is lost.
                let next = match self.faults.next_transition(node, t) {
                    Some(ev) => ev.time,
                    None => return None,
                };
                t = next.max(t + SimTime::new(1e-6)).min(deadline);
                continue;
            }
            let speed = spec.base_speed * avail;
            let needed = remaining / speed;
            let dt = needed.min(self.quantum_s);
            remaining -= speed * dt;
            t += SimTime::new(dt);
            if remaining <= 1e-12 {
                return Some(t);
            }
        }
        Some(t)
    }

    /// Background load on the link between two nodes at `t`.
    fn link_load(&self, a: NodeId, b: NodeId, t: SimTime) -> f64 {
        let (sa, sb) = match (self.topology.node(a), self.topology.node(b)) {
            (Some(na), Some(nb)) => (na.site.index(), nb.site.index()),
            _ => return 0.0,
        };
        let key = if sa <= sb { (sa, sb) } else { (sb, sa) };
        match self.link_loads.get(&key) {
            Some(m) => m.load_at(t),
            None => self.default_link_load.load_at(t),
        }
    }

    /// Fraction of nominal bandwidth available between two nodes at `t`.
    pub fn bandwidth_availability(&self, a: NodeId, b: NodeId, t: SimTime) -> f64 {
        1.0 - self.link_load(a, b, t)
    }

    /// Estimate a transfer of `bytes` from `a` to `b` starting at `t`.
    /// Transfers to the same node are free.  Returns `None` for unknown nodes.
    pub fn transfer(
        &self,
        a: NodeId,
        b: NodeId,
        bytes: u64,
        t: SimTime,
    ) -> Option<TransferEstimate> {
        if a == b {
            return Some(TransferEstimate {
                duration: SimTime::ZERO,
                effective_bandwidth_mib_s: f64::INFINITY,
            });
        }
        let link = self.topology.link_between(a, b)?;
        let avail = self.bandwidth_availability(a, b, t).clamp(1e-3, 1.0);
        let duration = SimTime::new(link.transfer_time(bytes, avail));
        Some(TransferEstimate {
            duration,
            effective_bandwidth_mib_s: link.bandwidth_mib_s * avail,
        })
    }
}

/// Builder assembling a [`Grid`] from a topology, load models and a fault plan.
pub struct GridBuilder {
    topology: GridTopology,
    node_loads: Vec<Arc<dyn LoadModel>>,
    link_loads: BTreeMap<(usize, usize), Arc<dyn LoadModel>>,
    default_link_load: Arc<dyn LoadModel>,
    faults: FaultPlan,
    quantum_s: f64,
}

impl GridBuilder {
    /// Start from a topology; all nodes idle, all links quiet, no faults.
    pub fn new(topology: GridTopology) -> Self {
        let idle: Arc<dyn LoadModel> = Arc::new(ConstantLoad::idle());
        let node_loads = vec![idle.clone(); topology.node_count()];
        GridBuilder {
            topology,
            node_loads,
            link_loads: BTreeMap::new(),
            default_link_load: idle,
            faults: FaultPlan::none(),
            quantum_s: 0.5,
        }
    }

    /// Attach a load model to one node.
    pub fn node_load(mut self, node: NodeId, model: impl LoadModel + 'static) -> Self {
        if node.index() < self.node_loads.len() {
            self.node_loads[node.index()] = Arc::new(model);
        }
        self
    }

    /// Attach a pre-boxed load model to one node (for models chosen at runtime).
    pub fn node_load_arc(mut self, node: NodeId, model: Arc<dyn LoadModel>) -> Self {
        if node.index() < self.node_loads.len() {
            self.node_loads[node.index()] = model;
        }
        self
    }

    /// Attach the same load model to every node.
    pub fn uniform_node_load(mut self, model: impl LoadModel + 'static) -> Self {
        let shared: Arc<dyn LoadModel> = Arc::new(model);
        for slot in &mut self.node_loads {
            *slot = shared.clone();
        }
        self
    }

    /// Generate a per-node load model from the node id (e.g. different seeds).
    pub fn node_loads_with(mut self, f: impl Fn(NodeId) -> Arc<dyn LoadModel>) -> Self {
        for (i, slot) in self.node_loads.iter_mut().enumerate() {
            *slot = f(NodeId(i));
        }
        self
    }

    /// Attach a background-traffic model to the link between two sites.
    pub fn link_load(
        mut self,
        a: crate::site::SiteId,
        b: crate::site::SiteId,
        model: impl LoadModel + 'static,
    ) -> Self {
        let key = if a.index() <= b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        self.link_loads.insert(key, Arc::new(model));
        self
    }

    /// Set the background traffic used on links without an explicit model.
    pub fn default_link_load(mut self, model: impl LoadModel + 'static) -> Self {
        self.default_link_load = Arc::new(model);
        self
    }

    /// Attach a fault plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Override the integration quantum used by [`Grid::execute`] (seconds).
    pub fn quantum(mut self, quantum_s: f64) -> Self {
        self.quantum_s = quantum_s.max(1e-3);
        self
    }

    /// Finish building.
    pub fn build(self) -> Grid {
        Grid {
            topology: self.topology,
            node_loads: self.node_loads,
            link_loads: self.link_loads,
            default_link_load: self.default_link_load,
            faults: self.faults,
            quantum_s: self.quantum_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{ConstantLoad, SpikeLoad};
    use crate::topology::TopologyBuilder;

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    #[test]
    fn dedicated_grid_executes_at_base_speed() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(2, 10.0));
        let done = grid.execute(NodeId(0), 100.0, t(0.0)).unwrap();
        assert!((done.as_secs() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn zero_work_finishes_immediately() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(1, 10.0));
        assert_eq!(grid.execute(NodeId(0), 0.0, t(3.0)).unwrap(), t(3.0));
    }

    #[test]
    fn unknown_node_returns_none() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(1, 10.0));
        assert!(grid.execute(NodeId(5), 1.0, t(0.0)).is_none());
    }

    #[test]
    fn constant_load_halves_effective_speed() {
        let topo = TopologyBuilder::uniform_cluster(1, 10.0);
        let grid = GridBuilder::new(topo)
            .uniform_node_load(ConstantLoad::new(0.5))
            .build();
        let done = grid.execute(NodeId(0), 100.0, t(0.0)).unwrap();
        assert!((done.as_secs() - 20.0).abs() < 1e-6);
        assert!((grid.effective_speed(NodeId(0), t(0.0)) - 5.0).abs() < 1e-9);
        assert!((grid.cpu_load(NodeId(0), t(0.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spike_during_execution_slows_the_task_down() {
        let topo = TopologyBuilder::uniform_cluster(1, 10.0);
        // Spike of 90 % load between t=5 and t=15.
        let grid = GridBuilder::new(topo)
            .uniform_node_load(SpikeLoad::new(0.0, 0.9, t(5.0), t(15.0)))
            .quantum(0.1)
            .build();
        // 100 work units: 5 s at full speed does 50 units, then 10 s at 10 %
        // speed does 10 units, then the remaining 40 at full speed = 4 s.
        let done = grid.execute(NodeId(0), 100.0, t(0.0)).unwrap();
        assert!(
            (done.as_secs() - 19.0).abs() < 0.2,
            "got {}",
            done.as_secs()
        );
    }

    #[test]
    fn task_started_after_spike_is_unaffected() {
        let topo = TopologyBuilder::uniform_cluster(1, 10.0);
        let grid = GridBuilder::new(topo)
            .uniform_node_load(SpikeLoad::new(0.0, 0.9, t(5.0), t(15.0)))
            .build();
        let done = grid.execute(NodeId(0), 100.0, t(20.0)).unwrap();
        assert!((done.as_secs() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn revoked_node_reports_zero_availability_and_stalls() {
        let topo = TopologyBuilder::uniform_cluster(2, 10.0);
        let faults = FaultPlan::none().with_outage(NodeId(0), t(0.0), t(50.0));
        let grid = GridBuilder::new(topo).faults(faults).build();
        assert_eq!(grid.availability(NodeId(0), t(10.0)), 0.0);
        assert!(!grid.is_up(NodeId(0), t(10.0)));
        assert!(grid.is_up(NodeId(1), t(10.0)));
        // Work waits out the outage then completes.
        let done = grid.execute(NodeId(0), 100.0, t(0.0)).unwrap();
        assert!((done.as_secs() - 60.0).abs() < 1e-6);
    }

    #[test]
    fn permanently_dead_node_times_out() {
        let topo = TopologyBuilder::uniform_cluster(1, 10.0);
        // An explicit open-ended revocation: down at t=0, never recovers.
        let faults = FaultPlan::none().revoked_from(NodeId(0), t(0.0));
        let grid = GridBuilder::new(topo).faults(faults).build();
        assert!(grid
            .execute_within(NodeId(0), 10.0, t(0.0), 100.0)
            .is_none());
    }

    #[test]
    fn intra_site_transfer_is_faster_than_inter_site() {
        let topo = TopologyBuilder::multi_site(&[(2, 10.0), (2, 10.0)]);
        let grid = Grid::dedicated(topo);
        let local = grid
            .transfer(NodeId(0), NodeId(1), 10 * 1024 * 1024, t(0.0))
            .unwrap();
        let remote = grid
            .transfer(NodeId(0), NodeId(2), 10 * 1024 * 1024, t(0.0))
            .unwrap();
        assert!(local.duration < remote.duration);
        assert!(local.effective_bandwidth_mib_s > remote.effective_bandwidth_mib_s);
    }

    #[test]
    fn self_transfer_is_free() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(2, 10.0));
        let est = grid
            .transfer(NodeId(0), NodeId(0), 1 << 30, t(0.0))
            .unwrap();
        assert_eq!(est.duration, SimTime::ZERO);
    }

    #[test]
    fn link_background_traffic_reduces_bandwidth() {
        let topo = TopologyBuilder::multi_site(&[(1, 10.0), (1, 10.0)]);
        let s0 = topo.sites()[0].id;
        let s1 = topo.sites()[1].id;
        let quiet = Grid::dedicated(TopologyBuilder::multi_site(&[(1, 10.0), (1, 10.0)]));
        let busy = GridBuilder::new(topo)
            .link_load(s0, s1, ConstantLoad::new(0.75))
            .build();
        let bytes = 50 * 1024 * 1024;
        let tq = quiet.transfer(NodeId(0), NodeId(1), bytes, t(0.0)).unwrap();
        let tb = busy.transfer(NodeId(0), NodeId(1), bytes, t(0.0)).unwrap();
        assert!(tb.duration > tq.duration);
        assert!((busy.bandwidth_availability(NodeId(0), NodeId(1), t(0.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn per_node_loads_differ() {
        let topo = TopologyBuilder::uniform_cluster(3, 10.0);
        let grid = GridBuilder::new(topo)
            .node_load(NodeId(1), ConstantLoad::new(0.8))
            .build();
        assert!(grid.effective_speed(NodeId(0), t(0.0)) > grid.effective_speed(NodeId(1), t(0.0)));
        assert_eq!(grid.cpu_load(NodeId(2), t(0.0)), 0.0);
    }

    #[test]
    fn node_loads_with_generator() {
        let topo = TopologyBuilder::uniform_cluster(4, 10.0);
        let grid = GridBuilder::new(topo)
            .node_loads_with(|id| {
                Arc::new(ConstantLoad::new(0.1 * id.index() as f64)) as Arc<dyn LoadModel>
            })
            .build();
        assert!((grid.cpu_load(NodeId(0), t(0.0)) - 0.0).abs() < 1e-12);
        assert!((grid.cpu_load(NodeId(3), t(0.0)) - 0.3).abs() < 1e-12);
    }
}
