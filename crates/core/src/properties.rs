//! Intrinsic skeleton properties.
//!
//! The paper's central claim is that "by identifying the intrinsic properties
//! of an algorithmic skeleton, which capture its essence and distinguish it
//! from the rest, the GRASP methodology enables its instrumentation and
//! indeed its adaptivity".  This module makes those properties a first-class
//! value: the calibration and adaptation layers consult them rather than
//! hard-coding per-skeleton behaviour, so new skeletons can be added by
//! describing their properties.

use serde::{Deserialize, Serialize};

/// Which structured pattern a job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SkeletonKind {
    /// Independent tasks distributed from a master to workers.
    TaskFarm,
    /// A linear chain of stages each item flows through.
    Pipeline,
    /// A farm whose workers are themselves pipelines (composition).
    FarmOfPipelines,
    /// A pipeline whose stages are internally farmed (composition).
    PipelineOfFarms,
}

impl SkeletonKind {
    /// Short lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SkeletonKind::TaskFarm => "task-farm",
            SkeletonKind::Pipeline => "pipeline",
            SkeletonKind::FarmOfPipelines => "farm-of-pipelines",
            SkeletonKind::PipelineOfFarms => "pipeline-of-farms",
        }
    }
}

/// How work may be redistributed when the skeleton adapts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rebalancing {
    /// Any pending task may be given to any worker (farm-like freedom).
    AnyTaskAnyWorker,
    /// Only whole stages can be moved between nodes (pipeline-like).
    StageRemapping,
}

/// The intrinsic, structural properties of a skeleton instance that GRASP
/// instruments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkeletonProperties {
    /// The pattern.
    pub kind: SkeletonKind,
    /// Whether tasks/items are mutually independent (true for a farm; items
    /// of a pipeline are independent but stages are ordered).
    pub independent_tasks: bool,
    /// Whether results must be delivered in submission order.
    pub ordered_results: bool,
    /// Whether the skeleton carries per-stage state that must move with a
    /// stage when it is remapped.
    pub stateful_stages: bool,
    /// How the adaptation layer may redistribute work.
    pub rebalancing: Rebalancing,
    /// Nominal computation-to-communication ratio of the instantiated
    /// skeleton (dedicated seconds of compute per second of communication on
    /// the reference link); fixed by the programming-phase parameterisation.
    pub comp_comm_ratio: f64,
}

impl SkeletonProperties {
    /// Properties of a task farm with the given computation/communication ratio.
    pub fn task_farm(comp_comm_ratio: f64) -> Self {
        SkeletonProperties {
            kind: SkeletonKind::TaskFarm,
            independent_tasks: true,
            ordered_results: false,
            stateful_stages: false,
            rebalancing: Rebalancing::AnyTaskAnyWorker,
            comp_comm_ratio: comp_comm_ratio.max(0.0),
        }
    }

    /// Properties of a pipeline with the given computation/communication ratio.
    pub fn pipeline(comp_comm_ratio: f64, stateful_stages: bool) -> Self {
        SkeletonProperties {
            kind: SkeletonKind::Pipeline,
            independent_tasks: false,
            ordered_results: true,
            stateful_stages,
            rebalancing: Rebalancing::StageRemapping,
            comp_comm_ratio: comp_comm_ratio.max(0.0),
        }
    }

    /// Compose the properties of a farm whose tasks are sub-skeletons
    /// (farm-of-pipelines and deeper nestings).
    ///
    /// The algebra propagates bottom-up from the children, each weighted by
    /// its share of the total work:
    /// * the **outer** structure dictates rebalancing — child instances are
    ///   mutually independent, so any instance may go to any worker
    ///   ([`Rebalancing::AnyTaskAnyWorker`]), whatever the children are;
    /// * results are unordered (a farm never promises ordering);
    /// * statefulness is inherited if *any* child carries stage state;
    /// * the computation/communication ratio is the work-weighted mean of
    ///   the children's ratios (the calibration rules see the blend the
    ///   master actually dispatches).
    ///
    /// A composition of plain farms collapses back to
    /// [`SkeletonKind::TaskFarm`]; anything else is a
    /// [`SkeletonKind::FarmOfPipelines`].
    pub fn compose_farm(children: &[(SkeletonProperties, f64)]) -> Self {
        let kind = if children
            .iter()
            .all(|(p, _)| p.kind == SkeletonKind::TaskFarm)
        {
            SkeletonKind::TaskFarm
        } else {
            SkeletonKind::FarmOfPipelines
        };
        SkeletonProperties {
            kind,
            independent_tasks: true,
            ordered_results: false,
            stateful_stages: children.iter().any(|(p, _)| p.stateful_stages),
            rebalancing: Rebalancing::AnyTaskAnyWorker,
            comp_comm_ratio: weighted_ratio(children),
        }
    }

    /// Compose the properties of a pipeline whose stages are sub-skeletons
    /// (pipeline-of-farms: stages may be internally farmed).
    ///
    /// The outer structure again dictates the rules: stages are ordered and
    /// may carry state, so adaptation is restricted to
    /// [`Rebalancing::StageRemapping`] even when a stage is internally a
    /// farm — the farm freedom applies *within* the stage, not across the
    /// chain.  The ratio is the work-weighted mean over the stages.  A
    /// composition with no farmed stage collapses back to
    /// [`SkeletonKind::Pipeline`].
    pub fn compose_pipeline(stages: &[(SkeletonProperties, f64)]) -> Self {
        let kind = if stages.iter().all(|(p, _)| p.kind == SkeletonKind::Pipeline) {
            SkeletonKind::Pipeline
        } else {
            SkeletonKind::PipelineOfFarms
        };
        SkeletonProperties {
            kind,
            independent_tasks: false,
            ordered_results: true,
            stateful_stages: stages.iter().any(|(p, _)| p.stateful_stages),
            rebalancing: Rebalancing::StageRemapping,
            comp_comm_ratio: weighted_ratio(stages),
        }
    }

    /// Is the workload dominated by communication (ratio below 1)?
    pub fn communication_bound(&self) -> bool {
        self.comp_comm_ratio < 1.0
    }

    /// A granularity hint used by adaptive chunking: coarse-grained jobs can
    /// be dispatched in larger chunks without hurting balance, fine-grained
    /// jobs should be dispatched in small chunks to amortise per-message cost
    /// only as far as necessary.
    pub fn suggested_chunking(&self, workers: usize) -> usize {
        if workers == 0 {
            return 1;
        }
        if self.comp_comm_ratio >= 10.0 {
            1
        } else if self.comp_comm_ratio >= 1.0 {
            2
        } else {
            // Communication-bound: batch aggressively.
            (4.0 / self.comp_comm_ratio.max(0.05)).ceil() as usize
        }
    }
}

/// Work-weighted mean of composed ratios; falls back to the unweighted mean
/// when the weights carry no information (all-zero work), and to a neutral
/// 1.0 for an empty composition.
fn weighted_ratio(parts: &[(SkeletonProperties, f64)]) -> f64 {
    if parts.is_empty() {
        return 1.0;
    }
    let total: f64 = parts.iter().map(|(_, w)| w.max(0.0)).sum();
    if total > 0.0 {
        parts
            .iter()
            .map(|(p, w)| p.comp_comm_ratio * w.max(0.0))
            .sum::<f64>()
            / total
    } else {
        parts.iter().map(|(p, _)| p.comp_comm_ratio).sum::<f64>() / parts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(SkeletonKind::TaskFarm.name(), "task-farm");
        assert_eq!(SkeletonKind::Pipeline.name(), "pipeline");
        assert_eq!(SkeletonKind::FarmOfPipelines.name(), "farm-of-pipelines");
        assert_eq!(SkeletonKind::PipelineOfFarms.name(), "pipeline-of-farms");
    }

    #[test]
    fn farm_properties_allow_free_rebalancing() {
        let p = SkeletonProperties::task_farm(5.0);
        assert!(p.independent_tasks);
        assert!(!p.ordered_results);
        assert_eq!(p.rebalancing, Rebalancing::AnyTaskAnyWorker);
        assert!(!p.communication_bound());
    }

    #[test]
    fn pipeline_properties_require_stage_remapping() {
        let p = SkeletonProperties::pipeline(0.5, true);
        assert!(!p.independent_tasks);
        assert!(p.ordered_results);
        assert!(p.stateful_stages);
        assert_eq!(p.rebalancing, Rebalancing::StageRemapping);
        assert!(p.communication_bound());
    }

    #[test]
    fn chunking_grows_as_ratio_shrinks() {
        let coarse = SkeletonProperties::task_farm(50.0).suggested_chunking(8);
        let medium = SkeletonProperties::task_farm(2.0).suggested_chunking(8);
        let fine = SkeletonProperties::task_farm(0.1).suggested_chunking(8);
        assert!(coarse <= medium && medium <= fine);
        assert_eq!(coarse, 1);
        assert!(fine >= 4);
        assert_eq!(SkeletonProperties::task_farm(1.0).suggested_chunking(0), 1);
    }

    #[test]
    fn negative_ratio_is_clamped() {
        assert_eq!(SkeletonProperties::task_farm(-3.0).comp_comm_ratio, 0.0);
    }

    #[test]
    fn farm_composition_keeps_outer_farm_freedom() {
        let pipe = SkeletonProperties::pipeline(0.5, true);
        let farm = SkeletonProperties::task_farm(8.0);
        let composed = SkeletonProperties::compose_farm(&[(pipe, 30.0), (farm, 10.0)]);
        assert_eq!(composed.kind, SkeletonKind::FarmOfPipelines);
        assert!(composed.independent_tasks);
        assert!(!composed.ordered_results);
        assert!(
            composed.stateful_stages,
            "inherited from the pipeline child"
        );
        assert_eq!(composed.rebalancing, Rebalancing::AnyTaskAnyWorker);
        // Work-weighted: (0.5*30 + 8*10) / 40 = 2.375.
        assert!((composed.comp_comm_ratio - 2.375).abs() < 1e-12);
    }

    #[test]
    fn pipeline_composition_keeps_stage_remapping() {
        let plain = SkeletonProperties::pipeline(2.0, false);
        let farmed = SkeletonProperties::task_farm(4.0);
        let composed = SkeletonProperties::compose_pipeline(&[(plain, 10.0), (farmed, 30.0)]);
        assert_eq!(composed.kind, SkeletonKind::PipelineOfFarms);
        assert!(!composed.independent_tasks);
        assert!(composed.ordered_results);
        assert_eq!(composed.rebalancing, Rebalancing::StageRemapping);
        assert!((composed.comp_comm_ratio - 3.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_compositions_collapse_and_stay_finite() {
        let farms = [
            (SkeletonProperties::task_farm(1.0), 0.0),
            (SkeletonProperties::task_farm(3.0), 0.0),
        ];
        let composed = SkeletonProperties::compose_farm(&farms);
        assert_eq!(composed.kind, SkeletonKind::TaskFarm);
        assert!(
            (composed.comp_comm_ratio - 2.0).abs() < 1e-12,
            "unweighted fallback"
        );
        assert_eq!(SkeletonProperties::compose_farm(&[]).comp_comm_ratio, 1.0);
        let pipes = [(SkeletonProperties::pipeline(1.5, false), 5.0)];
        assert_eq!(
            SkeletonProperties::compose_pipeline(&pipes).kind,
            SkeletonKind::Pipeline
        );
    }
}
