//! The adaptive task farm skeleton.
//!
//! GRASP's first skeleton (reference \[6\] of the paper: "Self-adaptive
//! skeletal task farm for computational grids").  A master holds a bag of
//! independent tasks; workers request chunks, compute them and return the
//! results.  The GRASP instrumentation wraps the classic farm with:
//!
//! * an initial **calibration** (Algorithm 1) that consumes the first few
//!   tasks to rank nodes and select the fittest subset;
//! * **adaptive chunking** — chunk sizes weighted by each node's calibrated
//!   relative speed;
//! * an execution **monitor** (Algorithm 2) that compares recent per-task
//!   times against the performance threshold *Z* and reacts by demoting
//!   individual nodes, requeueing work from revoked nodes, or feeding back
//!   into calibration (re-ranking the whole pool);
//! * a complete audit trail ([`crate::adaptation::AdaptationLog`],
//!   throughput timeline, per-node accounting) for the experiments.
//!
//! The farm runs against the simulated [`gridsim::Grid`]; a real-thread
//! shared-memory farm with the same surface lives in `grasp-exec`.

use crate::adaptation::AdaptationLog;
use crate::calibration::{CalibrationMode, CalibrationReport, Calibrator};
use crate::config::GraspConfig;
use crate::engine::{AdaptationDirective, AdaptationEngine};
use crate::error::GraspError;
use crate::metrics::ThroughputTimeline;
use crate::properties::SkeletonProperties;
use crate::task::{total_work, TaskOutcome, TaskSpec};
use gridmon::MonitorRegistry;
use gridsim::{EventQueue, Grid, NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Horizon (simulated seconds) after which an in-flight chunk on a node is
/// declared lost instead of waiting for the node to recover.
const CHUNK_HORIZON_S: f64 = 1e6;

/// The adaptive task-farm skeleton.
#[derive(Debug, Clone)]
pub struct TaskFarm {
    config: GraspConfig,
    properties: SkeletonProperties,
}

/// Everything a farm run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FarmOutcome {
    /// Virtual time from job start to the last result arriving at the master.
    pub makespan: SimTime,
    /// Every completed task (calibration samples included).
    pub task_outcomes: Vec<TaskOutcome>,
    /// The initial calibration report.
    pub calibration: CalibrationReport,
    /// Adaptations taken during execution.
    pub adaptation: AdaptationLog,
    /// Completions over time.
    pub timeline: ThroughputTimeline,
    /// Tasks completed per node.
    pub per_node_tasks: BTreeMap<NodeId, usize>,
    /// How many monitoring evaluations the monitor node performed.
    pub monitor_evaluations: usize,
    /// Nodes active (eligible for dispatch) when the job finished.
    pub final_active_nodes: Vec<NodeId>,
}

impl FarmOutcome {
    /// Number of completed tasks.
    pub fn completed_tasks(&self) -> usize {
        self.task_outcomes.len()
    }

    /// Fraction of tasks executed by each node.
    pub fn node_shares(&self) -> BTreeMap<NodeId, f64> {
        let total = self.completed_tasks().max(1) as f64;
        self.per_node_tasks
            .iter()
            .map(|(&n, &c)| (n, c as f64 / total))
            .collect()
    }

    /// Mean per-task latency (dispatch to completion) in seconds.
    pub fn mean_task_latency(&self) -> f64 {
        let durs: Vec<f64> = self
            .task_outcomes
            .iter()
            .map(|o| o.duration().as_secs())
            .collect();
        gridstats::mean(&durs).unwrap_or(0.0)
    }

    /// Effective throughput over the whole run (tasks per virtual second).
    pub fn throughput(&self) -> f64 {
        if self.makespan.as_secs() <= 0.0 {
            0.0
        } else {
            self.completed_tasks() as f64 / self.makespan.as_secs()
        }
    }
}

/// Internal event: a dispatched chunk finished (or was found lost).
struct ChunkCompletion {
    node: NodeId,
    outcomes: Vec<TaskOutcome>,
    /// Tasks that could not be completed because the node died.
    lost: Vec<TaskSpec>,
}

impl TaskFarm {
    /// A farm with the given configuration; the computation/communication
    /// ratio of the properties is derived from the task list at run time.
    pub fn new(config: GraspConfig) -> Self {
        TaskFarm {
            config,
            properties: SkeletonProperties::task_farm(1.0),
        }
    }

    /// Override the skeleton properties (used by compositions).
    pub fn with_properties(mut self, properties: SkeletonProperties) -> Self {
        self.properties = properties;
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &GraspConfig {
        &self.config
    }

    /// The skeleton's intrinsic properties.
    pub fn properties(&self) -> &SkeletonProperties {
        &self.properties
    }

    /// Run the farm over `tasks` on `grid`, using every node of the grid as
    /// the candidate pool.
    pub fn run(&self, grid: &Grid, tasks: &[TaskSpec]) -> Result<FarmOutcome, GraspError> {
        self.run_on(grid, &grid.node_ids(), tasks)
    }

    /// Run the farm over `tasks` on an explicit candidate node pool.
    pub fn run_on(
        &self,
        grid: &Grid,
        candidates: &[NodeId],
        tasks: &[TaskSpec],
    ) -> Result<FarmOutcome, GraspError> {
        self.config.validate()?;
        if tasks.is_empty() {
            return Err(GraspError::EmptyWorkload);
        }
        if candidates.is_empty() {
            return Err(GraspError::NoUsableNodes);
        }
        let master = self.config.master.unwrap_or(candidates[0]);
        let mut registry = MonitorRegistry::new(master, 256);
        let calibrator = Calibrator::new(self.config.calibration);
        // Mirrors the calibrator's unit decision: per-work-unit times when
        // the job has real work, raw seconds for a pure-transfer job.
        let job_has_work = tasks.iter().any(|t| t.work > 0.0);

        // --------------------------- Calibration ---------------------------
        let calibration = calibrator.calibrate(
            grid,
            &mut registry,
            candidates,
            tasks,
            master,
            SimTime::ZERO,
        )?;
        let mut pending: VecDeque<TaskSpec> = tasks[calibration.tasks_consumed.min(tasks.len())..]
            .iter()
            .copied()
            .collect();
        // The execution phase's job total: StaticBlock precomputes its equal
        // per-worker block from this instead of re-splitting the remainder.
        let execution_total = pending.len();

        let exec_cfg = &self.config.execution;
        // The calibrate→monitor→act loop lives in the backend-neutral
        // engine; this farm is a consumer: it feeds observations in, applies
        // the directives that come out, and reports what it did.
        let mut engine = AdaptationEngine::for_executors(
            exec_cfg,
            &calibration.chosen_reference_times(),
            calibration.duration,
        );

        let mut active: Vec<NodeId> = calibration.chosen.clone();
        let mut weights: BTreeMap<NodeId, f64> = calibration
            .table
            .iter()
            .map(|c| (c.node, c.weight.max(0.0)))
            .collect();

        // ----------------------------- Execution ----------------------------
        let mut outcomes: Vec<TaskOutcome> = calibration.outcomes.clone();
        let mut per_node: BTreeMap<NodeId, usize> = BTreeMap::new();
        for o in &outcomes {
            *per_node.entry(o.node).or_insert(0) += 1;
        }
        let mut timeline = ThroughputTimeline::new(exec_cfg.monitor_interval_s);
        for o in &outcomes {
            timeline.record(o.completed);
        }
        // Dispatching is held back until the initial calibration barrier has
        // passed; recalibrations are barrier-free (see below).
        let recalibrating_until = calibration.duration;
        let mut makespan = calibration.duration;

        let mut events: EventQueue<ChunkCompletion> = EventQueue::new();
        let mut busy: BTreeMap<NodeId, bool> = BTreeMap::new();

        // Prime every chosen node with an initial chunk.
        let start = calibration.duration;
        let initial_nodes = active.clone();
        for node in initial_nodes {
            Self::dispatch_to(
                grid,
                &mut pending,
                &mut events,
                &mut busy,
                &self.config,
                execution_total,
                &weights,
                &active,
                node,
                master,
                start,
            );
        }

        // If nothing could be dispatched (e.g. calibration consumed all
        // tasks) the job is already done.
        while let Some(ev) = events.pop() {
            let now = ev.time;
            let completion = ev.payload;
            busy.insert(completion.node, false);

            if !completion.lost.is_empty() {
                // The node died mid-chunk: requeue its work and drop the node.
                for spec in completion.lost.iter().rev() {
                    pending.push_front(*spec);
                }
                active.retain(|&n| n != completion.node);
                engine.note_node_lost(now, completion.node, completion.lost.len());
            }

            for o in &completion.outcomes {
                outcomes.push(*o);
                *per_node.entry(o.node).or_insert(0) += 1;
                timeline.record(o.completed);
                makespan = makespan.max(o.completed);
                // The monitor's unit matches the job's (see calibration):
                // per-work-unit when the job has real work — zero-work tasks
                // carry no signal in that unit and would spuriously demote
                // their node — and raw seconds for an all-zero-work job,
                // where normalized_time() already returns raw durations.
                if o.work > 0.0 || !job_has_work {
                    engine.observe(o.node, o.normalized_time());
                }
                registry.observe(grid, o.node, o.completed);
            }

            // ----------------------- Algorithm 2 -----------------------
            // The engine runs the monitor→threshold loop and emits typed
            // directives; the farm applies them against its active set.
            if let Some(poll) = engine.poll(now) {
                let verdict = &poll.verdict;
                for directive in &poll.directives {
                    match directive {
                        // Demote individually pathological nodes first (the
                        // engine emits demotions before the recalibrate
                        // directive).  Gating against the shrinking active
                        // set is the farm's business: the engine does not
                        // know which nodes are still dispatchable.
                        AdaptationDirective::DemoteExecutor {
                            executor: slow,
                            recent_mean,
                        } if active.len() > exec_cfg.min_active_nodes && active.contains(slow) => {
                            active.retain(|n| n != slow);
                            engine.note_demoted(now, *slow, *recent_mean, verdict);
                        }
                        // Whole-pool degradation: feed back into calibration.
                        //
                        // The initial calibration runs Algorithm 1 verbatim
                        // (sample tasks on every node).  Recalibration re-uses
                        // the monitoring data instead of re-sampling: the pool is
                        // re-ranked from the nodes' base speeds scaled by their
                        // currently observed availability, the chunking weights
                        // and the chosen set are recomputed, and the threshold Z
                        // is re-based on the execution times the monitor just
                        // collected — so the feedback itself costs the job no
                        // extra work and imposes no barrier.
                        AdaptationDirective::Recalibrate if !pending.is_empty() => {
                            // (node, effective speed, bandwidth availability)
                            let mut ranked: Vec<(NodeId, f64, f64)> = candidates
                                .iter()
                                .copied()
                                .filter(|&n| grid.is_up(n, now))
                                .map(|n| {
                                    let obs = registry.observe(grid, n, now);
                                    let base = grid.node(n).map(|s| s.base_speed).unwrap_or(1.0);
                                    (
                                        n,
                                        base * (1.0 - obs.cpu_load).max(0.02),
                                        obs.bandwidth_availability.clamp(0.02, 1.0),
                                    )
                                })
                                .collect();
                            ranked.sort_by(|a, b| {
                                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
                            });
                            if !ranked.is_empty() {
                                let frac =
                                    self.config.calibration.selection_fraction.clamp(1e-6, 1.0);
                                let want = ((ranked.len() as f64) * frac).ceil() as usize;
                                let count = want
                                    .max(self.config.calibration.min_nodes.max(1))
                                    .max(exec_cfg.min_active_nodes)
                                    .min(ranked.len());
                                active = ranked[..count].iter().map(|(n, _, _)| *n).collect();
                                let chosen_mean =
                                    ranked[..count].iter().map(|(_, s, _)| *s).sum::<f64>()
                                        / count as f64;
                                weights = ranked
                                    .iter()
                                    .map(|(n, s, _)| {
                                        let w = if active.contains(n) && chosen_mean > 0.0 {
                                            s / chosen_mean
                                        } else {
                                            0.0
                                        };
                                        (*n, w)
                                    })
                                    .collect();
                                // Re-base Z on what the retained nodes are *expected*
                                // to achieve under the observed conditions.  The
                                // verdict's window means straddle the degradation
                                // onset and would under-estimate the new steady
                                // state, re-triggering a spurious second
                                // recalibration.  Expected time = degraded compute
                                // (1/effective-speed, the calibration table's
                                // seconds-per-work-unit unit) plus the node's
                                // calibrated communication overhead scaled by its
                                // currently observed bandwidth availability —
                                // dropping either term would under-shoot Z on
                                // communication-heavy workloads or congested links
                                // and loop instead.
                                let retained_expected: Vec<f64> = ranked[..count]
                                    .iter()
                                    .map(|(n, s, bw)| {
                                        // Comm at nominal bandwidth = calibrated
                                        // total − calibrated compute, rescaled to
                                        // nominal bandwidth.  What "calibrated"
                                        // means depends on the mode: TimeOnly
                                        // rows hold raw totals at the degraded
                                        // speed and observed bandwidth, while the
                                        // statistical modes have already removed
                                        // the load (and, for Multivariate, the
                                        // bandwidth) effect from adjusted_time.
                                        let nominal_comm = calibration
                                            .table
                                            .iter()
                                            .find(|c| c.node == *n)
                                            .map(|c| {
                                                let base = grid
                                                    .node(*n)
                                                    .map(|sp| sp.base_speed)
                                                    .unwrap_or(1.0)
                                                    .max(1e-9);
                                                let (compute_ref, bw_scale) = match calibration.mode
                                                {
                                                    CalibrationMode::TimeOnly => (
                                                        1.0 / (base * (1.0 - c.cpu_load).max(0.02)),
                                                        c.bandwidth_availability.clamp(0.02, 1.0),
                                                    ),
                                                    CalibrationMode::Univariate => (
                                                        1.0 / base,
                                                        c.bandwidth_availability.clamp(0.02, 1.0),
                                                    ),
                                                    CalibrationMode::Multivariate => {
                                                        (1.0 / base, 1.0)
                                                    }
                                                };
                                                (c.adjusted_time - compute_ref).max(0.0) * bw_scale
                                            })
                                            .filter(|c| c.is_finite())
                                            .unwrap_or(0.0);
                                        1.0 / s.max(1e-9) + nominal_comm / bw
                                    })
                                    .collect();
                                engine.apply_recalibration(
                                    now,
                                    active.clone(),
                                    &retained_expected,
                                    verdict,
                                );
                            }
                        }
                        // A recalibrate directive with no pending work left:
                        // nothing to steer, let the job drain.
                        _ => {}
                    }
                }
            }

            // Keep every idle active node fed (unless a recalibration barrier
            // is still in progress).
            if now >= recalibrating_until {
                let idle: Vec<NodeId> = active
                    .iter()
                    .copied()
                    .filter(|n| !busy.get(n).copied().unwrap_or(false))
                    .collect();
                for node in idle {
                    if pending.is_empty() {
                        break;
                    }
                    Self::dispatch_to(
                        grid,
                        &mut pending,
                        &mut events,
                        &mut busy,
                        &self.config,
                        execution_total,
                        &weights,
                        &active,
                        node,
                        master,
                        now,
                    );
                }
            } else if events.is_empty() {
                // Everything is waiting on the recalibration barrier: dispatch
                // from the barrier time.
                let at = recalibrating_until;
                let nodes = active.clone();
                for node in nodes {
                    if pending.is_empty() {
                        break;
                    }
                    Self::dispatch_to(
                        grid,
                        &mut pending,
                        &mut events,
                        &mut busy,
                        &self.config,
                        execution_total,
                        &weights,
                        &active,
                        node,
                        master,
                        at,
                    );
                }
            }

            // Starvation guard: work remains but nothing is in flight.
            if events.is_empty() && !pending.is_empty() {
                let mut at = now;
                let mut usable: Vec<NodeId> = candidates
                    .iter()
                    .copied()
                    .filter(|&n| grid.is_up(n, at))
                    .collect();
                if usable.is_empty() {
                    // Every candidate is down right now.  Resume dispatching
                    // at the earliest future instant some candidate is back
                    // up, if any.  Node state only changes at fault events,
                    // so scanning the scheduled events in time order and
                    // probing `is_up` at each is exhaustive — and unlike
                    // "the node's next transition is a Recover" it is not
                    // fooled by overlapping outages, where a down node's
                    // next event can be another Revoke with the real
                    // recovery behind it.
                    let next_up = grid
                        .faults()
                        .events()
                        .iter()
                        .filter(|e| e.time > at && candidates.contains(&e.node))
                        .find(|e| grid.is_up(e.node, e.time))
                        .map(|e| e.time);
                    if let Some(t) = next_up {
                        at = t;
                        usable = candidates
                            .iter()
                            .copied()
                            .filter(|&n| grid.is_up(n, at))
                            .collect();
                    }
                }
                if usable.is_empty() {
                    return Err(GraspError::TaskLost {
                        task: pending.front().map(|t| t.id).unwrap_or(0),
                    });
                }
                // Fall back to every node that is (or has come back) up.
                active = usable;
                let nodes = active.clone();
                for node in nodes {
                    if pending.is_empty() {
                        break;
                    }
                    Self::dispatch_to(
                        grid,
                        &mut pending,
                        &mut events,
                        &mut busy,
                        &self.config,
                        execution_total,
                        &weights,
                        &active,
                        node,
                        master,
                        at,
                    );
                }
                if events.is_empty() {
                    return Err(GraspError::TaskLost {
                        task: pending.front().map(|t| t.id).unwrap_or(0),
                    });
                }
            }
        }

        let monitor_evaluations = engine.evaluations();
        Ok(FarmOutcome {
            makespan,
            task_outcomes: outcomes,
            calibration,
            adaptation: engine.into_log(),
            timeline,
            per_node_tasks: per_node,
            monitor_evaluations,
            final_active_nodes: active,
        })
    }

    /// Hand one chunk of pending tasks to `node`, scheduling its completion
    /// event.  Does nothing when there is no pending work, or when the node
    /// is currently revoked — the master observes revocation, so handing a
    /// chunk to a known-down node (which would sit idle for the whole
    /// outage) is a dispatch bug, not a fault-tolerance feature.  A node
    /// that recovers later is fed again by the idle-refill loop.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_to(
        grid: &Grid,
        pending: &mut VecDeque<TaskSpec>,
        events: &mut EventQueue<ChunkCompletion>,
        busy: &mut BTreeMap<NodeId, bool>,
        config: &GraspConfig,
        total: usize,
        weights: &BTreeMap<NodeId, f64>,
        active: &[NodeId],
        node: NodeId,
        master: NodeId,
        now: SimTime,
    ) {
        if pending.is_empty() || !grid.is_up(node, now) {
            return;
        }
        let weight = weights.get(&node).copied().unwrap_or(1.0);
        let chunk_size = config.scheduler.next_chunk_with_total(
            pending.len(),
            total,
            active.len().max(1),
            if weight > 0.0 { weight } else { 1.0 },
        );
        if chunk_size == 0 {
            return;
        }
        let chunk: Vec<TaskSpec> = (0..chunk_size)
            .filter_map(|_| pending.pop_front())
            .collect();

        let mut t = now;
        let mut completed = Vec::with_capacity(chunk.len());
        let mut lost = Vec::new();
        for (i, spec) in chunk.iter().enumerate() {
            let dispatched = t;
            let after_in = match grid.transfer(master, node, spec.input_bytes, t) {
                Some(est) => t + est.duration,
                None => t,
            };
            match grid.execute_within(node, spec.work, after_in, CHUNK_HORIZON_S) {
                Some(after_compute) => {
                    let done = match grid.transfer(node, master, spec.output_bytes, after_compute) {
                        Some(est) => after_compute + est.duration,
                        None => after_compute,
                    };
                    completed.push(TaskOutcome {
                        task: spec.id,
                        node,
                        work: spec.work,
                        dispatched,
                        completed: done,
                        during_calibration: false,
                    });
                    t = done;
                }
                None => {
                    // Node died: this task and the rest of the chunk are lost.
                    lost.extend(chunk[i..].iter().copied());
                    break;
                }
            }
        }
        busy.insert(node, true);
        // The completion event fires when the node finished its whole chunk.
        // A lost chunk is reported when the master *observes* the revocation
        // — the node's next Revoke transition — never at the dispatch time
        // itself: re-reporting a loss at `now` would let the farm redispatch
        // to the same still-up-at-`now` node in the same virtual instant and
        // livelock.  The epsilon floor keeps time advancing even when the
        // fault schedule yields no usable transition.
        let fire_at = if lost.is_empty() {
            t
        } else {
            grid.faults()
                .next_transition(node, now)
                .filter(|e| matches!(e.kind, gridsim::FaultKind::Revoke))
                .map(|e| e.time)
                .unwrap_or(t)
                .max(now + SimTime::new(1e-6))
        };
        events.schedule_at(
            fire_at,
            ChunkCompletion {
                node,
                outcomes: completed,
                lost,
            },
        );
    }

    /// Time a single (fault-free, idle) reference node would need for the
    /// whole task list — the sequential baseline used for speedup numbers.
    pub fn sequential_reference(grid: &Grid, node: NodeId, tasks: &[TaskSpec]) -> Option<f64> {
        let spec = grid.node(node)?;
        Some(total_work(tasks) / spec.base_speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulePolicy;
    use crate::threshold::ThresholdPolicy;
    use gridsim::{ConstantLoad, FaultPlan, GridBuilder, LinkSpec, SpikeLoad, TopologyBuilder};

    fn uniform_tasks(n: usize) -> Vec<TaskSpec> {
        TaskSpec::uniform(n, 50.0, 32 * 1024, 32 * 1024)
    }

    fn het_grid(nodes: usize) -> Grid {
        Grid::dedicated(TopologyBuilder::heterogeneous_cluster(nodes, 20.0, 80.0, 7))
    }

    #[test]
    fn all_tasks_complete_exactly_once_on_idle_grid() {
        let grid = het_grid(8);
        let tasks = uniform_tasks(120);
        let farm = TaskFarm::new(GraspConfig::default());
        let out = farm.run(&grid, &tasks).unwrap();
        assert_eq!(out.completed_tasks(), 120);
        let mut ids: Vec<usize> = out.task_outcomes.iter().map(|o| o.task).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 120, "every task exactly once");
        assert!(out.makespan.as_secs() > 0.0);
        assert!(out.throughput() > 0.0);
        assert!(out.mean_task_latency() > 0.0);
        let share_sum: f64 = out.node_shares().values().sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_is_rejected() {
        let grid = het_grid(4);
        let farm = TaskFarm::new(GraspConfig::default());
        assert!(matches!(
            farm.run(&grid, &[]),
            Err(GraspError::EmptyWorkload)
        ));
    }

    #[test]
    fn empty_candidate_pool_is_rejected() {
        let grid = het_grid(4);
        let farm = TaskFarm::new(GraspConfig::default());
        assert!(matches!(
            farm.run_on(&grid, &[], &uniform_tasks(10)),
            Err(GraspError::NoUsableNodes)
        ));
    }

    #[test]
    fn farm_beats_single_node() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(8, 40.0));
        let tasks = uniform_tasks(160);
        let farm = TaskFarm::new(GraspConfig::default());
        let out = farm.run(&grid, &tasks).unwrap();
        let seq = TaskFarm::sequential_reference(&grid, NodeId(0), &tasks).unwrap();
        assert!(
            out.makespan.as_secs() < seq / 3.0,
            "8 workers should be much faster than 1: {} vs {}",
            out.makespan.as_secs(),
            seq
        );
    }

    #[test]
    fn adaptive_farm_beats_static_block_under_external_load() {
        // Half the nodes are heavily loaded; the adaptive farm should route
        // work away from them while the static farm suffers the stragglers.
        let topo = TopologyBuilder::uniform_cluster(8, 40.0);
        let node_ids = topo.node_ids();
        let mut builder = GridBuilder::new(topo);
        for &n in &node_ids {
            let load = if n.index() >= 4 { 0.85 } else { 0.05 };
            builder = builder.node_load(n, ConstantLoad::new(load));
        }
        let grid = builder.build();
        let tasks = uniform_tasks(200);

        let adaptive = TaskFarm::new(GraspConfig::default())
            .run(&grid, &tasks)
            .unwrap();
        let static_farm = TaskFarm::new(GraspConfig::static_baseline())
            .run(&grid, &tasks)
            .unwrap();
        assert_eq!(adaptive.completed_tasks(), 200);
        assert_eq!(static_farm.completed_tasks(), 200);
        assert!(
            adaptive.makespan < static_farm.makespan,
            "adaptive {}s vs static {}s",
            adaptive.makespan.as_secs(),
            static_farm.makespan.as_secs()
        );
    }

    #[test]
    fn load_spike_triggers_adaptation() {
        // All nodes quiet except: at t=30 every node in the second half of
        // the pool becomes 95 % loaded.  The monitor must notice and adapt.
        let topo = TopologyBuilder::uniform_cluster(6, 30.0);
        let node_ids = topo.node_ids();
        let mut builder = GridBuilder::new(topo).quantum(0.25);
        for &n in &node_ids {
            if n.index() >= 2 {
                builder = builder.node_load(
                    n,
                    SpikeLoad::new(0.0, 0.95, SimTime::new(30.0), SimTime::new(10_000.0)),
                );
            }
        }
        let grid = builder.build();
        let mut cfg = GraspConfig::default();
        cfg.calibration.selection_fraction = 1.0;
        cfg.execution.monitor_interval_s = 10.0;
        cfg.execution.threshold = ThresholdPolicy::Factor { factor: 1.5 };
        let tasks = TaskSpec::uniform(400, 60.0, 16 * 1024, 16 * 1024);
        let out = TaskFarm::new(cfg).run(&grid, &tasks).unwrap();
        assert_eq!(out.completed_tasks(), 400);
        assert!(
            !out.adaptation.is_empty(),
            "the spike should have triggered at least one adaptation"
        );
        assert!(out.monitor_evaluations > 0);
    }

    #[test]
    fn synthetic_slow_pool_triggers_recalibration_exactly_once() {
        // Guard on Algorithm 2's hot path: a deterministic run in which the
        // *whole* pool degrades (every node is hit by the same synthetic load
        // spike injected through gridsim) must trip the threshold-Z feedback
        // (`min T > Z`) — and only once, because the recalibration re-bases Z
        // on the degraded times, after which the pool is "healthy" again
        // relative to the new baseline.
        let topo = TopologyBuilder::uniform_cluster(4, 40.0);
        let node_ids = topo.node_ids();
        let mut builder = GridBuilder::new(topo).quantum(0.25);
        for &n in &node_ids {
            // Quiet during calibration, then 90 % external load forever: every
            // task takes 10× its calibrated time, far beyond Z = 2× best.
            builder = builder.node_load(
                n,
                SpikeLoad::new(0.0, 0.9, SimTime::new(20.0), SimTime::new(1e9)),
            );
        }
        let grid = builder.build();
        let mut cfg = GraspConfig::default();
        cfg.calibration.selection_fraction = 1.0;
        cfg.execution.monitor_interval_s = 10.0;
        cfg.execution.max_recalibrations = 10; // not the limiting factor
        let tasks = TaskSpec::uniform(300, 60.0, 8 * 1024, 8 * 1024);
        let out = TaskFarm::new(cfg).run(&grid, &tasks).unwrap();
        assert_eq!(out.completed_tasks(), 300);
        assert_eq!(
            out.adaptation.recalibrations(),
            1,
            "uniform degradation must recalibrate exactly once: {}",
            out.adaptation.summary()
        );
        // The whole pool slowed down uniformly, so no individual node may be
        // singled out for demotion.
        assert_eq!(
            out.adaptation.demotions(),
            0,
            "{}",
            out.adaptation.summary()
        );
    }

    #[test]
    fn communication_heavy_degradation_does_not_thrash_recalibration() {
        // Tasks dominated by data movement (32 MiB each way over a
        // ~110 MiB/s LAN vs ~25 ms of compute) on workers separate from the
        // master, with the *link* — not the CPUs — degrading mid-run.  The
        // legitimate first recalibration must re-base Z including the
        // communication component at the observed bandwidth; a compute-only
        // (or nominal-bandwidth) Z would sit far below every observed time
        // and re-trigger at every interval until max_recalibrations.
        let topo = TopologyBuilder::uniform_cluster(4, 40.0);
        let site = topo.sites()[0].id;
        let grid = GridBuilder::new(topo)
            .quantum(0.25)
            .link_load(
                site,
                site,
                SpikeLoad::new(0.0, 0.8, SimTime::new(8.0), SimTime::new(1e9)),
            )
            .build();
        for mode in [
            CalibrationMode::TimeOnly,
            CalibrationMode::Univariate,
            CalibrationMode::Multivariate,
        ] {
            let mut cfg = GraspConfig::default();
            cfg.calibration.mode = mode;
            cfg.calibration.selection_fraction = 1.0;
            cfg.execution.monitor_interval_s = 10.0;
            cfg.execution.max_recalibrations = 10;
            // Node 0 is the master only; nodes 1–3 are the workers, so every
            // task pays the (degrading) transfer cost.
            cfg.master = Some(NodeId(0));
            let workers = [NodeId(1), NodeId(2), NodeId(3)];
            let tasks = TaskSpec::uniform(90, 1.0, 32 << 20, 32 << 20);
            let out = TaskFarm::new(cfg).run_on(&grid, &workers, &tasks).unwrap();
            assert_eq!(out.completed_tasks(), 90);
            assert_eq!(
                out.adaptation.recalibrations(),
                1,
                "{mode:?}: link degradation must recalibrate once, not thrash: {}",
                out.adaptation.summary()
            );
        }
    }

    #[test]
    fn pure_transfer_workload_completes_and_still_adapts() {
        // An all-zero-work job falls back to raw-second units consistently
        // (calibration and monitor alike), so Algorithm 2 must still notice
        // a mid-run link collapse rather than being silently disabled.
        let topo = TopologyBuilder::uniform_cluster(4, 40.0);
        let site = topo.sites()[0].id;
        let grid = GridBuilder::new(topo)
            .quantum(0.25)
            .link_load(
                site,
                site,
                SpikeLoad::new(0.0, 0.8, SimTime::new(3.0), SimTime::new(1e9)),
            )
            .build();
        let mut cfg = GraspConfig::default();
        cfg.calibration.selection_fraction = 1.0;
        cfg.execution.monitor_interval_s = 5.0;
        cfg.master = Some(NodeId(0));
        let workers = [NodeId(1), NodeId(2), NodeId(3)];
        let tasks = TaskSpec::uniform(300, 0.0, 8 << 20, 8 << 20);
        let out = TaskFarm::new(cfg).run_on(&grid, &workers, &tasks).unwrap();
        assert_eq!(out.completed_tasks(), 300);
        assert!(
            out.adaptation.recalibrations() >= 1,
            "link collapse must still trigger Algorithm 2 on a pure-transfer job: {}",
            out.adaptation.summary()
        );
    }

    #[test]
    fn revoked_node_work_is_requeued_and_job_completes() {
        let topo = TopologyBuilder::uniform_cluster(4, 30.0);
        // Node 2 is revoked early and never comes back.
        let faults = FaultPlan::none().with_outage(NodeId(2), SimTime::new(5.0), SimTime::new(1e9));
        let grid = GridBuilder::new(topo).faults(faults).build();
        let mut cfg = GraspConfig::default();
        cfg.calibration.selection_fraction = 1.0;
        let tasks = TaskSpec::uniform(120, 80.0, 8 * 1024, 8 * 1024);
        let out = TaskFarm::new(cfg).run(&grid, &tasks).unwrap();
        assert_eq!(out.completed_tasks(), 120, "lost chunk must be re-executed");
        assert!(out.adaptation.node_losses() >= 1);
        assert!(!out.final_active_nodes.contains(&NodeId(2)));
        let mut ids: Vec<usize> = out.task_outcomes.iter().map(|o| o.task).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 120);
    }

    #[test]
    fn total_outage_with_scheduled_recovery_is_waited_out_not_fatal() {
        // Both nodes are revoked at t=5 for longer than the chunk horizon:
        // in-flight chunks are declared lost and requeued, no known-down
        // node is handed new work, and when the first node recovers the
        // starvation guard resumes dispatching instead of erroring.
        let topo = TopologyBuilder::uniform_cluster(2, 30.0);
        let faults = FaultPlan::none()
            .with_outage(NodeId(0), SimTime::new(5.0), SimTime::new(2e6))
            .with_outage(NodeId(1), SimTime::new(5.0), SimTime::new(3e6));
        let grid = GridBuilder::new(topo).faults(faults).build();
        let tasks = TaskSpec::uniform(40, 60.0, 1024, 1024);
        let out = TaskFarm::new(GraspConfig::default())
            .run(&grid, &tasks)
            .expect("a scheduled recovery must rescue the job");
        assert_eq!(out.completed_tasks(), 40);
        assert!(out.adaptation.node_losses() >= 1);
        assert!(out.adaptation.requeued_tasks() >= 1);
        assert!(
            out.makespan.as_secs() >= 2e6,
            "the job can only finish after the first recovery: {}",
            out.makespan.as_secs()
        );
    }

    #[test]
    fn overlapping_outages_do_not_hide_the_recovery() {
        // Node 1's outages overlap, so while it is down its *next* fault
        // event is a second Revoke — the real recovery sits behind it.  The
        // starvation guard must still find the recovery instant instead of
        // declaring the job lost.
        let topo = TopologyBuilder::uniform_cluster(2, 30.0);
        let faults = FaultPlan::none()
            // Node 0 dies for longer than the chunk horizon (chunks are lost,
            // not waited out) and never matters again.
            .with_outage(NodeId(0), SimTime::new(5.0), SimTime::new(9e6))
            // Node 1: overlapping outages [5, 2e6) and [10, 3e6).  Under the
            // last-event-wins state model the node is back up at the first
            // Recover (t=2e6), but while it is down its next event is the
            // second Revoke.
            .with_outage(NodeId(1), SimTime::new(5.0), SimTime::new(2e6))
            .with_outage(NodeId(1), SimTime::new(10.0), SimTime::new(3e6));
        let grid = GridBuilder::new(topo).faults(faults).build();
        let tasks = TaskSpec::uniform(30, 60.0, 1024, 1024);
        let out = TaskFarm::new(GraspConfig::default())
            .run(&grid, &tasks)
            .expect("the overlapped recovery at t=2e6 must rescue the job");
        assert_eq!(out.completed_tasks(), 30);
        assert!(out.makespan.as_secs() >= 2e6);
    }

    #[test]
    fn whole_grid_down_is_an_error() {
        let topo = TopologyBuilder::uniform_cluster(2, 30.0);
        let faults = FaultPlan::none()
            .with_outage(NodeId(0), SimTime::ZERO, SimTime::new(1e12))
            .with_outage(NodeId(1), SimTime::ZERO, SimTime::new(1e12));
        let grid = GridBuilder::new(topo).faults(faults).build();
        let farm = TaskFarm::new(GraspConfig::default());
        assert!(farm.run(&grid, &uniform_tasks(10)).is_err());
    }

    #[test]
    fn calibration_work_counts_toward_the_job() {
        let grid = het_grid(4);
        let mut cfg = GraspConfig::default();
        cfg.calibration.samples_per_node = 2;
        let tasks = uniform_tasks(40);
        let out = TaskFarm::new(cfg).run(&grid, &tasks).unwrap();
        let calib_tasks = out
            .task_outcomes
            .iter()
            .filter(|o| o.during_calibration)
            .count();
        assert_eq!(calib_tasks, 8, "4 nodes × 2 samples");
        assert_eq!(out.completed_tasks(), 40);
    }

    #[test]
    fn selection_fraction_limits_the_worker_set_on_a_quiet_grid() {
        let grid = het_grid(8);
        let mut cfg = GraspConfig::default();
        cfg.calibration.selection_fraction = 0.5;
        cfg.execution.adaptive = false; // keep the chosen set fixed
        let out = TaskFarm::new(cfg).run(&grid, &uniform_tasks(80)).unwrap();
        // Only calibration touches all 8 nodes; execution should use 4.
        let exec_nodes: std::collections::BTreeSet<NodeId> = out
            .task_outcomes
            .iter()
            .filter(|o| !o.during_calibration)
            .map(|o| o.node)
            .collect();
        assert!(exec_nodes.len() <= 4, "got {exec_nodes:?}");
    }

    #[test]
    fn self_scheduling_baseline_completes_everything() {
        let grid = het_grid(6);
        let out = TaskFarm::new(GraspConfig::self_scheduling_baseline())
            .run(&grid, &uniform_tasks(60))
            .unwrap();
        assert_eq!(out.completed_tasks(), 60);
        assert!(out.adaptation.is_empty(), "baseline must not adapt");
    }

    #[test]
    fn weighted_chunking_gives_fast_nodes_more_tasks() {
        // Two obviously different speeds, no adaptation needed.
        let mut b = TopologyBuilder::new();
        let s = b.add_site("c", LinkSpec::lan());
        b.add_node(s, "slow", 10.0);
        b.add_node(s, "slow2", 10.0);
        b.add_node(s, "fast", 80.0);
        b.add_node(s, "fast2", 80.0);
        let grid = Grid::dedicated(b.build());
        let mut cfg = GraspConfig::default();
        cfg.calibration.selection_fraction = 1.0;
        cfg.scheduler = SchedulePolicy::AdaptiveWeighted { min_chunk: 1 };
        let out = TaskFarm::new(cfg).run(&grid, &uniform_tasks(200)).unwrap();
        let slow_tasks = out.per_node_tasks.get(&NodeId(0)).copied().unwrap_or(0)
            + out.per_node_tasks.get(&NodeId(1)).copied().unwrap_or(0);
        let fast_tasks = out.per_node_tasks.get(&NodeId(2)).copied().unwrap_or(0)
            + out.per_node_tasks.get(&NodeId(3)).copied().unwrap_or(0);
        assert!(
            fast_tasks > slow_tasks * 2,
            "fast nodes should do most of the work: fast={fast_tasks} slow={slow_tasks}"
        );
    }

    #[test]
    fn statistical_calibration_mode_runs_end_to_end() {
        let topo = TopologyBuilder::uniform_cluster(6, 40.0);
        let node_ids = topo.node_ids();
        let mut builder = GridBuilder::new(topo);
        for &n in &node_ids {
            builder = builder.node_load(n, ConstantLoad::new(0.1 * (n.index() % 3) as f64));
        }
        let grid = builder.build();
        let mut cfg = GraspConfig::adaptive_multivariate();
        cfg.calibration.samples_per_node = 2;
        let out = TaskFarm::new(cfg).run(&grid, &uniform_tasks(90)).unwrap();
        assert_eq!(out.completed_tasks(), 90);
        assert_eq!(out.calibration.mode, CalibrationMode::Multivariate);
    }

    #[test]
    fn makespan_is_never_before_the_last_completion() {
        let grid = het_grid(5);
        let out = TaskFarm::new(GraspConfig::default())
            .run(&grid, &uniform_tasks(50))
            .unwrap();
        let last = out
            .task_outcomes
            .iter()
            .map(|o| o.completed)
            .fold(SimTime::ZERO, SimTime::max);
        assert_eq!(out.makespan, last);
        assert_eq!(out.timeline.total() as usize, out.completed_tasks());
    }
}
