//! The backend-neutral adaptation engine — one monitor→threshold→recalibrate
//! loop for every backend.
//!
//! The paper's adaptive lifecycle (calibrate, execute, monitor against the
//! performance threshold *Z*, then recalibrate/demote — Algorithms 1–2) is
//! not specific to the simulated grid: the *same* loop applies whenever
//! executors report how long their work units take, whatever the clock.
//! [`AdaptationEngine`] packages that loop behind a clock-agnostic surface:
//!
//! * it owns the [`ExecutionMonitor`], the [`ThresholdPolicy`], the
//!   recalibration budget and the [`AdaptationLog`];
//! * it consumes **work-normalised time observations** (seconds per work
//!   unit) stamped with [`SimTime`] instants — virtual seconds on the
//!   simulated grid, or wall-clock seconds via [`WallClock`] on real
//!   threads;
//! * it emits typed [`AdaptationDirective`]s (recalibrate, demote an
//!   executor, remap/replicate a stage) that the **caller applies**.  The
//!   engine never touches executors itself: what "demote node 3" means
//!   (drop it from the chosen set; stop handing a worker thread chunks) is
//!   the backend's business, as is any additional gating (e.g. the farm's
//!   `min_active_nodes` floor).  Once the caller has acted it reports back
//!   through the `note_*`/`apply_*` methods, which write the audit log and
//!   update the engine state.
//!
//! Two monitoring disciplines are supported, matching the paper's two
//! skeletons:
//!
//! * **executor mode** ([`AdaptationEngine::for_executors`]) — the farm's
//!   Algorithm 2: per-executor times are collected into the table *T* every
//!   monitoring interval; `min T > Z` means the whole pool degraded
//!   (recalibrate), a single executor beyond `demote_factor × Z` is demoted.
//! * **stage mode** ([`AdaptationEngine::for_stages`]) — the pipeline's
//!   variant: each stage has its own threshold *Zₛ* and a recent-service
//!   window; a full window whose mean exceeds *Zₛ* yields a
//!   [`AdaptationDirective::RemapStage`] directive.
//!
//! Recalibration comes in two flavours because the backends have different
//! information available.  The simulated farm re-ranks its pool from
//! monitored load/bandwidth and re-bases *Z* on the retained nodes'
//! *expected* times ([`AdaptationEngine::apply_recalibration`]).  A
//! wall-clock backend has no load model to consult, so it takes a **real
//! re-calibration sample** instead ([`AdaptationEngine::begin_resample`]):
//! the monitor window is flushed and the *next* full interval of fresh
//! observations re-bases *Z* — the cost is one interval of tolerance, the
//! gain is that the new *Z* reflects measured post-degradation reality.

use crate::adaptation::{AdaptationAction, AdaptationLog};
use crate::config::ExecutionConfig;
use crate::execution::{ExecutionMonitor, MonitorVerdict};
use crate::threshold::ThresholdPolicy;
use gridsim::{NodeId, SimTime};
use std::collections::VecDeque;
use std::time::Instant;

/// A wall-clock source yielding [`SimTime`] stamps, so real-thread backends
/// feed the engine through exactly the same surface as the simulated grid:
/// the engine never knows which clock it is on.
#[derive(Debug, Clone)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Start the clock now; subsequent [`WallClock::now`] calls report
    /// seconds elapsed since this instant.
    pub fn start() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`WallClock::start`], as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        SimTime::new(self.start.elapsed().as_secs_f64())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::start()
    }
}

/// A typed adaptation decision the engine asks its caller to apply.
///
/// Directives are *requests*: the caller owns the executor set and may apply
/// additional gating (minimum pool size, last-worker guards, pending
/// retries) before acting.  Applied directives are reported back via the
/// engine's `note_*`/`apply_*` methods so the audit log matches reality.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptationDirective {
    /// The whole pool degraded (`min T > Z`): feed back into calibration.
    Recalibrate,
    /// One executor's recent mean exceeded `demote_factor × Z`: drop it
    /// from the active set without a full recalibration.
    DemoteExecutor {
        /// The pathological executor.
        executor: NodeId,
        /// Its recent mean time (seconds per work unit).
        recent_mean: f64,
    },
    /// A pipeline stage's recent mean service exceeded its threshold *Zₛ*:
    /// remap it to a better executor (sim) or replicate it (threads).
    RemapStage {
        /// Index of the degraded stage.
        stage: usize,
        /// Its recent mean service time (seconds per item).
        recent_mean: f64,
    },
    /// The job is in its tail (every unit handed out, few enough still in
    /// flight): idle workers may duplicate in-flight units, first verified
    /// result wins.  Emitted by [`AdaptationEngine::maybe_speculate`]; the
    /// caller picks the concrete units, launches the duplicates, and
    /// reports each one via [`AdaptationEngine::note_speculated`].
    Speculate {
        /// Units still in flight when the directive fired.
        in_flight: usize,
    },
}

/// The result of one executor-mode monitoring evaluation: the raw monitor
/// verdict plus the directives the engine derived from it.
#[derive(Debug, Clone)]
pub struct EnginePoll {
    /// The monitor's verdict (table *T*, `min T`, threshold *Z* in force).
    pub verdict: MonitorVerdict,
    /// Directives for the caller to apply, demotions first.
    pub directives: Vec<AdaptationDirective>,
}

/// The backend-neutral calibrate→monitor→act loop (see module docs).
#[derive(Debug, Clone)]
pub struct AdaptationEngine {
    policy: ThresholdPolicy,
    adaptive: bool,
    max_recalibrations: usize,
    recalibrations: usize,
    monitor: ExecutionMonitor,
    /// Set by [`AdaptationEngine::begin_resample`]: the next full interval's
    /// per-executor means re-base *Z* instead of producing a verdict.
    pending_rebase: bool,
    /// Stage-mode state: per-stage recent-service windows and thresholds.
    stage_windows: Vec<VecDeque<f64>>,
    stage_thresholds: Vec<f64>,
    stage_window_cap: usize,
    /// Minimum spacing between stage-mode actions (0 disables the gate; the
    /// noise-free simulated pipeline uses 0, wall-clock backends space
    /// actions by the monitor interval so scheduler jitter cannot thrash).
    stage_action_interval_s: f64,
    last_stage_action: SimTime,
    /// Tail fraction below which in-flight units may be duplicated
    /// (`ExecutionConfig::speculate_tail_fraction`; 0 disables speculation).
    speculate_tail_fraction: f64,
    log: AdaptationLog,
}

impl AdaptationEngine {
    /// An executor-mode engine (the farm's Algorithm 2).
    ///
    /// The threshold *Z* is derived from `reference_times` — the calibrated
    /// per-work-unit times of the chosen executors (Algorithm 1's output) —
    /// via the configured [`ThresholdPolicy`]; the monitoring interval
    /// starts at `start` (the calibration end).
    pub fn for_executors(exec: &ExecutionConfig, reference_times: &[f64], start: SimTime) -> Self {
        let threshold = exec.threshold.compute(reference_times);
        let mut monitor =
            ExecutionMonitor::new(threshold, exec.monitor_interval_s, exec.demote_factor)
                .with_window(exec.monitor_window);
        monitor.reset(start);
        AdaptationEngine {
            policy: exec.threshold,
            adaptive: exec.adaptive,
            max_recalibrations: exec.max_recalibrations,
            recalibrations: 0,
            monitor,
            pending_rebase: false,
            stage_windows: Vec::new(),
            stage_thresholds: Vec::new(),
            stage_window_cap: exec.monitor_window.max(1),
            stage_action_interval_s: 0.0,
            last_stage_action: SimTime::ZERO,
            speculate_tail_fraction: exec.speculate_tail_fraction.clamp(0.0, 1.0),
            log: AdaptationLog::new(),
        }
    }

    /// A stage-mode engine (the pipeline's per-stage loop) with one
    /// threshold *Zₛ* per stage.
    pub fn for_stages(exec: &ExecutionConfig, stage_thresholds: Vec<f64>) -> Self {
        let mut engine = Self::for_executors(exec, &[], SimTime::ZERO);
        engine.stage_windows = vec![VecDeque::new(); stage_thresholds.len()];
        engine.stage_thresholds = stage_thresholds;
        engine
    }

    /// Override the stage-mode recent-service window size (defaults to the
    /// shared `monitor_window` of the execution config).
    pub fn with_stage_window(mut self, window: usize) -> Self {
        self.stage_window_cap = window.max(1);
        self
    }

    /// Space stage-mode actions at least `interval_s` apart on the engine's
    /// clock (see [`AdaptationEngine`] field docs; 0 disables the gate).
    pub fn with_stage_action_interval(mut self, interval_s: f64) -> Self {
        self.stage_action_interval_s = interval_s.max(0.0);
        self
    }

    /// Whether Algorithm 2 is enabled at all.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// The threshold *Z* currently in force (executor mode).
    pub fn threshold(&self) -> f64 {
        self.monitor.threshold()
    }

    /// The per-stage threshold *Zₛ* currently in force (stage mode).
    pub fn stage_threshold(&self, stage: usize) -> f64 {
        self.stage_thresholds
            .get(stage)
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// Completed monitoring evaluations (executor mode).
    pub fn evaluations(&self) -> usize {
        self.monitor.evaluations()
    }

    /// Live per-node rank snapshot (executor mode): the mean of each node's
    /// observations accumulated so far in the current monitoring interval,
    /// in seconds per work unit, **without** evaluating or clearing the
    /// window.  Work-stealing dispatchers read this mid-interval to weight
    /// owner chunks and pick the slowest-ranked steal victim; nodes with no
    /// observation yet are absent.
    pub fn rank_snapshot(&self) -> Vec<(NodeId, f64)> {
        self.monitor.recent_means()
    }

    /// Recalibrations performed so far.
    pub fn recalibrations(&self) -> usize {
        self.recalibrations
    }

    /// Whether the recalibration budget allows another feedback round.
    pub fn can_recalibrate(&self) -> bool {
        self.recalibrations < self.max_recalibrations
    }

    /// Complete (or redo) Algorithm 1: derive *Z* from freshly calibrated
    /// `reference_times` and restart the monitoring interval at `now`.
    ///
    /// This is the lifecycle's calibration step, not an adaptation: no
    /// budget is consumed and nothing is logged.  Backends whose
    /// calibration sample only becomes available mid-run (e.g. a thread
    /// farm whose probe tasks execute inside the job) construct the engine
    /// with an empty reference sample — *Z* = ∞, nothing can fire — and
    /// call this once the sample is in.
    pub fn calibrate(&mut self, reference_times: &[f64], now: SimTime) {
        self.monitor
            .set_threshold(self.policy.compute(reference_times));
        self.monitor.reset(now);
    }

    /// Consume one unit of recalibration budget if available.
    pub fn try_consume_recalibration(&mut self) -> bool {
        if self.can_recalibrate() {
            self.recalibrations += 1;
            true
        } else {
            false
        }
    }

    // ------------------------- executor mode -------------------------

    /// Worker-side report: one executed work unit took `time_per_unit`
    /// seconds per declared work unit on `executor`.
    pub fn observe(&mut self, executor: NodeId, time_per_unit: f64) {
        self.monitor.record(executor, time_per_unit);
    }

    /// Whether the monitoring interval has elapsed at `now` (cheap check a
    /// hot path may use before paying for [`AdaptationEngine::poll`]).
    pub fn due(&self, now: SimTime) -> bool {
        self.monitor.due(now)
    }

    /// Run one monitoring evaluation if the interval has elapsed.
    ///
    /// Returns the verdict and the derived directives: one
    /// [`AdaptationDirective::DemoteExecutor`] per executor beyond the
    /// demotion threshold, then [`AdaptationDirective::Recalibrate`] when
    /// `min T > Z` and the recalibration budget is not exhausted.  Returns
    /// `None` when adaptation is disabled, the interval has not elapsed, no
    /// times were reported, or a pending resample consumed the interval to
    /// re-base *Z* (see [`AdaptationEngine::begin_resample`]).
    pub fn poll(&mut self, now: SimTime) -> Option<EnginePoll> {
        if !self.adaptive {
            return None;
        }
        let verdict = self.monitor.evaluate(now)?;
        if self.pending_rebase {
            // The fresh post-degradation interval is the re-calibration
            // sample: re-base Z on what the executors now achieve.
            let times: Vec<f64> = verdict.per_node_mean.iter().map(|(_, m)| *m).collect();
            if !times.is_empty() {
                self.monitor.set_threshold(self.policy.compute(&times));
            }
            self.pending_rebase = false;
            return None;
        }
        let mut directives: Vec<AdaptationDirective> = verdict
            .demote
            .iter()
            .map(|slow| AdaptationDirective::DemoteExecutor {
                executor: *slow,
                recent_mean: verdict
                    .per_node_mean
                    .iter()
                    .find(|(n, _)| n == slow)
                    .map(|(_, m)| *m)
                    .unwrap_or(f64::NAN),
            })
            .collect();
        if verdict.recalibrate && self.can_recalibrate() {
            directives.push(AdaptationDirective::Recalibrate);
        }
        Some(EnginePoll {
            verdict,
            directives,
        })
    }

    /// Tail-speculation decision (Time-Warp-flavoured optimistic execution):
    /// the caller reports that every unit has been handed out (nothing
    /// pending) and `in_flight` of `total` units are still running; the
    /// engine answers with [`AdaptationDirective::Speculate`] when idle
    /// workers may duplicate them.
    ///
    /// Fires only when adaptation is on, speculation is enabled
    /// (`speculate_tail_fraction > 0`), at least one unit is in flight, and
    /// the in-flight count is within the configured tail fraction of the
    /// job (`in_flight ≤ max(1, ⌈fraction × total⌉)`) — duplicating earlier
    /// than the tail would burn capacity the pending queue still wants.
    /// Like every directive this is a *request*: the caller picks concrete
    /// units (each at most once), launches duplicates on workers that would
    /// otherwise go idle, and reports launches/wins back via
    /// [`AdaptationEngine::note_speculated`] /
    /// [`AdaptationEngine::note_speculation_won`].
    pub fn maybe_speculate(&self, in_flight: usize, total: usize) -> Option<AdaptationDirective> {
        if !self.adaptive || self.speculate_tail_fraction <= 0.0 || in_flight == 0 {
            return None;
        }
        let allowance = ((self.speculate_tail_fraction * total as f64).ceil() as usize).max(1);
        (in_flight <= allowance).then_some(AdaptationDirective::Speculate { in_flight })
    }

    /// Record that the caller launched a speculative duplicate of `unit` on
    /// idle worker `on`.
    pub fn note_speculated(&mut self, now: SimTime, unit: usize, on: NodeId) {
        self.log.record(
            now,
            AdaptationAction::UnitSpeculated { unit, on },
            self.monitor.threshold(),
            0.0,
        );
    }

    /// Record that the speculative duplicate of `unit` on worker `on` won
    /// the race (its result arrived first; the straggler's copy will be
    /// discarded on arrival).
    pub fn note_speculation_won(&mut self, now: SimTime, unit: usize, on: NodeId) {
        self.log.record(
            now,
            AdaptationAction::SpeculationWon { unit, on },
            self.monitor.threshold(),
            0.0,
        );
    }

    /// Record that the caller admitted an executor to the pool while
    /// execution was already running (dynamic membership).  The engine takes
    /// no position on the newcomer's speed yet — the caller ranks it through
    /// a calibration prefix and feeds the observations back via
    /// [`AdaptationEngine::observe`], after which the ordinary monitoring
    /// loop (including demotion) covers it like any founding member.
    pub fn note_node_joined(&mut self, now: SimTime, node: NodeId) {
        self.log.record(
            now,
            AdaptationAction::NodeJoined { node },
            self.monitor.threshold(),
            0.0,
        );
    }

    /// Record that the caller observed an executor loss (revocation, worker
    /// death) and requeued its in-flight work.
    pub fn note_node_lost(&mut self, now: SimTime, node: NodeId, requeued_tasks: usize) {
        self.log.record(
            now,
            AdaptationAction::NodeLost {
                node,
                requeued_tasks,
            },
            self.monitor.threshold(),
            0.0,
        );
    }

    /// Record that the caller applied a demotion directive.
    pub fn note_demoted(
        &mut self,
        now: SimTime,
        node: NodeId,
        recent_mean_time: f64,
        verdict: &MonitorVerdict,
    ) {
        self.log.record(
            now,
            AdaptationAction::NodeDemoted {
                node,
                recent_mean_time,
            },
            verdict.threshold,
            verdict.min_time,
        );
    }

    /// Apply a model-based recalibration (the simulated farm's flavour):
    /// *Z* is re-based on the retained executors' `expected_times` (skipped
    /// when empty), the monitor restarts at `now`, the budget is consumed
    /// and the action is logged.
    pub fn apply_recalibration(
        &mut self,
        now: SimTime,
        new_chosen: Vec<NodeId>,
        expected_times: &[f64],
        verdict: &MonitorVerdict,
    ) {
        if !expected_times.is_empty() {
            self.monitor
                .set_threshold(self.policy.compute(expected_times));
        }
        self.monitor.reset(now);
        self.recalibrations += 1;
        self.log.record(
            now,
            AdaptationAction::Recalibrated { new_chosen },
            verdict.threshold,
            verdict.min_time,
        );
    }

    /// Apply a sample-based recalibration (the wall-clock flavour): the
    /// monitor restarts at `now` and the *next* full interval of fresh
    /// observations re-bases *Z* (a real re-calibration sample — no stale
    /// pre-degradation times involved).  Budget is consumed and the action
    /// logged immediately.
    pub fn begin_resample(
        &mut self,
        now: SimTime,
        new_chosen: Vec<NodeId>,
        verdict: &MonitorVerdict,
    ) {
        self.monitor.reset(now);
        self.pending_rebase = true;
        self.recalibrations += 1;
        self.log.record(
            now,
            AdaptationAction::Recalibrated { new_chosen },
            verdict.threshold,
            verdict.min_time,
        );
    }

    // --------------------------- stage mode ---------------------------

    /// Stage-side report: one item took `service_s` seconds at `stage`.
    ///
    /// Returns a [`AdaptationDirective::RemapStage`] when the stage's
    /// recent-service window is full, its mean exceeds *Zₛ*, adaptation is
    /// enabled, budget remains, and the action-spacing gate allows it.
    pub fn observe_stage(
        &mut self,
        now: SimTime,
        stage: usize,
        service_s: f64,
    ) -> Option<AdaptationDirective> {
        let cap = self.stage_window_cap;
        let adaptive = self.adaptive;
        let budget_left = self.can_recalibrate();
        let window = self.stage_windows.get_mut(stage)?;
        window.push_back(service_s);
        if window.len() > cap {
            window.pop_front();
        }
        if !adaptive || !budget_left || window.len() < cap {
            return None;
        }
        if self.stage_action_interval_s > 0.0
            && (now - self.last_stage_action).as_secs() < self.stage_action_interval_s
        {
            return None;
        }
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        if mean > self.stage_thresholds[stage] {
            Some(AdaptationDirective::RemapStage {
                stage,
                recent_mean: mean,
            })
        } else {
            None
        }
    }

    /// Record that the caller moved a stage to a different executor.
    pub fn note_stage_remapped(
        &mut self,
        now: SimTime,
        stage: usize,
        from: NodeId,
        to: NodeId,
        trigger_value: f64,
    ) {
        let threshold = self.stage_threshold(stage);
        self.log.record(
            now,
            AdaptationAction::StageRemapped { stage, from, to },
            threshold,
            trigger_value,
        );
        self.last_stage_action = now;
    }

    /// Record that the caller replicated a stage across more executors (the
    /// shared-memory realisation of a stage remap).
    pub fn note_stage_replicated(
        &mut self,
        now: SimTime,
        stage: usize,
        replicas: usize,
        trigger_value: f64,
    ) {
        let threshold = self.stage_threshold(stage);
        self.log.record(
            now,
            AdaptationAction::StageReplicated { stage, replicas },
            threshold,
            trigger_value,
        );
        self.last_stage_action = now;
    }

    /// Record that the caller **live-migrated** a stage: checkpointed its
    /// `checkpointed_items` queued items and re-homed it from worker `from`
    /// to worker `to`, the old worker stopping (the Cactus-Worm realisation
    /// of a stage remap, chosen over replication when
    /// `ExecutionConfig::migrate_stages` is set).
    pub fn note_stage_migrated(
        &mut self,
        now: SimTime,
        stage: usize,
        from: NodeId,
        to: NodeId,
        checkpointed_items: usize,
        trigger_value: f64,
    ) {
        let threshold = self.stage_threshold(stage);
        self.log.record(
            now,
            AdaptationAction::StageMigrated {
                stage,
                from,
                to,
                checkpointed_items,
            },
            threshold,
            trigger_value,
        );
        self.last_stage_action = now;
    }

    /// Record the pipeline-style whole-mapping recalibration that drives
    /// stage remaps.
    pub fn note_stages_recalibrated(
        &mut self,
        now: SimTime,
        new_chosen: Vec<NodeId>,
        trigger_value: f64,
    ) {
        self.log.record(
            now,
            AdaptationAction::Recalibrated { new_chosen },
            0.0,
            trigger_value,
        );
        self.last_stage_action = now;
    }

    /// Replace every stage threshold (after a remap recomputed them).
    pub fn set_stage_thresholds(&mut self, thresholds: Vec<f64>) {
        self.stage_thresholds = thresholds;
    }

    /// Forget all recent stage services (after a remap: times from the old
    /// mapping must not condemn the new one).
    pub fn clear_stage_windows(&mut self) {
        for w in &mut self.stage_windows {
            w.clear();
        }
    }

    // ----------------------------- results -----------------------------

    /// The audit log so far.
    pub fn log(&self) -> &AdaptationLog {
        &self.log
    }

    /// Consume the engine, yielding the audit log.
    pub fn into_log(self) -> AdaptationLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionConfig;

    fn exec(interval: f64) -> ExecutionConfig {
        ExecutionConfig {
            threshold: ThresholdPolicy::Factor { factor: 2.0 },
            monitor_interval_s: interval,
            ..ExecutionConfig::default()
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    #[test]
    fn healthy_pool_yields_no_directives() {
        let mut e = AdaptationEngine::for_executors(&exec(1.0), &[1.0, 1.2], SimTime::ZERO);
        assert!((e.threshold() - 2.0).abs() < 1e-12);
        e.observe(NodeId(0), 1.1);
        e.observe(NodeId(1), 1.5);
        let poll = e.poll(t(1.0)).unwrap();
        assert!(poll.directives.is_empty());
        assert!(!poll.verdict.recalibrate);
        assert_eq!(e.evaluations(), 1);
    }

    #[test]
    fn rank_snapshot_reads_the_live_window_without_clearing_it() {
        let mut e = AdaptationEngine::for_executors(&exec(1.0), &[1.0, 1.2], SimTime::ZERO);
        assert!(e.rank_snapshot().is_empty());
        e.observe(NodeId(0), 1.0);
        e.observe(NodeId(0), 3.0);
        e.observe(NodeId(1), 0.5);
        let ranks = e.rank_snapshot();
        assert_eq!(ranks, vec![(NodeId(0), 2.0), (NodeId(1), 0.5)]);
        // Non-destructive: the interval evaluation still fires on the same
        // observations afterwards.
        let poll = e.poll(t(1.0)).unwrap();
        assert_eq!(poll.verdict.per_node_mean, ranks);
        assert!(e.rank_snapshot().is_empty(), "poll consumed the window");
    }

    #[test]
    fn pool_degradation_emits_recalibrate_within_budget() {
        let mut e = AdaptationEngine::for_executors(&exec(1.0), &[1.0], SimTime::ZERO);
        e.observe(NodeId(0), 5.0);
        e.observe(NodeId(1), 6.0);
        let poll = e.poll(t(1.0)).unwrap();
        assert!(poll.directives.contains(&AdaptationDirective::Recalibrate));
        // Applying the recalibration re-bases Z and logs the action.
        e.apply_recalibration(
            t(1.0),
            vec![NodeId(0), NodeId(1)],
            &[5.0, 6.0],
            &poll.verdict,
        );
        assert!((e.threshold() - 10.0).abs() < 1e-12);
        assert_eq!(e.recalibrations(), 1);
        assert_eq!(e.log().recalibrations(), 1);
        // The new Z covers the degraded times: the next interval is quiet.
        e.observe(NodeId(0), 5.0);
        let poll = e.poll(t(2.0)).unwrap();
        assert!(poll.directives.is_empty());
    }

    #[test]
    fn exhausted_budget_suppresses_the_recalibrate_directive() {
        let mut cfg = exec(1.0);
        cfg.max_recalibrations = 0;
        let mut e = AdaptationEngine::for_executors(&cfg, &[1.0], SimTime::ZERO);
        e.observe(NodeId(0), 50.0);
        let poll = e.poll(t(1.0)).unwrap();
        assert!(
            poll.verdict.recalibrate,
            "the verdict still reports the breach"
        );
        assert!(
            !poll.directives.contains(&AdaptationDirective::Recalibrate),
            "but no directive is emitted without budget"
        );
    }

    #[test]
    fn pathological_executor_emits_demote_before_recalibrate() {
        let mut e = AdaptationEngine::for_executors(&exec(1.0), &[1.0], SimTime::ZERO);
        e.observe(NodeId(0), 1.1);
        e.observe(NodeId(7), 60.0); // > demote_factor (3) × Z (2)
        let poll = e.poll(t(1.0)).unwrap();
        match &poll.directives[..] {
            [AdaptationDirective::DemoteExecutor {
                executor,
                recent_mean,
            }] => {
                assert_eq!(*executor, NodeId(7));
                assert!((recent_mean - 60.0).abs() < 1e-12);
            }
            other => panic!("unexpected directives {other:?}"),
        }
        e.note_demoted(t(1.0), NodeId(7), 60.0, &poll.verdict);
        assert_eq!(e.log().demotions(), 1);
    }

    #[test]
    fn disabled_adaptation_never_polls() {
        let mut cfg = exec(1.0);
        cfg.adaptive = false;
        let mut e = AdaptationEngine::for_executors(&cfg, &[1.0], SimTime::ZERO);
        e.observe(NodeId(0), 100.0);
        assert!(e.poll(t(10.0)).is_none());
        assert_eq!(e.evaluations(), 0);
    }

    #[test]
    fn resample_rebases_z_from_the_next_fresh_interval() {
        let mut e = AdaptationEngine::for_executors(&exec(1.0), &[1.0], SimTime::ZERO);
        e.observe(NodeId(0), 9.0);
        let poll = e.poll(t(1.0)).unwrap();
        assert!(poll.directives.contains(&AdaptationDirective::Recalibrate));
        e.begin_resample(t(1.0), vec![NodeId(0)], &poll.verdict);
        assert_eq!(e.log().recalibrations(), 1);
        // The next interval's fresh observations are the recalibration
        // sample: they re-base Z instead of producing a verdict.
        e.observe(NodeId(0), 8.0);
        assert!(e.poll(t(2.0)).is_none());
        assert!(
            (e.threshold() - 16.0).abs() < 1e-12,
            "Z = 2 x resampled best"
        );
        // Steady degraded times are now within Z: no further recalibration.
        e.observe(NodeId(0), 8.0);
        let poll = e.poll(t(3.0)).unwrap();
        assert!(poll.directives.is_empty());
        assert_eq!(e.recalibrations(), 1);
    }

    #[test]
    fn stage_mode_emits_remap_when_the_window_fills_hot() {
        let mut cfg = exec(1.0);
        cfg.monitor_window = 3;
        let mut e = AdaptationEngine::for_stages(&cfg, vec![0.5, 2.0]);
        // Stage 0 healthy, stage 1 needs a full hot window first.
        assert!(e.observe_stage(t(0.1), 0, 0.1).is_none());
        assert!(e.observe_stage(t(0.2), 1, 5.0).is_none());
        assert!(e.observe_stage(t(0.3), 1, 5.0).is_none());
        match e.observe_stage(t(0.4), 1, 5.0) {
            Some(AdaptationDirective::RemapStage { stage, recent_mean }) => {
                assert_eq!(stage, 1);
                assert!((recent_mean - 5.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.try_consume_recalibration());
        e.note_stage_remapped(t(0.4), 1, NodeId(2), NodeId(5), 5.0);
        e.note_stages_recalibrated(t(0.4), vec![NodeId(5)], 5.0);
        e.clear_stage_windows();
        e.set_stage_thresholds(vec![0.5, 10.0]);
        assert_eq!(e.log().stage_remaps(), 1);
        assert_eq!(e.log().recalibrations(), 1);
        // Cleared windows + relaxed threshold: no immediate re-trigger.
        assert!(e.observe_stage(t(0.5), 1, 5.0).is_none());
        assert!(e.observe_stage(t(0.6), 1, 5.0).is_none());
        assert!(e.observe_stage(t(0.7), 1, 5.0).is_none());
    }

    #[test]
    fn stage_action_interval_spaces_wall_clock_actions() {
        let mut cfg = exec(1.0);
        cfg.monitor_window = 1;
        let mut e = AdaptationEngine::for_stages(&cfg, vec![0.1]).with_stage_action_interval(10.0);
        // Breaches inside the first interval are suppressed — like the farm
        // monitor, the gate spaces actions one full interval apart, so
        // wall-clock start-up jitter cannot trigger an instant action.
        assert!(e.observe_stage(t(0.5), 0, 9.0).is_none());
        assert!(e.observe_stage(t(10.5), 0, 9.0).is_some());
        e.note_stage_replicated(t(10.5), 0, 2, 9.0);
        assert_eq!(e.log().stage_replications(), 1);
        // An immediate follow-up breach is suppressed again until the next
        // interval elapses.
        assert!(e.observe_stage(t(11.0), 0, 9.0).is_none());
        assert!(e.observe_stage(t(20.6), 0, 9.0).is_some());
    }

    #[test]
    fn wall_clock_reports_monotone_simtime() {
        let clock = WallClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(a.as_secs() >= 0.0);
    }

    #[test]
    fn speculation_fires_only_inside_the_configured_tail() {
        let mut cfg = exec(1.0);
        cfg.speculate_tail_fraction = 0.25;
        let e = AdaptationEngine::for_executors(&cfg, &[1.0], SimTime::ZERO);
        // 100 units, fraction 0.25 → allowance 25 in flight.
        assert!(e.maybe_speculate(26, 100).is_none(), "still mid-job");
        assert_eq!(
            e.maybe_speculate(25, 100),
            Some(AdaptationDirective::Speculate { in_flight: 25 })
        );
        assert_eq!(
            e.maybe_speculate(1, 100),
            Some(AdaptationDirective::Speculate { in_flight: 1 })
        );
        assert!(e.maybe_speculate(0, 100).is_none(), "nothing to duplicate");
        // Tiny jobs: the allowance never rounds below one unit.
        let mut tiny = exec(1.0);
        tiny.speculate_tail_fraction = 0.01;
        let e = AdaptationEngine::for_executors(&tiny, &[1.0], SimTime::ZERO);
        assert!(e.maybe_speculate(1, 3).is_some());
    }

    #[test]
    fn speculation_respects_the_master_switches() {
        // Disabled by default (fraction 0).
        let e = AdaptationEngine::for_executors(&exec(1.0), &[1.0], SimTime::ZERO);
        assert!(e.maybe_speculate(1, 100).is_none());
        // Disabled when Algorithm 2 is off, whatever the fraction says.
        let mut cfg = exec(1.0);
        cfg.speculate_tail_fraction = 1.0;
        cfg.adaptive = false;
        let e = AdaptationEngine::for_executors(&cfg, &[1.0], SimTime::ZERO);
        assert!(e.maybe_speculate(1, 100).is_none());
    }

    #[test]
    fn speculation_launches_and_wins_are_logged() {
        let mut cfg = exec(1.0);
        cfg.speculate_tail_fraction = 0.5;
        let mut e = AdaptationEngine::for_executors(&cfg, &[1.0], SimTime::ZERO);
        e.note_speculated(t(1.0), 7, NodeId(2));
        e.note_speculation_won(t(1.1), 7, NodeId(2));
        assert_eq!(e.log().speculations(), 1);
        assert_eq!(e.log().speculation_wins(), 1);
    }

    #[test]
    fn stage_migration_is_logged_and_spaces_like_other_stage_actions() {
        let mut cfg = exec(1.0);
        cfg.monitor_window = 1;
        let mut e = AdaptationEngine::for_stages(&cfg, vec![0.1]).with_stage_action_interval(10.0);
        assert!(e.observe_stage(t(10.5), 0, 9.0).is_some());
        e.note_stage_migrated(t(10.5), 0, NodeId(0), NodeId(4), 6, 9.0);
        assert_eq!(e.log().stage_migrations(), 1);
        match &e.log().events()[0].action {
            AdaptationAction::StageMigrated {
                stage,
                from,
                to,
                checkpointed_items,
            } => {
                assert_eq!(
                    (*stage, *from, *to, *checkpointed_items),
                    (0, NodeId(0), NodeId(4), 6)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // The migration consumed the action slot: the next breach waits.
        assert!(e.observe_stage(t(11.0), 0, 9.0).is_none());
    }
}
