//! Adaptation actions and their audit log.
//!
//! When the execution monitor (Algorithm 2) finds the performance threshold
//! exceeded, "the skeleton takes action, e.g., feeding back to the
//! calibration phase and/or modifying the task scheduling according to the
//! inherent properties of the skeleton in hand".  Every such action is
//! recorded in an [`AdaptationLog`] so experiments can report how often and
//! why a run adapted.

use gridsim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// One adaptation decision taken during execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdaptationAction {
    /// The monitor fed back into the calibration phase: the node pool was
    /// re-sampled and re-ranked.
    Recalibrated {
        /// Nodes chosen after the recalibration.
        new_chosen: Vec<NodeId>,
    },
    /// One node was dropped from the chosen set without a full recalibration
    /// because its recent times exceeded the demotion threshold.
    NodeDemoted {
        /// The demoted node.
        node: NodeId,
        /// Its recent mean per-work-unit time when demoted.
        recent_mean_time: f64,
    },
    /// A node was found down/revoked and its in-flight work re-queued.
    NodeLost {
        /// The lost node.
        node: NodeId,
        /// Number of tasks returned to the pending queue.
        requeued_tasks: usize,
    },
    /// A node was admitted to the pool while execution was already under
    /// way (dynamic membership: the network backend's mid-run joins).
    NodeJoined {
        /// The admitted node.
        node: NodeId,
    },
    /// A pipeline stage was remapped to a different node.
    StageRemapped {
        /// Index of the remapped stage.
        stage: usize,
        /// Node the stage ran on before.
        from: NodeId,
        /// Node the stage runs on now.
        to: NodeId,
    },
    /// A pipeline stage was replicated across more executors — the
    /// shared-memory realisation of a stage remap, where the legal move is
    /// adding a worker thread rather than migrating to a different node.
    StageReplicated {
        /// Index of the replicated stage.
        stage: usize,
        /// Worker count serving the stage after the replication.
        replicas: usize,
    },
    /// A pipeline stage was **live-migrated**: its queued items were
    /// checkpointed (serialized through the wire payload machinery) and the
    /// stage re-homed on a different worker, the old one stopping — the
    /// Cactus-Worm move, as opposed to [`StageReplicated`](Self::StageReplicated)'s
    /// "add a helper" move.
    StageMigrated {
        /// Index of the migrated stage.
        stage: usize,
        /// Worker the stage ran on before.
        from: NodeId,
        /// Worker the stage runs on now.
        to: NodeId,
        /// Queued items carried across in the checkpoint.
        checkpointed_items: usize,
    },
    /// An in-flight unit was speculatively duplicated on an idle worker
    /// near the tail (Time-Warp-style optimistic execution: the duplicate
    /// races the straggler, the first verified result wins).
    UnitSpeculated {
        /// The duplicated unit's id.
        unit: usize,
        /// The idle worker running the duplicate.
        on: NodeId,
    },
    /// A speculative duplicate delivered the winning (first) result; the
    /// straggler's copy is cancelled/discarded on arrival.
    SpeculationWon {
        /// The rescued unit's id.
        unit: usize,
        /// The worker whose duplicate won.
        on: NodeId,
    },
}

impl AdaptationAction {
    /// Short kind label used when aggregating logs.
    pub fn kind(&self) -> &'static str {
        match self {
            AdaptationAction::Recalibrated { .. } => "recalibrated",
            AdaptationAction::NodeDemoted { .. } => "node-demoted",
            AdaptationAction::NodeLost { .. } => "node-lost",
            AdaptationAction::NodeJoined { .. } => "node-joined",
            AdaptationAction::StageRemapped { .. } => "stage-remapped",
            AdaptationAction::StageReplicated { .. } => "stage-replicated",
            AdaptationAction::StageMigrated { .. } => "stage-migrated",
            AdaptationAction::UnitSpeculated { .. } => "unit-speculated",
            AdaptationAction::SpeculationWon { .. } => "speculation-won",
        }
    }
}

/// A timestamped adaptation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationEvent {
    /// When the action was taken.
    pub time: SimTime,
    /// The action.
    pub action: AdaptationAction,
    /// The threshold *Z* in force when the action was taken.
    pub threshold: f64,
    /// The observation that triggered it (e.g. the minimum recent mean time).
    pub trigger_value: f64,
}

/// Chronological record of every adaptation taken during one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptationLog {
    events: Vec<AdaptationEvent>,
}

impl AdaptationLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn record(
        &mut self,
        time: SimTime,
        action: AdaptationAction,
        threshold: f64,
        trigger_value: f64,
    ) {
        self.events.push(AdaptationEvent {
            time,
            action,
            threshold,
            trigger_value,
        });
    }

    /// All events in chronological order.
    pub fn events(&self) -> &[AdaptationEvent] {
        &self.events
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the run never adapted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of full recalibrations.
    pub fn recalibrations(&self) -> usize {
        self.count_kind("recalibrated")
    }

    /// Number of node demotions.
    pub fn demotions(&self) -> usize {
        self.count_kind("node-demoted")
    }

    /// Number of node losses handled.
    pub fn node_losses(&self) -> usize {
        self.count_kind("node-lost")
    }

    /// Number of mid-run node admissions (dynamic membership).
    pub fn node_joins(&self) -> usize {
        self.count_kind("node-joined")
    }

    /// Total tasks returned to the pending queue by node losses.
    pub fn requeued_tasks(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e.action {
                AdaptationAction::NodeLost { requeued_tasks, .. } => requeued_tasks,
                _ => 0,
            })
            .sum()
    }

    /// Number of pipeline stage remaps.
    pub fn stage_remaps(&self) -> usize {
        self.count_kind("stage-remapped")
    }

    /// Number of pipeline stage replications (the shared-memory remap).
    pub fn stage_replications(&self) -> usize {
        self.count_kind("stage-replicated")
    }

    /// Number of live stage migrations (checkpoint + re-home).
    pub fn stage_migrations(&self) -> usize {
        self.count_kind("stage-migrated")
    }

    /// Number of speculative duplicates launched.
    pub fn speculations(&self) -> usize {
        self.count_kind("unit-speculated")
    }

    /// Number of speculative duplicates that delivered the winning result.
    pub fn speculation_wins(&self) -> usize {
        self.count_kind("speculation-won")
    }

    fn count_kind(&self, kind: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.action.kind() == kind)
            .count()
    }

    /// Render a compact text summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "adaptations: {} (recalibrations {}, demotions {}, losses {}, remaps {}, \
             replications {}, migrations {}, speculations {}, spec wins {})",
            self.len(),
            self.recalibrations(),
            self.demotions(),
            self.node_losses(),
            self.stage_remaps(),
            self.stage_replications(),
            self.stage_migrations(),
            self.speculations(),
            self.speculation_wins()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_counts_by_kind() {
        let mut log = AdaptationLog::new();
        assert!(log.is_empty());
        log.record(
            SimTime::new(1.0),
            AdaptationAction::Recalibrated {
                new_chosen: vec![NodeId(0)],
            },
            2.0,
            3.0,
        );
        log.record(
            SimTime::new(2.0),
            AdaptationAction::NodeDemoted {
                node: NodeId(3),
                recent_mean_time: 9.0,
            },
            2.0,
            9.0,
        );
        log.record(
            SimTime::new(3.0),
            AdaptationAction::NodeLost {
                node: NodeId(3),
                requeued_tasks: 4,
            },
            2.0,
            0.0,
        );
        log.record(
            SimTime::new(4.0),
            AdaptationAction::StageRemapped {
                stage: 1,
                from: NodeId(2),
                to: NodeId(5),
            },
            2.0,
            7.0,
        );
        assert_eq!(log.len(), 4);
        assert_eq!(log.recalibrations(), 1);
        assert_eq!(log.demotions(), 1);
        assert_eq!(log.node_losses(), 1);
        assert_eq!(log.requeued_tasks(), 4);
        assert_eq!(log.stage_remaps(), 1);
        assert!(log.summary().contains("adaptations: 4"));
        assert_eq!(log.events()[0].time, SimTime::new(1.0));
    }

    #[test]
    fn action_kinds_are_distinct() {
        let kinds = [
            AdaptationAction::Recalibrated { new_chosen: vec![] }.kind(),
            AdaptationAction::NodeDemoted {
                node: NodeId(0),
                recent_mean_time: 0.0,
            }
            .kind(),
            AdaptationAction::NodeLost {
                node: NodeId(0),
                requeued_tasks: 0,
            }
            .kind(),
            AdaptationAction::NodeJoined { node: NodeId(0) }.kind(),
            AdaptationAction::StageRemapped {
                stage: 0,
                from: NodeId(0),
                to: NodeId(1),
            }
            .kind(),
            AdaptationAction::StageReplicated {
                stage: 0,
                replicas: 2,
            }
            .kind(),
            AdaptationAction::StageMigrated {
                stage: 0,
                from: NodeId(0),
                to: NodeId(1),
                checkpointed_items: 3,
            }
            .kind(),
            AdaptationAction::UnitSpeculated {
                unit: 7,
                on: NodeId(1),
            }
            .kind(),
            AdaptationAction::SpeculationWon {
                unit: 7,
                on: NodeId(1),
            }
            .kind(),
        ];
        let unique: std::collections::HashSet<&str> = kinds.into_iter().collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn speculation_and_migration_counters() {
        let mut log = AdaptationLog::new();
        log.record(
            SimTime::new(1.0),
            AdaptationAction::UnitSpeculated {
                unit: 9,
                on: NodeId(2),
            },
            2.0,
            1.0,
        );
        log.record(
            SimTime::new(1.5),
            AdaptationAction::SpeculationWon {
                unit: 9,
                on: NodeId(2),
            },
            2.0,
            1.0,
        );
        log.record(
            SimTime::new(2.0),
            AdaptationAction::StageMigrated {
                stage: 1,
                from: NodeId(0),
                to: NodeId(3),
                checkpointed_items: 5,
            },
            2.0,
            8.0,
        );
        assert_eq!(log.speculations(), 1);
        assert_eq!(log.speculation_wins(), 1);
        assert_eq!(log.stage_migrations(), 1);
        assert!(log.summary().contains("speculations 1"));
        assert!(log.summary().contains("migrations 1"));
    }
}
