//! The execution-phase monitor — Algorithm 2 of the paper.
//!
//! ```text
//! while ¬ Recalibration do
//!     Execute F over Chosen nodes concurrently;
//!     Set t ← execution times(F);
//!     if monitor node then
//!         Collect t from Chosen nodes into T;
//!         if min T > Z then Set Recalibration ← true;
//!     else
//!         Send time from this node to monitor node;
//! ```
//!
//! [`ExecutionMonitor`] is the "monitor node" of that loop: workers report
//! their per-task execution times to it, and at every monitoring interval it
//! collects them into the table *T* and compares the **minimum** recent
//! per-task time against the performance threshold *Z*.  The minimum is the
//! paper's criterion: if even the *fastest* chosen node now exceeds the
//! threshold, the external conditions have changed enough that recalibration
//! (not merely demand-driven rebalancing) is warranted.  On top of that, the
//! verdict singles out individual nodes whose recent times exceed
//! `demote_factor × Z`, which the skeleton may demote without a full
//! recalibration — a cheaper action enabled by the farm's intrinsic property
//! that any task may run anywhere.

use gridsim::{NodeId, SimTime};
use gridstats::mean;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What the monitor concluded at the end of an interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorVerdict {
    /// When the verdict was produced.
    pub time: SimTime,
    /// Per-node mean execution time over the elapsed interval (the table
    /// *T*), in the unit the workers report — seconds per work unit for the
    /// farm.
    pub per_node_mean: Vec<(NodeId, f64)>,
    /// Minimum of the per-node means (`min T`).
    pub min_time: f64,
    /// The threshold *Z* in force.
    pub threshold: f64,
    /// `min T > Z`: the whole pool has degraded — recalibrate.
    pub recalibrate: bool,
    /// Nodes whose recent mean exceeded `demote_factor × Z`.
    pub demote: Vec<NodeId>,
}

/// The monitor-node state of Algorithm 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionMonitor {
    threshold: f64,
    interval_s: f64,
    demote_factor: f64,
    /// Cap on retained recent observations per node (the shared
    /// `monitor_window` of the execution config); 0 means unbounded.
    window_cap: usize,
    window: BTreeMap<NodeId, Vec<f64>>,
    last_evaluation: SimTime,
    evaluations: usize,
}

impl ExecutionMonitor {
    /// Create a monitor.
    ///
    /// * `threshold` — the performance threshold *Z*, in whatever time unit
    ///   the callers report (the farm reports seconds per work unit so that
    ///   irregular task sizes do not trip the monitor).
    /// * `interval_s` — monitoring period in virtual seconds.
    /// * `demote_factor` — per-node demotion multiplier (≥ 1).
    pub fn new(threshold: f64, interval_s: f64, demote_factor: f64) -> Self {
        ExecutionMonitor {
            threshold: threshold.max(0.0),
            interval_s: interval_s.max(1e-3),
            demote_factor: demote_factor.max(1.0),
            window_cap: 0,
            window: BTreeMap::new(),
            last_evaluation: SimTime::ZERO,
            evaluations: 0,
        }
    }

    /// Judge each node by at most its `cap` most recent observations per
    /// interval (0 = unbounded).  This is the shared `monitor_window` of
    /// [`crate::config::ExecutionConfig`].
    pub fn with_window(mut self, cap: usize) -> Self {
        self.window_cap = cap;
        self
    }

    /// The threshold currently in force.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Replace the threshold (after a recalibration).
    pub fn set_threshold(&mut self, z: f64) {
        self.threshold = z.max(0.0);
    }

    /// Number of completed monitoring evaluations.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Worker-side report: "Send time from this node to monitor node".
    pub fn record(&mut self, node: NodeId, execution_time_s: f64) {
        if execution_time_s.is_nan() || execution_time_s < 0.0 {
            return;
        }
        let times = self.window.entry(node).or_default();
        times.push(execution_time_s);
        if self.window_cap > 0 && times.len() > self.window_cap {
            times.remove(0);
        }
    }

    /// Whether the monitoring interval has elapsed at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        (now - self.last_evaluation).as_secs() >= self.interval_s
    }

    /// Evaluate the interval if due.  Returns `None` when the interval has
    /// not yet elapsed or no times were reported (an empty table cannot
    /// trigger recalibration).
    pub fn evaluate(&mut self, now: SimTime) -> Option<MonitorVerdict> {
        if !self.due(now) {
            return None;
        }
        self.last_evaluation = now;
        if self.window.is_empty() {
            return None;
        }
        let per_node_mean: Vec<(NodeId, f64)> = self
            .window
            .iter()
            .filter_map(|(&n, times)| mean(times).map(|m| (n, m)))
            .collect();
        self.window.clear();
        if per_node_mean.is_empty() {
            return None;
        }
        self.evaluations += 1;
        let min_time = per_node_mean
            .iter()
            .map(|(_, m)| *m)
            .fold(f64::INFINITY, f64::min);
        let recalibrate = min_time > self.threshold;
        let demote: Vec<NodeId> = per_node_mean
            .iter()
            .filter(|(_, m)| *m > self.threshold * self.demote_factor)
            .map(|(n, _)| *n)
            .collect();
        Some(MonitorVerdict {
            time: now,
            per_node_mean,
            min_time,
            threshold: self.threshold,
            recalibrate,
            demote,
        })
    }

    /// Forget everything reported so far and restart the interval at `now`
    /// (used immediately after a recalibration so stale times from the old
    /// node set cannot re-trigger).
    pub fn reset(&mut self, now: SimTime) {
        self.window.clear();
        self.last_evaluation = now;
    }

    /// Per-node mean of the observations accumulated **so far this
    /// interval**, without evaluating (the window is left intact, unlike
    /// [`ExecutionMonitor::evaluate`]).  This is the live rank view the
    /// work-stealing dispatcher uses mid-interval for victim selection;
    /// nodes with no observation yet are absent.
    pub fn recent_means(&self) -> Vec<(NodeId, f64)> {
        self.window
            .iter()
            .filter_map(|(&n, times)| mean(times).map(|m| (n, m)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    #[test]
    fn no_verdict_before_the_interval_elapses() {
        let mut m = ExecutionMonitor::new(2.0, 10.0, 3.0);
        m.record(NodeId(0), 1.0);
        assert!(m.evaluate(t(5.0)).is_none());
        assert!(m.due(t(10.0)));
        assert!(m.evaluate(t(10.0)).is_some());
    }

    #[test]
    fn healthy_pool_does_not_recalibrate() {
        let mut m = ExecutionMonitor::new(2.0, 1.0, 3.0);
        m.record(NodeId(0), 1.0);
        m.record(NodeId(1), 1.8);
        let v = m.evaluate(t(1.0)).unwrap();
        assert!(!v.recalibrate);
        assert!(v.demote.is_empty());
        assert!((v.min_time - 1.0).abs() < 1e-12);
        assert_eq!(v.per_node_mean.len(), 2);
        assert_eq!(m.evaluations(), 1);
    }

    #[test]
    fn recent_means_are_non_destructive() {
        let mut m = ExecutionMonitor::new(2.0, 1.0, 3.0);
        assert!(m.recent_means().is_empty());
        m.record(NodeId(0), 1.0);
        m.record(NodeId(0), 3.0);
        m.record(NodeId(1), 0.5);
        let ranks = m.recent_means();
        assert_eq!(ranks, vec![(NodeId(0), 2.0), (NodeId(1), 0.5)]);
        // The window is untouched: the interval evaluation still sees the
        // same observations afterwards.
        assert_eq!(m.recent_means(), ranks);
        let v = m.evaluate(t(1.0)).unwrap();
        assert_eq!(v.per_node_mean, ranks);
        assert!(m.recent_means().is_empty(), "evaluate clears the window");
    }

    #[test]
    fn min_over_threshold_triggers_recalibration() {
        let mut m = ExecutionMonitor::new(2.0, 1.0, 3.0);
        m.record(NodeId(0), 2.5);
        m.record(NodeId(1), 4.0);
        let v = m.evaluate(t(1.0)).unwrap();
        assert!(v.recalibrate, "even the fastest node exceeded Z");
    }

    #[test]
    fn single_slow_node_is_demoted_not_recalibrated() {
        let mut m = ExecutionMonitor::new(2.0, 1.0, 3.0);
        m.record(NodeId(0), 1.0);
        m.record(NodeId(1), 7.0); // > 3 × Z
        let v = m.evaluate(t(1.0)).unwrap();
        assert!(!v.recalibrate, "min is still healthy");
        assert_eq!(v.demote, vec![NodeId(1)]);
    }

    #[test]
    fn window_clears_between_intervals() {
        let mut m = ExecutionMonitor::new(2.0, 1.0, 3.0);
        m.record(NodeId(0), 5.0);
        let _ = m.evaluate(t(1.0)).unwrap();
        // New interval with healthy times: the old slow sample must be gone.
        m.record(NodeId(0), 1.0);
        let v = m.evaluate(t(2.0)).unwrap();
        assert!(!v.recalibrate);
    }

    #[test]
    fn empty_interval_produces_no_verdict() {
        let mut m = ExecutionMonitor::new(2.0, 1.0, 3.0);
        assert!(m.evaluate(t(5.0)).is_none());
        assert_eq!(m.evaluations(), 0);
    }

    #[test]
    fn reset_restarts_the_interval() {
        let mut m = ExecutionMonitor::new(2.0, 10.0, 3.0);
        m.record(NodeId(0), 9.0);
        m.reset(t(10.0));
        m.record(NodeId(0), 1.0);
        assert!(m.evaluate(t(15.0)).is_none(), "interval restarted at reset");
        let v = m.evaluate(t(20.0)).unwrap();
        assert!(!v.recalibrate);
    }

    #[test]
    fn threshold_can_be_updated_after_recalibration() {
        let mut m = ExecutionMonitor::new(1.0, 1.0, 3.0);
        m.set_threshold(10.0);
        m.record(NodeId(0), 5.0);
        let v = m.evaluate(t(1.0)).unwrap();
        assert!(!v.recalibrate);
        assert_eq!(v.threshold, 10.0);
    }

    #[test]
    fn window_cap_keeps_only_recent_observations() {
        let mut m = ExecutionMonitor::new(2.0, 1.0, 3.0).with_window(2);
        // Two old slow samples are displaced by two recent healthy ones.
        m.record(NodeId(0), 9.0);
        m.record(NodeId(0), 9.0);
        m.record(NodeId(0), 1.0);
        m.record(NodeId(0), 1.0);
        let v = m.evaluate(t(1.0)).unwrap();
        assert!(!v.recalibrate, "old samples must have been evicted");
        assert!((v.min_time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_times_are_ignored() {
        let mut m = ExecutionMonitor::new(1.0, 1.0, 3.0);
        m.record(NodeId(0), f64::NAN);
        m.record(NodeId(0), -4.0);
        assert!(m.evaluate(t(1.0)).is_none());
    }
}
