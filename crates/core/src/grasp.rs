//! The four-phase GRASP driver (Figure 1 of the paper).
//!
//! [`Grasp`] packages the methodology end to end:
//!
//! 1. **Programming** — the user constructs the driver with a
//!    [`GraspConfig`] and describes the job as a composable
//!    [`Skeleton`] expression (farm, pipeline, or any nesting of the two);
//!    this is the only part the application programmer writes.
//! 2. **Compilation** — [`Backend::compile`] binds the expression to the
//!    parallel environment (the simulated grid, real threads, …).  Static;
//!    no feedback from the platform yet.
//! 3. **Calibration** — Algorithm 1 runs on the allocated resources.
//! 4. **Execution** — Algorithm 2 runs the remaining work adaptively.
//!
//! Phases 3 and 4 happen inside [`Backend::execute`] (calibration consumes
//! the job's first tasks, so it cannot be separated from the job), and the
//! driver returns a [`GraspRunReport`] containing the phase timings and the
//! backend-neutral [`SkeletonOutcome`] — exactly the information the
//! experiment harness needs, whatever the backend.

use crate::config::GraspConfig;
use crate::error::GraspError;
use crate::farm::FarmOutcome;
use crate::pipeline::{PipelineOutcome, StageSpec};
use crate::skeleton::{Backend, OutcomeDetail, SimBackend, Skeleton, SkeletonOutcome};
use crate::task::TaskSpec;
use gridsim::{Grid, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Virtual-time accounting of the four phases.
///
/// Programming and compilation are static phases; they consume no *job*
/// time (their cost is developer/compiler time, not grid time), but they are
/// kept in the report so the life-cycle of Figure 1 is visible to callers.
/// Times are in the executing backend's clock: virtual seconds for the
/// simulated grid, wall-clock seconds for real threads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Programming phase (static, always zero job seconds).
    pub programming: SimTime,
    /// Compilation phase (static, always zero job seconds).
    pub compilation: SimTime,
    /// Calibration phase duration.
    pub calibration: SimTime,
    /// Execution phase duration (job end minus calibration end).
    pub execution: SimTime,
}

impl PhaseTimings {
    /// Total time of the dynamic phases.
    pub fn total(&self) -> SimTime {
        self.programming + self.compilation + self.calibration + self.execution
    }

    /// Calibration's share of the total dynamic time in `[0, 1]`.
    pub fn calibration_fraction(&self) -> f64 {
        let total = self.total().as_secs();
        if total <= 0.0 {
            0.0
        } else {
            self.calibration.as_secs() / total
        }
    }
}

/// The result of driving a job through all four phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraspRunReport<O> {
    /// Per-phase time accounting.
    pub phases: PhaseTimings,
    /// The skeleton outcome (backend-neutral for [`Grasp::run`]; the legacy
    /// shims expose the engine-specific outcome directly).
    pub outcome: O,
}

/// The GRASP driver.
#[derive(Debug, Clone)]
pub struct Grasp {
    config: GraspConfig,
}

impl Grasp {
    /// Programming phase: create a driver with the chosen parameterisation.
    pub fn new(config: GraspConfig) -> Self {
        Grasp { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GraspConfig {
        &self.config
    }

    /// Drive a skeleton expression through all four phases on `backend`.
    ///
    /// This is the single entry point of the unified API: the same call runs
    /// a plain farm, a plain pipeline, or any nesting (farm-of-pipelines,
    /// pipeline-of-farms, …) on any [`Backend`].  All errors — invalid
    /// configuration, empty workloads, unusable resource pools, lost tasks —
    /// are reported as [`GraspError`]; nothing panics.
    pub fn run<B: Backend>(
        &self,
        backend: &B,
        skeleton: &Skeleton,
    ) -> Result<GraspRunReport<SkeletonOutcome>, GraspError> {
        // Compilation phase (static).
        let compiled = backend.compile(&self.config, skeleton)?;
        // Calibration + execution phases.
        let outcome = backend.execute(&self.config, &compiled)?;
        let phases = PhaseTimings {
            programming: SimTime::ZERO,
            compilation: SimTime::ZERO,
            calibration: SimTime::new(outcome.calibration_s),
            execution: SimTime::new((outcome.makespan_s - outcome.calibration_s).max(0.0)),
        };
        Ok(GraspRunReport { phases, outcome })
    }

    /// Run a task farm over every node of the grid.
    #[deprecated(
        since = "0.2.0",
        note = "use `Grasp::run(&SimBackend::new(grid), &Skeleton::farm(..))`"
    )]
    pub fn run_farm(
        &self,
        grid: &Grid,
        tasks: &[TaskSpec],
    ) -> Result<GraspRunReport<FarmOutcome>, GraspError> {
        self.farm_shim(grid, &grid.node_ids(), tasks)
    }

    /// Fallible farm run (alias of [`Grasp::run_farm`], kept for mechanical
    /// migration of older call sites).
    #[deprecated(
        since = "0.2.0",
        note = "use `Grasp::run(&SimBackend::new(grid), &Skeleton::farm(..))`"
    )]
    pub fn try_run_farm(
        &self,
        grid: &Grid,
        tasks: &[TaskSpec],
    ) -> Result<GraspRunReport<FarmOutcome>, GraspError> {
        self.farm_shim(grid, &grid.node_ids(), tasks)
    }

    /// Fallible farm run on an explicit candidate pool.
    #[deprecated(
        since = "0.2.0",
        note = "use `Grasp::run(&SimBackend::on(grid, candidates), &Skeleton::farm(..))`"
    )]
    pub fn try_run_farm_on(
        &self,
        grid: &Grid,
        candidates: &[NodeId],
        tasks: &[TaskSpec],
    ) -> Result<GraspRunReport<FarmOutcome>, GraspError> {
        self.farm_shim(grid, candidates, tasks)
    }

    /// Run a pipeline over every node of the grid.
    #[deprecated(
        since = "0.2.0",
        note = "use `Grasp::run(&SimBackend::new(grid), &Skeleton::pipeline(..))`"
    )]
    pub fn run_pipeline(
        &self,
        grid: &Grid,
        stages: &[StageSpec],
        items: usize,
    ) -> Result<GraspRunReport<PipelineOutcome>, GraspError> {
        self.pipeline_shim(grid, &grid.node_ids(), stages, items)
    }

    /// Fallible pipeline run (alias of [`Grasp::run_pipeline`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `Grasp::run(&SimBackend::new(grid), &Skeleton::pipeline(..))`"
    )]
    pub fn try_run_pipeline(
        &self,
        grid: &Grid,
        stages: &[StageSpec],
        items: usize,
    ) -> Result<GraspRunReport<PipelineOutcome>, GraspError> {
        self.pipeline_shim(grid, &grid.node_ids(), stages, items)
    }

    /// Fallible pipeline run on an explicit candidate pool.
    #[deprecated(
        since = "0.2.0",
        note = "use `Grasp::run(&SimBackend::on(grid, candidates), &Skeleton::pipeline(..))`"
    )]
    pub fn try_run_pipeline_on(
        &self,
        grid: &Grid,
        candidates: &[NodeId],
        stages: &[StageSpec],
        items: usize,
    ) -> Result<GraspRunReport<PipelineOutcome>, GraspError> {
        self.pipeline_shim(grid, candidates, stages, items)
    }

    /// Shared body of the deprecated farm wrappers: route through the
    /// unified API and unwrap the simulated engine's native outcome.
    fn farm_shim(
        &self,
        grid: &Grid,
        candidates: &[NodeId],
        tasks: &[TaskSpec],
    ) -> Result<GraspRunReport<FarmOutcome>, GraspError> {
        let report = self.run(
            &SimBackend::on(grid, candidates),
            &Skeleton::farm(tasks.to_vec()),
        )?;
        match report.outcome.detail {
            OutcomeDetail::SimFarm(outcome) => Ok(GraspRunReport {
                phases: report.phases,
                outcome: *outcome,
            }),
            _ => Err(GraspError::InvalidConfig(
                "simulated backend returned a non-farm outcome".to_string(),
            )),
        }
    }

    /// Shared body of the deprecated pipeline wrappers.
    fn pipeline_shim(
        &self,
        grid: &Grid,
        candidates: &[NodeId],
        stages: &[StageSpec],
        items: usize,
    ) -> Result<GraspRunReport<PipelineOutcome>, GraspError> {
        let report = self.run(
            &SimBackend::on(grid, candidates),
            &Skeleton::pipeline(stages.to_vec(), items),
        )?;
        match report.outcome.detail {
            OutcomeDetail::SimPipeline(outcome) => Ok(GraspRunReport {
                phases: report.phases,
                outcome: *outcome,
            }),
            _ => Err(GraspError::InvalidConfig(
                "simulated backend returned a non-pipeline outcome".to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::SkeletonKind;
    use gridsim::TopologyBuilder;

    #[test]
    fn farm_report_accounts_for_all_phases() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(6, 20.0, 60.0, 2));
        let tasks = TaskSpec::uniform(60, 40.0, 16 * 1024, 16 * 1024);
        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), &Skeleton::farm(tasks))
            .unwrap();
        assert_eq!(report.outcome.completed, 60);
        assert_eq!(report.phases.programming, SimTime::ZERO);
        assert_eq!(report.phases.compilation, SimTime::ZERO);
        assert!(report.phases.calibration.as_secs() > 0.0);
        assert!(report.phases.execution.as_secs() > 0.0);
        assert!(report.phases.calibration_fraction() > 0.0);
        assert!(report.phases.calibration_fraction() < 1.0);
        assert!((report.phases.total().as_secs() - report.outcome.makespan_s).abs() < 1e-9);
    }

    #[test]
    fn pipeline_report_wraps_the_outcome() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(5, 40.0));
        let stages = StageSpec::balanced(3, 15.0, 8 * 1024);
        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), &Skeleton::pipeline(stages, 40))
            .unwrap();
        assert_eq!(report.outcome.completed, 40);
        assert_eq!(report.outcome.kind, SkeletonKind::Pipeline);
        assert!(report.phases.execution.as_secs() > 0.0);
    }

    #[test]
    fn nested_skeleton_runs_through_the_same_entry_point() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(8, 20.0, 80.0, 5));
        let lane = Skeleton::pipeline(StageSpec::balanced(3, 10.0, 4 * 1024), 12);
        let skeleton = Skeleton::farm_of(vec![lane.clone(), lane]);
        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.kind, SkeletonKind::FarmOfPipelines);
        assert_eq!(report.outcome.completed, 24);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert_eq!(report.outcome.children.len(), 2);
    }

    #[test]
    fn unified_run_reports_errors_instead_of_panicking() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(2, 40.0));
        let g = Grasp::new(GraspConfig::default());
        assert!(g
            .run(&SimBackend::new(&grid), &Skeleton::farm(vec![]))
            .is_err());
        assert!(g
            .run(&SimBackend::new(&grid), &Skeleton::pipeline(vec![], 10))
            .is_err());
        assert!(g
            .run(
                &SimBackend::on(&grid, &[]),
                &Skeleton::farm(TaskSpec::uniform(5, 1.0, 0, 0))
            )
            .is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_are_fallible_and_agree_with_the_unified_api() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(6, 20.0, 60.0, 2));
        let tasks = TaskSpec::uniform(40, 40.0, 16 * 1024, 16 * 1024);
        let g = Grasp::new(GraspConfig::default());
        let legacy = g.run_farm(&grid, &tasks).unwrap();
        let unified = g
            .run(&SimBackend::new(&grid), &Skeleton::farm(tasks.clone()))
            .unwrap();
        assert_eq!(legacy.outcome.completed_tasks(), unified.outcome.completed);
        assert!((legacy.outcome.makespan.as_secs() - unified.outcome.makespan_s).abs() < 1e-9);
        // The error paths return Err — no panic anywhere.
        assert!(g.run_farm(&grid, &[]).is_err());
        assert!(g.run_pipeline(&grid, &[], 10).is_err());
        assert!(g.try_run_farm(&grid, &[]).is_err());
        assert!(g.try_run_pipeline(&grid, &[], 10).is_err());
        assert!(g
            .try_run_farm_on(&grid, &[], &TaskSpec::uniform(5, 1.0, 0, 0))
            .is_err());
        assert!(g
            .try_run_pipeline_on(&grid, &[], &StageSpec::balanced(2, 1.0, 0), 5)
            .is_err());

        let stages = StageSpec::balanced(3, 15.0, 8 * 1024);
        let legacy = g.run_pipeline(&grid, &stages, 20).unwrap();
        assert_eq!(legacy.outcome.items, 20);
    }

    #[test]
    fn config_is_accessible() {
        let g = Grasp::new(GraspConfig::static_baseline());
        assert!(!g.config().execution.adaptive);
    }
}
