//! The four-phase GRASP driver (Figure 1 of the paper).
//!
//! [`Grasp`] packages the methodology end to end:
//!
//! 1. **Programming** — the user constructs the driver with a
//!    [`GraspConfig`] and describes the job (farm tasks or pipeline stages);
//!    this is the only part the application programmer writes.
//! 2. **Compilation** — the job is bound to the parallel environment (the
//!    grid and its candidate node pool).  Static; no feedback from the
//!    platform yet.
//! 3. **Calibration** — Algorithm 1 runs on the allocated nodes.
//! 4. **Execution** — Algorithm 2 runs the remaining work adaptively.
//!
//! The driver returns a [`GraspRunReport`] containing the phase timings, the
//! calibration table and the skeleton-specific outcome, which is exactly the
//! information the experiment harness needs.

use crate::config::GraspConfig;
use crate::error::GraspError;
use crate::farm::{FarmOutcome, TaskFarm};
use crate::pipeline::{Pipeline, PipelineOutcome, StageSpec};
use crate::properties::SkeletonProperties;
use crate::task::TaskSpec;
use gridsim::{Grid, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Virtual-time accounting of the four phases.
///
/// Programming and compilation are static phases; they consume no *virtual*
/// time (their cost is developer/compiler time, not grid time), but they are
/// kept in the report so the life-cycle of Figure 1 is visible to callers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Programming phase (static, always zero virtual seconds).
    pub programming: SimTime,
    /// Compilation phase (static, always zero virtual seconds).
    pub compilation: SimTime,
    /// Calibration phase duration.
    pub calibration: SimTime,
    /// Execution phase duration (job end minus calibration end).
    pub execution: SimTime,
}

impl PhaseTimings {
    /// Total virtual time of the dynamic phases.
    pub fn total(&self) -> SimTime {
        self.programming + self.compilation + self.calibration + self.execution
    }

    /// Calibration's share of the total dynamic time in `[0, 1]`.
    pub fn calibration_fraction(&self) -> f64 {
        let total = self.total().as_secs();
        if total <= 0.0 {
            0.0
        } else {
            self.calibration.as_secs() / total
        }
    }
}

/// The result of driving a job through all four phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraspRunReport<O> {
    /// Per-phase virtual-time accounting.
    pub phases: PhaseTimings,
    /// The skeleton-specific outcome (farm or pipeline).
    pub outcome: O,
}

/// The GRASP driver.
#[derive(Debug, Clone)]
pub struct Grasp {
    config: GraspConfig,
}

impl Grasp {
    /// Programming phase: create a driver with the chosen parameterisation.
    pub fn new(config: GraspConfig) -> Self {
        Grasp { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GraspConfig {
        &self.config
    }

    /// Run a task farm over every node of the grid.  Panics are never used
    /// for error handling; an invalid job yields a best-effort empty report
    /// via [`Grasp::try_run_farm`]'s error instead — this convenience wrapper
    /// unwraps because the common calling pattern (examples, benches) wants
    /// the happy path.
    pub fn run_farm(&self, grid: &Grid, tasks: &[TaskSpec]) -> GraspRunReport<FarmOutcome> {
        self.try_run_farm(grid, tasks)
            .expect("farm run failed; use try_run_farm to handle errors")
    }

    /// Fallible farm run.
    pub fn try_run_farm(
        &self,
        grid: &Grid,
        tasks: &[TaskSpec],
    ) -> Result<GraspRunReport<FarmOutcome>, GraspError> {
        self.try_run_farm_on(grid, &grid.node_ids(), tasks)
    }

    /// Fallible farm run on an explicit candidate pool.
    pub fn try_run_farm_on(
        &self,
        grid: &Grid,
        candidates: &[NodeId],
        tasks: &[TaskSpec],
    ) -> Result<GraspRunReport<FarmOutcome>, GraspError> {
        let properties = SkeletonProperties::task_farm(Self::comp_comm_ratio(grid, tasks));
        let farm = TaskFarm::new(self.config).with_properties(properties);
        let outcome = farm.run_on(grid, candidates, tasks)?;
        let phases = PhaseTimings {
            programming: SimTime::ZERO,
            compilation: SimTime::ZERO,
            calibration: outcome.calibration.duration,
            execution: outcome.makespan - outcome.calibration.duration,
        };
        Ok(GraspRunReport { phases, outcome })
    }

    /// Run a pipeline over every node of the grid.
    pub fn run_pipeline(
        &self,
        grid: &Grid,
        stages: &[StageSpec],
        items: usize,
    ) -> GraspRunReport<PipelineOutcome> {
        self.try_run_pipeline(grid, stages, items)
            .expect("pipeline run failed; use try_run_pipeline to handle errors")
    }

    /// Fallible pipeline run.
    pub fn try_run_pipeline(
        &self,
        grid: &Grid,
        stages: &[StageSpec],
        items: usize,
    ) -> Result<GraspRunReport<PipelineOutcome>, GraspError> {
        self.try_run_pipeline_on(grid, &grid.node_ids(), stages, items)
    }

    /// Fallible pipeline run on an explicit candidate pool.
    pub fn try_run_pipeline_on(
        &self,
        grid: &Grid,
        candidates: &[NodeId],
        stages: &[StageSpec],
        items: usize,
    ) -> Result<GraspRunReport<PipelineOutcome>, GraspError> {
        let total_work: f64 = stages.iter().map(|s| s.work_per_item).sum();
        let total_bytes: u64 = stages.iter().map(|s| s.forward_bytes).sum();
        let ratio = Self::ratio_from(grid, total_work, total_bytes);
        let pipeline =
            Pipeline::new(self.config).with_properties(SkeletonProperties::pipeline(ratio, true));
        let outcome = pipeline.run_on(grid, candidates, stages, items)?;
        let phases = PhaseTimings {
            programming: SimTime::ZERO,
            compilation: SimTime::ZERO,
            calibration: outcome.calibration.duration,
            execution: outcome.makespan - outcome.calibration.duration,
        };
        Ok(GraspRunReport { phases, outcome })
    }

    /// Estimate the computation/communication ratio of a farm job on this
    /// grid: mean dedicated compute seconds per task over mean transfer
    /// seconds per task on the reference (LAN) link.
    fn comp_comm_ratio(grid: &Grid, tasks: &[TaskSpec]) -> f64 {
        if tasks.is_empty() {
            return 1.0;
        }
        let mean_work: f64 = tasks.iter().map(|t| t.work).sum::<f64>() / tasks.len() as f64;
        let mean_bytes: u64 =
            tasks.iter().map(|t| t.total_bytes()).sum::<u64>() / tasks.len() as u64;
        Self::ratio_from(grid, mean_work, mean_bytes)
    }

    fn ratio_from(grid: &Grid, work: f64, bytes: u64) -> f64 {
        let speed = grid.topology().max_speed().max(1e-9);
        let compute_s = work / speed;
        let comm_s = gridsim::LinkSpec::lan().transfer_time(bytes, 1.0).max(1e-9);
        (compute_s / comm_s).max(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::TopologyBuilder;

    #[test]
    fn farm_report_accounts_for_all_phases() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(6, 20.0, 60.0, 2));
        let tasks = TaskSpec::uniform(60, 40.0, 16 * 1024, 16 * 1024);
        let report = Grasp::new(GraspConfig::default()).run_farm(&grid, &tasks);
        assert_eq!(report.outcome.completed_tasks(), 60);
        assert_eq!(report.phases.programming, SimTime::ZERO);
        assert_eq!(report.phases.compilation, SimTime::ZERO);
        assert!(report.phases.calibration.as_secs() > 0.0);
        assert!(report.phases.execution.as_secs() > 0.0);
        assert!(report.phases.calibration_fraction() > 0.0);
        assert!(report.phases.calibration_fraction() < 1.0);
        assert_eq!(report.phases.total(), report.outcome.makespan);
    }

    #[test]
    fn pipeline_report_wraps_the_outcome() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(5, 40.0));
        let stages = StageSpec::balanced(3, 15.0, 8 * 1024);
        let report = Grasp::new(GraspConfig::default()).run_pipeline(&grid, &stages, 40);
        assert_eq!(report.outcome.items, 40);
        assert!(report.phases.execution.as_secs() > 0.0);
    }

    #[test]
    fn fallible_variants_report_errors() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(2, 40.0));
        let g = Grasp::new(GraspConfig::default());
        assert!(g.try_run_farm(&grid, &[]).is_err());
        assert!(g.try_run_pipeline(&grid, &[], 10).is_err());
        assert!(g
            .try_run_farm_on(&grid, &[], &TaskSpec::uniform(5, 1.0, 0, 0))
            .is_err());
    }

    #[test]
    fn config_is_accessible() {
        let g = Grasp::new(GraspConfig::static_baseline());
        assert!(!g.config().execution.adaptive);
    }
}
