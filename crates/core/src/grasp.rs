//! The four-phase GRASP driver (Figure 1 of the paper).
//!
//! [`Grasp`] packages the methodology end to end:
//!
//! 1. **Programming** — the user constructs the driver with a
//!    [`GraspConfig`] and describes the job as a composable
//!    [`Skeleton`] expression (farm, pipeline, or any nesting of the two);
//!    this is the only part the application programmer writes.
//! 2. **Compilation** — [`Backend::compile`] binds the expression to the
//!    parallel environment (the simulated grid, real threads, …).  Static;
//!    no feedback from the platform yet.
//! 3. **Calibration** — Algorithm 1 runs on the allocated resources.
//! 4. **Execution** — Algorithm 2 runs the remaining work adaptively.
//!
//! Phases 3 and 4 happen inside [`Backend::execute`] (calibration consumes
//! the job's first tasks, so it cannot be separated from the job), and the
//! driver returns a [`GraspRunReport`] containing the phase timings and the
//! backend-neutral [`SkeletonOutcome`] — exactly the information the
//! experiment harness needs, whatever the backend.

use crate::config::GraspConfig;
use crate::error::GraspError;
use crate::skeleton::{Backend, Skeleton, SkeletonOutcome};
use gridsim::SimTime;
use serde::{Deserialize, Serialize};

/// Virtual-time accounting of the four phases.
///
/// Programming and compilation are static phases; they consume no *job*
/// time (their cost is developer/compiler time, not grid time), but they are
/// kept in the report so the life-cycle of Figure 1 is visible to callers.
/// Times are in the executing backend's clock: virtual seconds for the
/// simulated grid, wall-clock seconds for real threads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Programming phase (static, always zero job seconds).
    pub programming: SimTime,
    /// Compilation phase (static, always zero job seconds).
    pub compilation: SimTime,
    /// Calibration phase duration.
    pub calibration: SimTime,
    /// Execution phase duration (job end minus calibration end).
    pub execution: SimTime,
}

impl PhaseTimings {
    /// Total time of the dynamic phases.
    pub fn total(&self) -> SimTime {
        self.programming + self.compilation + self.calibration + self.execution
    }

    /// Calibration's share of the total dynamic time in `[0, 1]`.
    pub fn calibration_fraction(&self) -> f64 {
        let total = self.total().as_secs();
        if total <= 0.0 {
            0.0
        } else {
            self.calibration.as_secs() / total
        }
    }
}

/// The result of driving a job through all four phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraspRunReport<O> {
    /// Per-phase time accounting.
    pub phases: PhaseTimings,
    /// The backend-neutral skeleton outcome.  Engine-native reports (the
    /// simulated farm/pipeline outcomes, the thread-farm summary) travel in
    /// [`crate::skeleton::SkeletonOutcome::detail`].
    pub outcome: O,
}

/// The GRASP driver.
#[derive(Debug, Clone)]
pub struct Grasp {
    config: GraspConfig,
}

impl Grasp {
    /// Programming phase: create a driver with the chosen parameterisation.
    pub fn new(config: GraspConfig) -> Self {
        Grasp { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GraspConfig {
        &self.config
    }

    /// Drive a skeleton expression through all four phases on `backend`.
    ///
    /// This is the single entry point of the unified API: the same call runs
    /// a plain farm, a plain pipeline, or any nesting (farm-of-pipelines,
    /// pipeline-of-farms, …) on any [`Backend`].  All errors — invalid
    /// configuration, empty workloads, unusable resource pools, lost tasks —
    /// are reported as [`GraspError`]; nothing panics.
    pub fn run<B: Backend>(
        &self,
        backend: &B,
        skeleton: &Skeleton,
    ) -> Result<GraspRunReport<SkeletonOutcome>, GraspError> {
        // Compilation phase (static).
        let compiled = backend.compile(&self.config, skeleton)?;
        // Calibration + execution phases.
        let outcome = backend.execute(&self.config, &compiled)?;
        let phases = PhaseTimings {
            programming: SimTime::ZERO,
            compilation: SimTime::ZERO,
            calibration: SimTime::new(outcome.calibration_s),
            execution: SimTime::new((outcome.makespan_s - outcome.calibration_s).max(0.0)),
        };
        Ok(GraspRunReport { phases, outcome })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::StageSpec;
    use crate::properties::SkeletonKind;
    use crate::skeleton::{OutcomeDetail, SimBackend};
    use crate::task::TaskSpec;
    use gridsim::{Grid, TopologyBuilder};

    #[test]
    fn farm_report_accounts_for_all_phases() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(6, 20.0, 60.0, 2));
        let tasks = TaskSpec::uniform(60, 40.0, 16 * 1024, 16 * 1024);
        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), &Skeleton::farm(tasks))
            .unwrap();
        assert_eq!(report.outcome.completed, 60);
        assert_eq!(report.phases.programming, SimTime::ZERO);
        assert_eq!(report.phases.compilation, SimTime::ZERO);
        assert!(report.phases.calibration.as_secs() > 0.0);
        assert!(report.phases.execution.as_secs() > 0.0);
        assert!(report.phases.calibration_fraction() > 0.0);
        assert!(report.phases.calibration_fraction() < 1.0);
        assert!((report.phases.total().as_secs() - report.outcome.makespan_s).abs() < 1e-9);
    }

    #[test]
    fn pipeline_report_wraps_the_outcome() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(5, 40.0));
        let stages = StageSpec::balanced(3, 15.0, 8 * 1024);
        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), &Skeleton::pipeline(stages, 40))
            .unwrap();
        assert_eq!(report.outcome.completed, 40);
        assert_eq!(report.outcome.kind, SkeletonKind::Pipeline);
        assert!(report.phases.execution.as_secs() > 0.0);
    }

    #[test]
    fn nested_skeleton_runs_through_the_same_entry_point() {
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(8, 20.0, 80.0, 5));
        let lane = Skeleton::pipeline(StageSpec::balanced(3, 10.0, 4 * 1024), 12);
        let skeleton = Skeleton::farm_of(vec![lane.clone(), lane]);
        let report = Grasp::new(GraspConfig::default())
            .run(&SimBackend::new(&grid), &skeleton)
            .unwrap();
        assert_eq!(report.outcome.kind, SkeletonKind::FarmOfPipelines);
        assert_eq!(report.outcome.completed, 24);
        assert!(report.outcome.conserves_units_of(&skeleton));
        assert_eq!(report.outcome.children.len(), 2);
    }

    #[test]
    fn unified_run_reports_errors_instead_of_panicking() {
        let grid = Grid::dedicated(TopologyBuilder::uniform_cluster(2, 40.0));
        let g = Grasp::new(GraspConfig::default());
        assert!(g
            .run(&SimBackend::new(&grid), &Skeleton::farm(vec![]))
            .is_err());
        assert!(g
            .run(&SimBackend::new(&grid), &Skeleton::pipeline(vec![], 10))
            .is_err());
        assert!(g
            .run(
                &SimBackend::on(&grid, &[]),
                &Skeleton::farm(TaskSpec::uniform(5, 1.0, 0, 0))
            )
            .is_err());
    }

    #[test]
    fn engine_native_outcomes_remain_reachable_through_the_unified_api() {
        // Migrated from the deleted `run_{farm,pipeline}[_on]` shims' self
        // test: everything the legacy surface exposed — the engine-native
        // farm and pipeline outcomes — is reachable through `Grasp::run` via
        // `OutcomeDetail`, and agrees with the backend-neutral view.
        let grid = Grid::dedicated(TopologyBuilder::heterogeneous_cluster(6, 20.0, 60.0, 2));
        let tasks = TaskSpec::uniform(40, 40.0, 16 * 1024, 16 * 1024);
        let g = Grasp::new(GraspConfig::default());
        let report = g
            .run(&SimBackend::new(&grid), &Skeleton::farm(tasks))
            .unwrap();
        match &report.outcome.detail {
            OutcomeDetail::SimFarm(farm) => {
                assert_eq!(farm.completed_tasks(), report.outcome.completed);
                assert!((farm.makespan.as_secs() - report.outcome.makespan_s).abs() < 1e-9);
                assert_eq!(farm.adaptation, report.outcome.adaptation_log);
            }
            other => panic!("farm run must carry the native farm outcome, got {other:?}"),
        }

        let stages = StageSpec::balanced(3, 15.0, 8 * 1024);
        let report = g
            .run(&SimBackend::new(&grid), &Skeleton::pipeline(stages, 20))
            .unwrap();
        match &report.outcome.detail {
            OutcomeDetail::SimPipeline(pipeline) => {
                assert_eq!(pipeline.items, 20);
                assert_eq!(pipeline.adaptation, report.outcome.adaptation_log);
            }
            other => panic!("pipeline run must carry the native outcome, got {other:?}"),
        }
    }

    #[test]
    fn config_is_accessible() {
        let g = Grasp::new(GraspConfig::static_baseline());
        assert!(!g.config().execution.adaptive);
    }
}
