//! Task-to-worker scheduling policies for the farm.
//!
//! "The key challenges in improving such performance include … the correct
//! adjustment of algorithmic parameters (for example, blocking of
//! communications, granularity)".  In a task farm the visible knob is the
//! *chunk size*: how many tasks the master hands a worker per request.  The
//! classic loop-scheduling spectrum is implemented as baselines, plus GRASP's
//! adaptive policy which weights chunks by the calibrated relative speed of
//! the requesting node.

use serde::{Deserialize, Serialize};

/// Chunking policy used when a worker requests work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Split the workload into one equal block per worker up front.  No
    /// adaptation at all — the classic static baseline.
    StaticBlock,
    /// One task per request (pure self-scheduling / demand-driven).
    SelfScheduling,
    /// A fixed number of tasks per request.
    FixedChunk {
        /// Tasks per request (≥ 1).
        chunk: usize,
    },
    /// Guided self-scheduling: each request takes `remaining / workers`,
    /// bounded below by `min_chunk`.
    Guided {
        /// Smallest chunk ever handed out.
        min_chunk: usize,
    },
    /// Factoring: batches of `remaining × factor` split evenly over workers.
    Factoring {
        /// Fraction of the remaining work scheduled per batch (0, 1].
        factor: f64,
    },
    /// GRASP's adaptive policy: like guided, but the chunk is weighted by the
    /// requesting node's calibrated relative speed, so fast nodes receive
    /// proportionally more work per round trip.
    AdaptiveWeighted {
        /// Smallest chunk ever handed out.
        min_chunk: usize,
    },
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy::AdaptiveWeighted { min_chunk: 1 }
    }
}

impl SchedulePolicy {
    /// Decide how many tasks to hand to a worker.
    ///
    /// * `remaining` — tasks still waiting to be dispatched.
    /// * `total` — tasks the whole execution phase started with (`StaticBlock`
    ///   precomputes its per-worker block from this, so every worker receives
    ///   the same `ceil(total / workers)` block instead of a shrinking
    ///   re-split of `remaining`).
    /// * `workers` — number of active workers.
    /// * `weight` — the requesting worker's relative speed (1.0 = pool mean);
    ///   only the adaptive policy uses it.
    ///
    /// Always returns at least 1 when `remaining > 0`, and never more than
    /// `remaining`.
    pub fn next_chunk_with_total(
        &self,
        remaining: usize,
        total: usize,
        workers: usize,
        weight: f64,
    ) -> usize {
        if remaining == 0 {
            return 0;
        }
        let workers = workers.max(1);
        let chunk = match *self {
            SchedulePolicy::StaticBlock => total.max(remaining).div_ceil(workers),
            SchedulePolicy::SelfScheduling => 1,
            SchedulePolicy::FixedChunk { chunk } => chunk.max(1),
            SchedulePolicy::Guided { min_chunk } => (remaining / workers).max(min_chunk.max(1)),
            SchedulePolicy::Factoring { factor } => {
                let f = factor.clamp(0.05, 1.0);
                (((remaining as f64) * f / workers as f64).ceil() as usize).max(1)
            }
            SchedulePolicy::AdaptiveWeighted { min_chunk } => {
                // Weighted factoring: schedule roughly a quarter of the
                // remaining work per round, split over the workers, scaled by
                // the requesting node's calibrated relative speed.  Small
                // enough that a node degrading mid-run strands little work,
                // large enough to amortise dispatch overhead.
                let base = remaining as f64 / (workers as f64 * 4.0);
                let weighted = (base * weight.clamp(0.1, 10.0)).ceil() as usize;
                weighted.max(min_chunk.max(1))
            }
        };
        chunk.min(remaining)
    }

    /// Whether this policy reacts to calibration weights.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, SchedulePolicy::AdaptiveWeighted { .. })
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::StaticBlock => "static-block",
            SchedulePolicy::SelfScheduling => "self-scheduling",
            SchedulePolicy::FixedChunk { .. } => "fixed-chunk",
            SchedulePolicy::Guided { .. } => "guided",
            SchedulePolicy::Factoring { .. } => "factoring",
            SchedulePolicy::AdaptiveWeighted { .. } => "adaptive-weighted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The total-less view used throughout these tests: the dynamic policies
    /// decide purely from `remaining`, so passing `remaining` as the total
    /// is exact for them; only `StaticBlock` genuinely needs the real total
    /// (covered by `static_block_hands_one_equal_block_per_worker`).
    fn chunk(p: SchedulePolicy, remaining: usize, workers: usize, weight: f64) -> usize {
        p.next_chunk_with_total(remaining, remaining, workers, weight)
    }

    #[test]
    fn zero_remaining_gives_zero() {
        for p in [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduling,
            SchedulePolicy::default(),
        ] {
            assert_eq!(chunk(p, 0, 4, 1.0), 0);
        }
    }

    #[test]
    fn chunks_never_exceed_remaining() {
        let policies = [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduling,
            SchedulePolicy::FixedChunk { chunk: 64 },
            SchedulePolicy::Guided { min_chunk: 4 },
            SchedulePolicy::Factoring { factor: 0.5 },
            SchedulePolicy::AdaptiveWeighted { min_chunk: 2 },
        ];
        for p in policies {
            for remaining in [1usize, 3, 10, 1000] {
                for workers in [1usize, 4, 32] {
                    for weight in [0.2, 1.0, 4.0] {
                        let c = chunk(p, remaining, workers, weight);
                        assert!(c >= 1 && c <= remaining, "{p:?} gave {c} for {remaining}");
                    }
                }
            }
        }
    }

    #[test]
    fn static_block_splits_evenly() {
        assert_eq!(chunk(SchedulePolicy::StaticBlock, 100, 4, 1.0), 25);
        assert_eq!(chunk(SchedulePolicy::StaticBlock, 101, 4, 1.0), 26);
    }

    #[test]
    fn static_block_hands_one_equal_block_per_worker() {
        // The "static" baseline must behave statically: with the job total
        // known, successive requests drain the queue in equal per-worker
        // blocks, not in shrinking re-splits of the remainder.
        let p = SchedulePolicy::StaticBlock;
        let total = 100;
        let mut remaining = total;
        let mut blocks = Vec::new();
        while remaining > 0 {
            let c = p.next_chunk_with_total(remaining, total, 4, 1.0);
            blocks.push(c);
            remaining -= c;
        }
        assert_eq!(blocks, vec![25, 25, 25, 25]);

        // Non-divisible totals: equal ceil-blocks with one short tail block.
        let total = 101;
        let mut remaining = total;
        let mut blocks = Vec::new();
        while remaining > 0 {
            let c = p.next_chunk_with_total(remaining, total, 4, 1.0);
            blocks.push(c);
            remaining -= c;
        }
        assert_eq!(blocks, vec![26, 26, 26, 23]);
    }

    #[test]
    fn self_scheduling_is_one_at_a_time() {
        assert_eq!(chunk(SchedulePolicy::SelfScheduling, 100, 4, 5.0), 1);
    }

    #[test]
    fn guided_shrinks_as_work_drains() {
        let p = SchedulePolicy::Guided { min_chunk: 2 };
        let big = chunk(p, 1000, 10, 1.0);
        let small = chunk(p, 30, 10, 1.0);
        assert!(big > small);
        assert_eq!(chunk(p, 5, 10, 1.0), 2, "bounded below by min_chunk");
    }

    #[test]
    fn factoring_takes_a_fraction_per_worker() {
        let p = SchedulePolicy::Factoring { factor: 0.5 };
        assert_eq!(chunk(p, 100, 5, 1.0), 10);
    }

    #[test]
    fn adaptive_gives_fast_nodes_bigger_chunks() {
        let p = SchedulePolicy::AdaptiveWeighted { min_chunk: 1 };
        let slow = chunk(p, 1000, 10, 0.5);
        let fast = chunk(p, 1000, 10, 3.0);
        assert!(fast > slow, "fast={fast} slow={slow}");
        assert!(p.is_adaptive());
        assert!(!SchedulePolicy::StaticBlock.is_adaptive());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            SchedulePolicy::StaticBlock.name(),
            SchedulePolicy::SelfScheduling.name(),
            SchedulePolicy::FixedChunk { chunk: 2 }.name(),
            SchedulePolicy::Guided { min_chunk: 1 }.name(),
            SchedulePolicy::Factoring { factor: 0.5 }.name(),
            SchedulePolicy::AdaptiveWeighted { min_chunk: 1 }.name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        assert_eq!(
            chunk(SchedulePolicy::FixedChunk { chunk: 0 }, 10, 2, 1.0),
            1
        );
        assert_eq!(chunk(SchedulePolicy::Guided { min_chunk: 0 }, 1, 8, 1.0), 1);
        assert!(chunk(SchedulePolicy::Factoring { factor: 0.0 }, 100, 4, 1.0) >= 1);
        assert!(
            chunk(
                SchedulePolicy::AdaptiveWeighted { min_chunk: 0 },
                10,
                100,
                0.0
            ) >= 1
        );
    }
}
