//! Task-to-worker scheduling policies for the farm.
//!
//! "The key challenges in improving such performance include … the correct
//! adjustment of algorithmic parameters (for example, blocking of
//! communications, granularity)".  In a task farm the visible knob is the
//! *chunk size*: how many tasks the master hands a worker per request.  The
//! classic loop-scheduling spectrum is implemented as baselines, plus GRASP's
//! adaptive policy which weights chunks by the calibrated relative speed of
//! the requesting node.

use serde::{Deserialize, Serialize};

/// Chunking policy used when a worker requests work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Split the workload into one equal block per worker up front.  No
    /// adaptation at all — the classic static baseline.
    StaticBlock,
    /// One task per request (pure self-scheduling / demand-driven).
    SelfScheduling,
    /// A fixed number of tasks per request.
    FixedChunk {
        /// Tasks per request (≥ 1).
        chunk: usize,
    },
    /// Guided self-scheduling: each request takes `remaining / workers`,
    /// bounded below by `min_chunk`.
    Guided {
        /// Smallest chunk ever handed out.
        min_chunk: usize,
    },
    /// Factoring: batches of `remaining × factor` split evenly over workers.
    Factoring {
        /// Fraction of the remaining work scheduled per batch (0, 1].
        factor: f64,
    },
    /// GRASP's adaptive policy: like guided, but the chunk is weighted by the
    /// requesting node's calibrated relative speed, so fast nodes receive
    /// proportionally more work per round trip.
    AdaptiveWeighted {
        /// Smallest chunk ever handed out.
        min_chunk: usize,
    },
    /// Work stealing: each worker owns a local deque seeded from a one-shot
    /// partition of the task range and pops rank-weighted chunks from its own
    /// bottom ([`SchedulePolicy::owner_chunk`]); an idle worker steals the top
    /// half of the slowest-ranked victim's deque
    /// ([`SchedulePolicy::steal_share`]).  Backends without per-worker deques
    /// (the sim farm's master-side cursor) degrade to adaptive-weighted
    /// chunking through [`SchedulePolicy::next_chunk_with_total`].
    WorkStealing {
        /// Smallest chunk an owner ever pops from its deque.
        min_chunk: usize,
    },
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy::AdaptiveWeighted { min_chunk: 1 }
    }
}

impl SchedulePolicy {
    /// Decide how many tasks to hand to a worker.
    ///
    /// * `remaining` — tasks still waiting to be dispatched.
    /// * `total` — tasks the whole execution phase started with (`StaticBlock`
    ///   precomputes its per-worker block from this, so every worker receives
    ///   the same `ceil(total / workers)` block instead of a shrinking
    ///   re-split of `remaining`).
    /// * `workers` — number of active workers.
    /// * `weight` — the requesting worker's relative speed (1.0 = pool mean);
    ///   only the adaptive policy uses it.
    ///
    /// Always returns at least 1 when `remaining > 0`, and never more than
    /// `remaining`.
    pub fn next_chunk_with_total(
        &self,
        remaining: usize,
        total: usize,
        workers: usize,
        weight: f64,
    ) -> usize {
        if remaining == 0 {
            return 0;
        }
        let workers = workers.max(1);
        let chunk = match *self {
            SchedulePolicy::StaticBlock => total.max(remaining).div_ceil(workers),
            SchedulePolicy::SelfScheduling => 1,
            SchedulePolicy::FixedChunk { chunk } => chunk.max(1),
            SchedulePolicy::Guided { min_chunk } => (remaining / workers).max(min_chunk.max(1)),
            SchedulePolicy::Factoring { factor } => {
                // Guard non-finite factors (NaN/±inf propagate through
                // `clamp`) before taking the fraction, and clamp the rounded
                // batch share to ≥ 1 so a tail where
                // `remaining < workers / factor` can never emit a zero chunk.
                let f = if factor.is_finite() {
                    factor.clamp(0.05, 1.0)
                } else {
                    1.0
                };
                (((remaining as f64) * f / workers as f64).ceil() as usize).max(1)
            }
            SchedulePolicy::AdaptiveWeighted { min_chunk }
            | SchedulePolicy::WorkStealing { min_chunk } => {
                // Weighted factoring: schedule roughly a quarter of the
                // remaining work per round, split over the workers, scaled by
                // the requesting node's calibrated relative speed.  Small
                // enough that a node degrading mid-run strands little work,
                // large enough to amortise dispatch overhead.
                let base = remaining as f64 / (workers as f64 * 4.0);
                let weighted = (base * weight.clamp(0.1, 10.0)).ceil() as usize;
                weighted.max(min_chunk.max(1))
            }
        };
        chunk.min(remaining)
    }

    /// How many tasks a deque **owner** pops from its own bottom per dispatch.
    ///
    /// The steal-aware sibling of [`next_chunk_with_total`]: `local_remaining`
    /// is the owner's deque length (not the global queue), so the chunk is a
    /// rank-weighted quarter of the *local* backlog — fast-ranked workers
    /// (`weight > 1`) drain their deque in large strides while slow or
    /// demoted workers (`weight < 1`) shrink toward `min_chunk`, leaving the
    /// top of their deque exposed for thieves.  Policies without a deque
    /// notion delegate to [`next_chunk_with_total`] over the local backlog.
    ///
    /// Always returns at least 1 when `local_remaining > 0`, and never more
    /// than `local_remaining`.
    ///
    /// [`next_chunk_with_total`]: SchedulePolicy::next_chunk_with_total
    pub fn owner_chunk(&self, local_remaining: usize, workers: usize, weight: f64) -> usize {
        if local_remaining == 0 {
            return 0;
        }
        match *self {
            SchedulePolicy::WorkStealing { min_chunk } => {
                let base = local_remaining as f64 / 4.0;
                let weight = if weight.is_finite() {
                    weight.clamp(0.1, 10.0)
                } else {
                    1.0
                };
                let weighted = (base * weight).ceil() as usize;
                weighted.max(min_chunk.max(1)).min(local_remaining)
            }
            _ => self.next_chunk_with_total(local_remaining, local_remaining, workers, 1.0),
        }
    }

    /// How many tasks a **thief** may take from a victim deque of length
    /// `victim_remaining`: the top half (THE-protocol style), and nothing at
    /// all from a deque shorter than two — the lone last task stays with its
    /// owner so owner and thief can never contend for the same index.
    pub fn steal_share(victim_remaining: usize) -> usize {
        if victim_remaining >= 2 {
            victim_remaining / 2
        } else {
            0
        }
    }

    /// Whether this policy reacts to calibration weights.
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            SchedulePolicy::AdaptiveWeighted { .. } | SchedulePolicy::WorkStealing { .. }
        )
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::StaticBlock => "static-block",
            SchedulePolicy::SelfScheduling => "self-scheduling",
            SchedulePolicy::FixedChunk { .. } => "fixed-chunk",
            SchedulePolicy::Guided { .. } => "guided",
            SchedulePolicy::Factoring { .. } => "factoring",
            SchedulePolicy::AdaptiveWeighted { .. } => "adaptive-weighted",
            SchedulePolicy::WorkStealing { .. } => "work-stealing",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The total-less view used throughout these tests: the dynamic policies
    /// decide purely from `remaining`, so passing `remaining` as the total
    /// is exact for them; only `StaticBlock` genuinely needs the real total
    /// (covered by `static_block_hands_one_equal_block_per_worker`).
    fn chunk(p: SchedulePolicy, remaining: usize, workers: usize, weight: f64) -> usize {
        p.next_chunk_with_total(remaining, remaining, workers, weight)
    }

    #[test]
    fn zero_remaining_gives_zero() {
        for p in [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduling,
            SchedulePolicy::default(),
        ] {
            assert_eq!(chunk(p, 0, 4, 1.0), 0);
        }
    }

    #[test]
    fn chunks_never_exceed_remaining() {
        let policies = [
            SchedulePolicy::StaticBlock,
            SchedulePolicy::SelfScheduling,
            SchedulePolicy::FixedChunk { chunk: 64 },
            SchedulePolicy::Guided { min_chunk: 4 },
            SchedulePolicy::Factoring { factor: 0.5 },
            SchedulePolicy::AdaptiveWeighted { min_chunk: 2 },
            SchedulePolicy::WorkStealing { min_chunk: 2 },
        ];
        for p in policies {
            for remaining in [1usize, 3, 10, 1000] {
                for workers in [1usize, 4, 32] {
                    for weight in [0.2, 1.0, 4.0] {
                        let c = chunk(p, remaining, workers, weight);
                        assert!(c >= 1 && c <= remaining, "{p:?} gave {c} for {remaining}");
                    }
                }
            }
        }
    }

    #[test]
    fn static_block_splits_evenly() {
        assert_eq!(chunk(SchedulePolicy::StaticBlock, 100, 4, 1.0), 25);
        assert_eq!(chunk(SchedulePolicy::StaticBlock, 101, 4, 1.0), 26);
    }

    #[test]
    fn static_block_hands_one_equal_block_per_worker() {
        // The "static" baseline must behave statically: with the job total
        // known, successive requests drain the queue in equal per-worker
        // blocks, not in shrinking re-splits of the remainder.
        let p = SchedulePolicy::StaticBlock;
        let total = 100;
        let mut remaining = total;
        let mut blocks = Vec::new();
        while remaining > 0 {
            let c = p.next_chunk_with_total(remaining, total, 4, 1.0);
            blocks.push(c);
            remaining -= c;
        }
        assert_eq!(blocks, vec![25, 25, 25, 25]);

        // Non-divisible totals: equal ceil-blocks with one short tail block.
        let total = 101;
        let mut remaining = total;
        let mut blocks = Vec::new();
        while remaining > 0 {
            let c = p.next_chunk_with_total(remaining, total, 4, 1.0);
            blocks.push(c);
            remaining -= c;
        }
        assert_eq!(blocks, vec![26, 26, 26, 23]);
    }

    #[test]
    fn self_scheduling_is_one_at_a_time() {
        assert_eq!(chunk(SchedulePolicy::SelfScheduling, 100, 4, 5.0), 1);
    }

    #[test]
    fn guided_shrinks_as_work_drains() {
        let p = SchedulePolicy::Guided { min_chunk: 2 };
        let big = chunk(p, 1000, 10, 1.0);
        let small = chunk(p, 30, 10, 1.0);
        assert!(big > small);
        assert_eq!(chunk(p, 5, 10, 1.0), 2, "bounded below by min_chunk");
    }

    #[test]
    fn factoring_takes_a_fraction_per_worker() {
        let p = SchedulePolicy::Factoring { factor: 0.5 };
        assert_eq!(chunk(p, 100, 5, 1.0), 10);
    }

    #[test]
    fn factoring_tail_never_rounds_to_zero() {
        // remaining × factor / workers < 1 at the tail: the batch share must
        // clamp up to one task, never zero, or the queue would never drain.
        let p = SchedulePolicy::Factoring { factor: 0.05 };
        for remaining in 1..=19usize {
            let c = chunk(p, remaining, 64, 1.0);
            assert!(
                c >= 1 && c <= remaining,
                "factoring gave {c} for remaining={remaining}"
            );
        }
        // And a full drain terminates.
        let mut remaining = 1000usize;
        let mut rounds = 0;
        while remaining > 0 {
            let c = chunk(p, remaining, 64, 1.0);
            assert!(c >= 1);
            remaining -= c;
            rounds += 1;
            assert!(rounds < 10_000, "factoring drain failed to terminate");
        }
    }

    #[test]
    fn factoring_non_finite_factor_degrades_to_full_batches() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let p = SchedulePolicy::Factoring { factor: bad };
            let c = chunk(p, 100, 4, 1.0);
            assert!(
                (1..=100).contains(&c),
                "non-finite factor {bad} gave invalid chunk {c}"
            );
        }
    }

    #[test]
    fn work_stealing_owner_chunks_scale_with_rank_weight() {
        let p = SchedulePolicy::WorkStealing { min_chunk: 1 };
        let slow = p.owner_chunk(100, 4, 0.25);
        let even = p.owner_chunk(100, 4, 1.0);
        let fast = p.owner_chunk(100, 4, 4.0);
        assert!(slow < even && even < fast, "{slow} {even} {fast}");
        assert_eq!(even, 25, "an even-ranked owner pops a quarter of its deque");
        // Slow owners shrink toward min_chunk but never to zero.
        assert!(p.owner_chunk(3, 4, 0.1) >= 1);
        assert_eq!(p.owner_chunk(0, 4, 1.0), 0);
        // min_chunk is a floor, local_remaining a ceiling.
        let p = SchedulePolicy::WorkStealing { min_chunk: 8 };
        assert_eq!(p.owner_chunk(100, 4, 0.1), 8);
        assert_eq!(p.owner_chunk(5, 4, 0.1), 5);
        // Non-finite weights degrade to the even-rank share.
        let p = SchedulePolicy::WorkStealing { min_chunk: 1 };
        assert_eq!(p.owner_chunk(100, 4, f64::NAN), 25);
    }

    #[test]
    fn owner_chunk_delegates_for_non_stealing_policies() {
        let p = SchedulePolicy::SelfScheduling;
        assert_eq!(p.owner_chunk(10, 4, 1.0), 1);
        let p = SchedulePolicy::Guided { min_chunk: 2 };
        assert_eq!(p.owner_chunk(40, 4, 1.0), 10);
    }

    #[test]
    fn steal_share_takes_the_top_half_and_spares_the_last_task() {
        assert_eq!(SchedulePolicy::steal_share(0), 0);
        assert_eq!(SchedulePolicy::steal_share(1), 0, "lone task stays home");
        assert_eq!(SchedulePolicy::steal_share(2), 1);
        assert_eq!(SchedulePolicy::steal_share(7), 3);
        assert_eq!(SchedulePolicy::steal_share(100), 50);
    }

    #[test]
    fn work_stealing_degrades_to_weighted_chunking_without_deques() {
        // Master-side cursor dispatchers (the sim farm) have no per-worker
        // deques; there the policy chunks like adaptive-weighted.
        let p = SchedulePolicy::WorkStealing { min_chunk: 1 };
        let a = SchedulePolicy::AdaptiveWeighted { min_chunk: 1 };
        for (remaining, workers, weight) in [(1000, 10, 0.5), (1000, 10, 3.0), (7, 4, 1.0)] {
            assert_eq!(
                p.next_chunk_with_total(remaining, remaining, workers, weight),
                a.next_chunk_with_total(remaining, remaining, workers, weight)
            );
        }
        assert!(p.is_adaptive());
    }

    #[test]
    fn adaptive_gives_fast_nodes_bigger_chunks() {
        let p = SchedulePolicy::AdaptiveWeighted { min_chunk: 1 };
        let slow = chunk(p, 1000, 10, 0.5);
        let fast = chunk(p, 1000, 10, 3.0);
        assert!(fast > slow, "fast={fast} slow={slow}");
        assert!(p.is_adaptive());
        assert!(!SchedulePolicy::StaticBlock.is_adaptive());
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<&str> = [
            SchedulePolicy::StaticBlock.name(),
            SchedulePolicy::SelfScheduling.name(),
            SchedulePolicy::FixedChunk { chunk: 2 }.name(),
            SchedulePolicy::Guided { min_chunk: 1 }.name(),
            SchedulePolicy::Factoring { factor: 0.5 }.name(),
            SchedulePolicy::AdaptiveWeighted { min_chunk: 1 }.name(),
            SchedulePolicy::WorkStealing { min_chunk: 1 }.name(),
        ]
        .into_iter()
        .collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        assert_eq!(
            chunk(SchedulePolicy::FixedChunk { chunk: 0 }, 10, 2, 1.0),
            1
        );
        assert_eq!(chunk(SchedulePolicy::Guided { min_chunk: 0 }, 1, 8, 1.0), 1);
        assert!(chunk(SchedulePolicy::Factoring { factor: 0.0 }, 100, 4, 1.0) >= 1);
        assert!(
            chunk(
                SchedulePolicy::AdaptiveWeighted { min_chunk: 0 },
                10,
                100,
                0.0
            ) >= 1
        );
    }
}
