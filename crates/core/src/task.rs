//! Tasks: the unit of work a task farm distributes.
//!
//! The programming phase parameterises the skeleton "with correct meaning for
//! the given problem instance"; for a farm that means describing each task's
//! computational weight and the size of the data shipped to and from the
//! worker, which together fix the computation/communication ratio GRASP's
//! pragmatic rules depend on.

use gridsim::{NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of one farm task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task identifier, unique within a job.
    pub id: usize,
    /// Computational weight in abstract work units (a node of base speed `s`
    /// needs `work / s` dedicated seconds).
    pub work: f64,
    /// Bytes shipped from the master to the worker before computing.
    pub input_bytes: u64,
    /// Bytes shipped back from the worker after computing.
    pub output_bytes: u64,
}

impl TaskSpec {
    /// Create a task.
    pub fn new(id: usize, work: f64, input_bytes: u64, output_bytes: u64) -> Self {
        TaskSpec {
            id,
            work: work.max(0.0),
            input_bytes,
            output_bytes,
        }
    }

    /// `n` identical tasks.
    pub fn uniform(n: usize, work: f64, input_bytes: u64, output_bytes: u64) -> Vec<TaskSpec> {
        (0..n)
            .map(|id| TaskSpec::new(id, work, input_bytes, output_bytes))
            .collect()
    }

    /// `n` tasks whose work follows a linear ramp from `min_work` to
    /// `max_work` — a simple irregular workload.
    pub fn ramp(
        n: usize,
        min_work: f64,
        max_work: f64,
        input_bytes: u64,
        output_bytes: u64,
    ) -> Vec<TaskSpec> {
        let n = n.max(1);
        (0..n)
            .map(|id| {
                let frac = if n == 1 {
                    0.0
                } else {
                    id as f64 / (n - 1) as f64
                };
                TaskSpec::new(
                    id,
                    min_work + (max_work - min_work) * frac,
                    input_bytes,
                    output_bytes,
                )
            })
            .collect()
    }

    /// Total bytes moved for this task (input + output).
    pub fn total_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes
    }

    /// Convert an observed duration for this task into seconds per work
    /// unit; see [`normalize_time`].
    pub fn normalize_time(&self, seconds: f64) -> f64 {
        normalize_time(self.work, seconds)
    }
}

/// Convert an observed duration into seconds per work unit.  Zero-work tasks
/// are pure communication: their duration carries no per-work-unit meaning,
/// so it is reported unnormalised rather than divided by an epsilon (which
/// would inflate it by ~10⁹ and poison the monitor and calibration ranking).
/// Callers comparing against a per-work-unit threshold should skip zero-work
/// observations entirely (the farm's monitor does).
pub fn normalize_time(work: f64, seconds: f64) -> f64 {
    if work > 0.0 {
        seconds / work
    } else {
        seconds
    }
}

/// Sum of work units over a set of tasks.
pub fn total_work(tasks: &[TaskSpec]) -> f64 {
    tasks.iter().map(|t| t.work).sum()
}

/// The record of one completed task, as logged by the execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// Which task completed.
    pub task: usize,
    /// Node it ran on.
    pub node: NodeId,
    /// Computational weight of the task (copied from its [`TaskSpec`]), so
    /// observed times can be normalised per work unit when tasks are
    /// irregular.
    pub work: f64,
    /// Dispatch time (input transfer begins).
    pub dispatched: SimTime,
    /// Completion time (output transfer finished at the master).
    pub completed: SimTime,
    /// Whether the task was executed as part of the calibration sample
    /// ("the processing performed during the calibration contributes to the
    /// overall job").
    pub during_calibration: bool,
}

impl TaskOutcome {
    /// Wall-clock (virtual) duration from dispatch to completion.
    pub fn duration(&self) -> SimTime {
        self.completed - self.dispatched
    }

    /// Duration per work unit — the size-independent performance signal fed
    /// to calibration ranking and the execution monitor.  Irregular tasks
    /// would otherwise make a fast node that drew a heavy task look slow.
    /// Zero-work (pure-communication) tasks report their raw duration; see
    /// [`normalize_time`].
    pub fn normalized_time(&self) -> f64 {
        normalize_time(self.work, self.duration().as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_tasks_share_parameters() {
        let tasks = TaskSpec::uniform(5, 10.0, 100, 200);
        assert_eq!(tasks.len(), 5);
        assert!(tasks.iter().enumerate().all(|(i, t)| t.id == i));
        assert!(tasks
            .iter()
            .all(|t| t.work == 10.0 && t.total_bytes() == 300));
        assert_eq!(total_work(&tasks), 50.0);
    }

    #[test]
    fn ramp_tasks_span_the_range() {
        let tasks = TaskSpec::ramp(11, 10.0, 20.0, 0, 0);
        assert_eq!(tasks[0].work, 10.0);
        assert_eq!(tasks[10].work, 20.0);
        assert!((tasks[5].work - 15.0).abs() < 1e-9);
        // Degenerate single task uses the minimum.
        assert_eq!(TaskSpec::ramp(1, 5.0, 9.0, 0, 0)[0].work, 5.0);
        // Zero count is clamped to one.
        assert_eq!(TaskSpec::ramp(0, 5.0, 9.0, 0, 0).len(), 1);
    }

    #[test]
    fn negative_work_is_clamped() {
        assert_eq!(TaskSpec::new(0, -5.0, 0, 0).work, 0.0);
    }

    #[test]
    fn outcome_duration() {
        let o = TaskOutcome {
            task: 1,
            node: NodeId(2),
            work: 9.0,
            dispatched: SimTime::new(3.0),
            completed: SimTime::new(7.5),
            during_calibration: false,
        };
        assert!((o.duration().as_secs() - 4.5).abs() < 1e-12);
        assert!((o.normalized_time() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_work_tasks_report_raw_duration() {
        let o = TaskOutcome {
            task: 0,
            node: NodeId(0),
            work: 0.0,
            dispatched: SimTime::new(1.0),
            completed: SimTime::new(1.25),
            during_calibration: false,
        };
        // Pure-communication task: no epsilon-division blow-up.
        assert!((o.normalized_time() - 0.25).abs() < 1e-12);
        let spec = TaskSpec::new(0, 0.0, 1024, 0);
        assert!((spec.normalize_time(0.25) - 0.25).abs() < 1e-12);
    }
}
