//! Performance thresholds (the *Z* of Algorithm 2).
//!
//! "By using the performance threshold while recording the execution times of
//! the given functions, the skeleton adapts to the infrastructure by allowing
//! performance variations up to the threshold.  Once the threshold is
//! reached, the skeleton takes action."
//!
//! The policy decides how *Z* is derived from what calibration measured and,
//! optionally, from what execution has observed since.

use serde::{Deserialize, Serialize};

/// How the performance threshold *Z* is computed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdPolicy {
    /// `Z = factor × (best calibrated per-work-unit time)`.  The paper's
    /// basic scheme: tolerate slowdowns up to a fixed multiple of what the
    /// fittest node achieved at calibration time.
    Factor {
        /// Tolerated slowdown factor (≥ 1).
        factor: f64,
    },
    /// `Z = factor × (p-th percentile of the calibrated per-work-unit
    /// times)` — more robust when the calibration sample itself was noisy.
    Percentile {
        /// Percentile of the calibration distribution in `[0, 100]`.
        percentile: f64,
        /// Tolerated slowdown factor (≥ 1).
        factor: f64,
    },
    /// An absolute time budget in virtual seconds **per work unit** (the
    /// farm reports work-normalised times to the monitor), independent of
    /// calibration (useful for deadline-style runs and for tests).
    Absolute {
        /// The budget in seconds per work unit.
        seconds: f64,
    },
}

impl Default for ThresholdPolicy {
    fn default() -> Self {
        // Allow tasks to take up to twice the calibrated best before adapting.
        ThresholdPolicy::Factor { factor: 2.0 }
    }
}

impl ThresholdPolicy {
    /// Compute the threshold from the calibration's per-work-unit reference
    /// times (one entry per chosen node, already outlier-filtered).  Falls back to
    /// `f64::INFINITY` (never adapt) when the sample is empty, except for the
    /// absolute policy which needs no sample.
    pub fn compute(&self, calibrated_times: &[f64]) -> f64 {
        match *self {
            ThresholdPolicy::Absolute { seconds } => seconds.max(0.0),
            ThresholdPolicy::Factor { factor } => match gridstats::min(calibrated_times) {
                Some(best) => best * factor.max(1.0),
                None => f64::INFINITY,
            },
            ThresholdPolicy::Percentile { percentile, factor } => {
                match gridstats::percentile(calibrated_times, percentile.clamp(0.0, 100.0)) {
                    Some(p) => p * factor.max(1.0),
                    None => f64::INFINITY,
                }
            }
        }
    }

    /// A human-readable description for experiment reports.
    pub fn describe(&self) -> String {
        match self {
            ThresholdPolicy::Factor { factor } => format!("factor({factor:.2}x best)"),
            ThresholdPolicy::Percentile { percentile, factor } => {
                format!("percentile(p{percentile:.0} x {factor:.2})")
            }
            ThresholdPolicy::Absolute { seconds } => format!("absolute({seconds:.3}s)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_policy_scales_the_best_time() {
        let z = ThresholdPolicy::Factor { factor: 2.0 }.compute(&[4.0, 2.0, 8.0]);
        assert!((z - 4.0).abs() < 1e-12);
    }

    #[test]
    fn factor_below_one_is_clamped() {
        let z = ThresholdPolicy::Factor { factor: 0.5 }.compute(&[2.0]);
        assert!((z - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_policy_uses_the_distribution() {
        let times = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = ThresholdPolicy::Percentile {
            percentile: 50.0,
            factor: 1.5,
        }
        .compute(&times);
        assert!((z - 4.5).abs() < 1e-9);
    }

    #[test]
    fn absolute_policy_ignores_the_sample() {
        let z = ThresholdPolicy::Absolute { seconds: 7.5 }.compute(&[]);
        assert_eq!(z, 7.5);
        assert_eq!(
            ThresholdPolicy::Absolute { seconds: -1.0 }.compute(&[]),
            0.0
        );
    }

    #[test]
    fn empty_sample_disables_adaptation_for_relative_policies() {
        assert_eq!(ThresholdPolicy::default().compute(&[]), f64::INFINITY);
        assert_eq!(
            ThresholdPolicy::Percentile {
                percentile: 90.0,
                factor: 2.0
            }
            .compute(&[]),
            f64::INFINITY
        );
    }

    #[test]
    fn describe_names_the_policy() {
        assert!(ThresholdPolicy::default().describe().contains("factor"));
        assert!(ThresholdPolicy::Absolute { seconds: 1.0 }
            .describe()
            .contains("absolute"));
        assert!(ThresholdPolicy::Percentile {
            percentile: 75.0,
            factor: 2.0
        }
        .describe()
        .contains("p75"));
    }
}
